//! The application assembler: turns an [`AppSpec`] into a runnable
//! [`Program`] plus the installation routine that seeds the database and the
//! server's shared state.

use std::sync::Arc;

use beehive_core::config::BeeHiveConfig;
use beehive_core::{ServerRuntime, ServerSession, SessionStep};
use beehive_db::{Database, QueryDef, QueryKind};
use beehive_proxy::Proxy;
use beehive_sim::{Duration, Rng};
use beehive_vm::class::{PackKind, PackSpec};
use beehive_vm::heap::Space;
use beehive_vm::natives::NativeState;
use beehive_vm::program::{Program, ProgramBuilder};
use beehive_vm::{Asm, ClassId, CostModel, MethodId, StaticSlot, Value};

use crate::framework::build_chain;
use crate::natives::NativeSet;
use crate::spec::{AppKind, AppSpec, Fidelity};

/// Prepared-query id of the point read (fixed install order).
pub const Q_READ: u16 = 0;
/// Prepared-query id of the insert.
pub const Q_INSERT: u16 = 1;
/// Prepared-query id of the scan.
pub const Q_SCAN: u16 = 2;

/// Rows seeded into the content table.
pub const TOPIC_ROWS: i64 = 1000;

#[derive(Clone, Debug)]
struct Layout {
    sock_class: ClassId,
    meta_class: ClassId,
    config_class: ClassId,
    lock_class: ClassId,
    stat_class: ClassId,
    conn_static: StaticSlot,
    meta_static: StaticSlot,
    config_static: StaticSlot,
    lock_statics: Vec<StaticSlot>,
    stat_statics: Vec<StaticSlot>,
}

/// A built evaluation application.
#[derive(Clone, Debug)]
pub struct App {
    /// Which application.
    pub kind: AppKind,
    /// Its build parameters.
    pub spec: AppSpec,
    /// The fidelity it was built at.
    pub fidelity: Fidelity,
    /// The compiled program.
    pub program: Arc<Program>,
    /// The annotated root handler (the offloading candidate).
    pub root: MethodId,
    layout: Layout,
    pad: Duration,
}

impl App {
    /// Build `kind` at `fidelity`, calibrating the padding work so a warm
    /// request consumes the spec's CPU budget.
    pub fn build(kind: AppKind, fidelity: Fidelity) -> App {
        let spec = AppSpec::of(kind);
        // Pass 1: no pad, measure a warm request.
        let probe = assemble(&spec, fidelity, Duration::ZERO);
        let measured = measure_warm_cpu(&probe);
        let pad = spec.cpu_budget.saturating_sub(measured);
        // Pass 2: final program with the pad in place.
        let mut app = assemble(&spec, fidelity, pad);
        app.pad = pad;
        app
    }

    /// Install the application's persistent state into a server runtime:
    /// seeds the database, opens the pooled connection, and allocates the
    /// shared objects (reflection metadata, config, locks, hot statistics)
    /// in stable space.
    ///
    /// # Panics
    ///
    /// Panics if called twice on the same runtime (queries would be
    /// re-prepared under different ids).
    pub fn install(&self, server: &mut ServerRuntime) {
        let spec = &self.spec;
        let db = server.proxy.db_mut();
        assert_eq!(db.stats().0, 0, "install on a fresh runtime only");
        db.seed(0, TOPIC_ROWS, |k| k * 3);
        let q_read = db.prepare(QueryDef {
            name: "SELECT ... WHERE id = ?".into(),
            kind: QueryKind::PointRead { table: 0 },
            base_cost: Duration::from_micros(55),
            per_row: Duration::from_micros(5),
        });
        let q_insert = db.prepare(QueryDef {
            name: "INSERT INTO comment ...".into(),
            kind: QueryKind::Insert { table: 1 },
            base_cost: Duration::from_micros(85),
            per_row: Duration::from_micros(5),
        });
        let q_scan = db.prepare(QueryDef {
            name: "SELECT ... ORDER BY created".into(),
            kind: QueryKind::Scan {
                table: 0,
                rows: spec.scan_rows.max(1),
            },
            base_cost: Duration::from_micros(80),
            per_row: Duration::from_micros(3),
        });
        assert_eq!((q_read, q_insert, q_scan), (Q_READ, Q_INSERT, Q_SCAN));

        let l = &self.layout;
        let conn = server.create_connection(l.sock_class);
        server.vm.set_static(l.conn_static, Value::Ref(conn));

        let mobj = server
            .vm
            .heap
            .alloc_object(l.meta_class, 1, Space::Closure)
            .expect("stable space");
        let handle = server
            .vm
            .register_native_state(NativeState::MethodMeta { method: self.root });
        server.vm.heap.set(mobj, 0, Value::I64(handle as i64));
        server.vm.set_static(l.meta_static, Value::Ref(mobj));

        let cfg = server
            .vm
            .heap
            .alloc_object(l.config_class, 2, Space::Closure)
            .expect("stable space");
        server.vm.heap.set(cfg, 0, Value::I64(64));
        server.vm.set_static(l.config_static, Value::Ref(cfg));

        for &slot in &l.lock_statics {
            let lock = server
                .vm
                .heap
                .alloc_object(l.lock_class, 1, Space::Closure)
                .expect("stable space");
            server.vm.heap.set(lock, 0, Value::I64(0));
            server.vm.set_static(slot, Value::Ref(lock));
        }
        for &slot in &l.stat_statics {
            let stat = server
                .vm
                .heap
                .alloc_object(l.stat_class, 2, Space::Closure)
                .expect("stable space");
            server.vm.heap.set(stat, 0, Value::I64(0));
            server.vm.heap.set(stat, 1, Value::I64(0));
            server.vm.set_static(slot, Value::Ref(stat));
        }
    }

    /// Arguments for one request (a random topic id).
    pub fn request_args(&self, rng: &mut Rng) -> Vec<Value> {
        vec![Value::I64(rng.gen_range(TOPIC_ROWS as u64) as i64)]
    }

    /// Lambda memory for this app (§5.1: 2 GB for thumbnail, 1 GB others).
    pub fn lambda_memory_gb(&self) -> f64 {
        self.spec.lambda_memory_gb
    }

    /// The calibrated padding work per request.
    pub fn pad(&self) -> Duration {
        self.pad
    }
}

/// Emit `count` iterations of `body` using `ctr` as a countdown local.
fn emit_loop(a: &mut Asm, count: u64, ctr: u8, body: impl Fn(&mut Asm)) {
    if count == 0 {
        return;
    }
    a.const_i(count as i64).store(ctr);
    let top = a.here();
    a.load(ctr);
    let exit = a.jump_if_zero_fwd();
    body(a);
    a.load(ctr).const_i(1).sub().store(ctr);
    a.jump_back(top);
    a.bind(exit);
}

fn assemble(spec: &AppSpec, fidelity: Fidelity, pad: Duration) -> App {
    let k = fidelity.factor() as u64;
    let mut pb = ProgramBuilder::new();
    let natives = NativeSet::register(&mut pb);

    // Core classes.
    let controller = pb.user_class(
        &format!("{}Controller", spec.kind.name()),
        0,
        Some("@RestController"),
    );
    let service = pb.user_class(&format!("{}Service", spec.kind.name()), 0, None);
    let sock_class = pb.jdk_class("java.net.SocketImpl", 1);
    pb.make_packageable(
        sock_class,
        PackSpec {
            handle_slot: 0,
            kind: PackKind::Socket,
            marshalled_bytes: 64,
        },
    );
    let meta_class = pb.jdk_class("java.lang.reflect.Method", 1);
    pb.make_packageable(
        meta_class,
        PackSpec {
            handle_slot: 0,
            kind: PackKind::MethodMeta,
            marshalled_bytes: 48,
        },
    );
    let config_class = pb.user_class("AppConfig", 2, None);
    let lock_class = pb.user_class("SharedLock", 1, None);
    let stat_class = pb.user_class("HotStat", 2, None);
    let churn_class = pb.framework_class("RequestScopedBean", spec.churn_fields);

    // Statics.
    let conn_static = pb.static_slot("CONNECTION_POOL");
    let meta_static = pb.static_slot("HANDLER_METHOD");
    let config_static = pb.static_slot("APP_CONFIG");
    let lock_statics: Vec<StaticSlot> = (0..spec.locks)
        .map(|i| pb.static_slot(&format!("LOCK_{i}")))
        .collect();
    let stat_statics: Vec<StaticSlot> = (0..spec.hot_stats)
        .map(|i| pb.static_slot(&format!("STAT_{i}")))
        .collect();

    // Native-loop iteration counts at this fidelity (exact at k = 1).
    let pure_copy = (spec.pure_natives * 2 / 3) / k;
    let pure_hash = spec.pure_natives / k - pure_copy.min(spec.pure_natives / k);
    let chain_hidden = crate::framework::chain_hidden_natives(spec.chain_depth);
    let hidden_body = (spec.hidden_natives / k).saturating_sub(chain_hidden);
    let others_thread = (spec.other_natives * 3 / 5) / k;
    let others_nano = (spec.other_natives / k).saturating_sub(others_thread);
    let churn = spec.churn_objects as u64 / k;
    let live_window = (spec.live_window as u64 / k).min(churn).max(1) as i64;
    let per_work = (pad.as_nanos() / 2).min(u32::MAX as u64) as u32;

    // The business-logic body.
    // Locals: 0 arg, 1 ctr, 2 arr1, 3 arr2, 4 method-obj, 5 conn, 6 acc,
    // 7 tmp.
    let mut a = Asm::new();
    a.const_i(16).new_array().store(2);
    a.const_i(16).new_array().store(3);
    a.get_static(meta_static).store(4);
    a.get_static(conn_static).store(5);
    a.get_static(config_static).get_field(0).store(6); // acc seeded from config
    a.work(per_work);
    // Pure on-heap natives.
    emit_loop(&mut a, pure_copy, 1, |a| {
        a.load(2)
            .const_i(0)
            .load(3)
            .const_i(4)
            .const_i(8)
            .native(natives.arraycopy)
            .pop();
    });
    emit_loop(&mut a, pure_hash, 1, |a| {
        a.native(natives.string_hash).pop();
    });
    // Hidden-state natives (reflection).
    emit_loop(&mut a, hidden_body, 1, |a| {
        a.load(4).native(natives.invoke0).pop();
    });
    // Stateless natives.
    emit_loop(&mut a, others_thread, 1, |a| {
        a.native(natives.current_thread).pop();
    });
    emit_loop(&mut a, others_nano, 1, |a| {
        a.native(natives.nano_time).pop();
    });
    // Young-generation churn with a rolling live window: the most recent
    // `live_window` request-scoped objects stay reachable through an array
    // in local 8, so every collection has a real live set to copy.
    if churn > 0 {
        a.const_i(live_window).new_array().store(8);
        emit_loop(&mut a, churn, 1, |a| {
            a.load(8)
                .load(1)
                .const_i(live_window)
                .rem()
                .new_obj(churn_class)
                .arr_store();
        });
    }
    // Direct socket natives (keep-alives etc., Table 2).
    for _ in 0..spec.direct_socket_natives {
        a.load(5).native(natives.socket_write).pop();
    }
    // Hot-statistics writes (unsynchronized shared state: "most shared
    // objects can only be exclusively accessed", §5.6).
    for &slot in &stat_statics {
        a.get_static(slot).store(7);
        a.load(7).load(7).get_field(0).const_i(1).add().put_field(0);
    }
    // Synchronized sections, one per shared lock (Table 5 sync fallbacks).
    for &slot in &lock_statics {
        a.get_static(slot).store(7);
        a.load(7).monitor_enter();
        a.load(7).load(7).get_field(0).const_i(1).add().put_field(0);
        a.load(7).monitor_exit();
    }
    // Database interaction.
    emit_loop(&mut a, spec.db_reads as u64, 1, |a| {
        a.load(0)
            .load(1)
            .add()
            .const_i(TOPIC_ROWS)
            .rem()
            .db_call(5, Q_READ)
            .load(6)
            .add()
            .store(6);
    });
    emit_loop(&mut a, spec.db_scans as u64, 1, |a| {
        a.load(0).db_call(5, Q_SCAN).load(6).add().store(6);
    });
    for _ in 0..spec.db_inserts {
        a.load(6).db_call(5, Q_INSERT).pop();
    }
    a.work(per_work);
    a.load(6).return_val();
    let body = pb.method(service, "handle", 1, 8, a.finish());

    // The framework chain on top of the body, then the annotated root.
    let entry = build_chain(
        &mut pb,
        &natives,
        meta_static,
        spec.chain_depth,
        spec.stub_impls,
        body,
    );
    let mut r = Asm::new();
    r.load(0).call(entry).return_val();
    let annotation = match spec.kind {
        AppKind::Thumbnail => "@PostMapping(\"/thumbnail\")",
        AppKind::Pybbs => "@PostMapping(\"/comment\")",
        AppKind::Blog => "@GetMapping(\"/archive\")",
    };
    let root = pb.method_annotated(controller, "handle", 1, 0, r.finish(), Some(annotation));

    // Filler classes to reach the application's real code-base size (these
    // are never executed, but they are what rules out static slicing and
    // direct upload, §2.2).
    let chain_generated = spec.chain_depth + spec.stub_impls.saturating_sub(1);
    for i in 0..spec.generated_classes.saturating_sub(chain_generated) {
        pb.generated_class(&format!("$Generated{i}"), 1);
    }
    let built_so_far = 8 + chain_generated + spec.generated_classes.saturating_sub(chain_generated);
    for i in 0..spec.classes_total.saturating_sub(built_so_far) {
        pb.framework_class(&format!("framework.pkg.Class{i}"), 2);
    }

    let program = Arc::new(pb.finish());
    App {
        kind: spec.kind,
        spec: spec.clone(),
        fidelity,
        program,
        root,
        layout: Layout {
            sock_class,
            meta_class,
            config_class,
            lock_class,
            stat_class,
            conn_static,
            meta_static,
            config_static,
            lock_statics,
            stat_statics,
        },
        pad,
    }
}

/// Run warm-up requests on a scratch vanilla server and measure the CPU of a
/// warm request (the calibration target excludes BeeHive's barriers).
fn measure_warm_cpu(app: &App) -> Duration {
    let mut server = ServerRuntime::new(
        Arc::clone(&app.program),
        BeeHiveConfig::default(),
        Proxy::new(Database::new()),
        CostModel::default(),
    );
    server.vm.set_barriers(false);
    app.install(&mut server);
    let warm = server.vm.cost.warm_threshold;
    let mut last = Duration::ZERO;
    for i in 0..=warm {
        let mut s = ServerSession::start(&mut server, app.root, vec![Value::I64(i as i64 % 7)]);
        loop {
            match s.next(&mut server) {
                SessionStep::Need(_) => {}
                SessionStep::ServerGc => {
                    let pause = server.vm.collect(&mut [s.execution_mut()], &mut []).pause;
                    s.gc_done(pause);
                }
                SessionStep::SyncFromPeer { .. } => {
                    unreachable!("no functions during calibration")
                }
                SessionStep::AwaitLock { .. } => {
                    unreachable!("no concurrent lock hand-offs in this driver")
                }
                SessionStep::Finished(_) => break,
            }
        }
        last = s.total_cpu();
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_once(app: &App, server: &mut ServerRuntime, arg: i64) -> (Value, Duration) {
        let mut s = ServerSession::start(server, app.root, vec![Value::I64(arg)]);
        let mut total = Duration::ZERO;
        loop {
            match s.next(server) {
                SessionStep::Need(n) => total += n.amount,
                SessionStep::ServerGc => {
                    let pause = server.vm.collect(&mut [s.execution_mut()], &mut []).pause;
                    s.gc_done(pause);
                }
                SessionStep::SyncFromPeer { .. } => unreachable!(),
                SessionStep::AwaitLock { .. } => {
                    unreachable!("no concurrent lock hand-offs in this driver")
                }
                SessionStep::Finished(v) => return (v, total),
            }
        }
    }

    #[test]
    fn scaled_apps_hit_their_cpu_budget() {
        for kind in AppKind::all() {
            let app = App::build(kind, Fidelity::Scaled(1024));
            let mut server = ServerRuntime::new(
                Arc::clone(&app.program),
                BeeHiveConfig::default(),
                Proxy::new(Database::new()),
                CostModel::default(),
            );
            server.vm.set_barriers(false);
            app.install(&mut server);
            // Warm up, then measure.
            let mut cpu = Duration::ZERO;
            for i in 0..=server.vm.cost.warm_threshold {
                let mut s = ServerSession::start(&mut server, app.root, vec![Value::I64(i as i64)]);
                loop {
                    match s.next(&mut server) {
                        SessionStep::Need(_) => {}
                        SessionStep::ServerGc => {
                            let pause = server.vm.collect(&mut [s.execution_mut()], &mut []).pause;
                            s.gc_done(pause);
                        }
                        SessionStep::SyncFromPeer { .. } => unreachable!(),
                        SessionStep::AwaitLock { .. } => {
                            unreachable!("no concurrent lock hand-offs in this driver")
                        }
                        SessionStep::Finished(_) => break,
                    }
                }
                cpu = s.total_cpu();
            }
            let budget = app.spec.cpu_budget;
            let lo = budget.mul_f64(0.9);
            let hi = budget.mul_f64(1.1);
            assert!(
                cpu >= lo && cpu <= hi,
                "{}: warm cpu {cpu:?} vs budget {budget:?}",
                kind.name()
            );
        }
    }

    #[test]
    fn pybbs_scaled_request_completes_with_db_effects() {
        let app = App::build(AppKind::Pybbs, Fidelity::Scaled(2048));
        let mut server = ServerRuntime::new(
            Arc::clone(&app.program),
            BeeHiveConfig::default(),
            Proxy::new(Database::new()),
            CostModel::default(),
        );
        app.install(&mut server);
        let (v, latency) = drive_once(&app, &mut server, 5);
        assert!(matches!(v, Value::I64(_)));
        // The comment was inserted.
        assert_eq!(server.proxy.db().table_len(1), 1);
        // Latency = CPU + db waits, so above the budget.
        assert!(latency > app.spec.cpu_budget);
        assert_eq!(server.stats.sessions.db_rounds, app.spec.db_rounds() as u64);
    }

    #[test]
    fn class_counts_match_the_paper() {
        let app = App::build(AppKind::Pybbs, Fidelity::Scaled(4096));
        assert_eq!(app.program.class_count(), 24_692);
        let generated = (0..app.program.class_count() as u32)
            .filter(|&c| {
                matches!(
                    app.program.class(beehive_vm::ClassId(c)).origin,
                    beehive_vm::class::Origin::Generated
                )
            })
            .count();
        assert_eq!(generated, 287);
    }

    #[test]
    fn request_args_stay_in_range() {
        let app = App::build(AppKind::Blog, Fidelity::Scaled(4096));
        let mut rng = Rng::new(1);
        for _ in 0..100 {
            let args = app.request_args(&mut rng);
            let v = args[0].as_i64().unwrap();
            assert!((0..TOPIC_ROWS).contains(&v));
        }
    }

    #[test]
    fn thumbnail_has_no_db_interaction() {
        let app = App::build(AppKind::Thumbnail, Fidelity::Scaled(2048));
        let mut server = ServerRuntime::new(
            Arc::clone(&app.program),
            BeeHiveConfig::default(),
            Proxy::new(Database::new()),
            CostModel::default(),
        );
        app.install(&mut server);
        drive_once(&app, &mut server, 3);
        assert_eq!(server.stats.sessions.db_rounds, 0);
        assert_eq!(app.lambda_memory_gb(), 2.0);
    }
}
