//! Framework-realistic request scaffolding (§2.2).
//!
//! Web frameworks wrap the business logic "with nearly 20 indirect
//! invocations, resulting in a deep call stack", through dynamically
//! generated proxy classes, and "many call sites use general stubs for
//! invocations, which contain tens of possible call targets for each"
//! (`MethodInterceptor` has 31 implementations in pybbs). This module
//! generates that structure: a chain of generated proxy classes, each
//! performing reflective native calls and dispatching downward through a
//! stub with decoy targets.

use beehive_vm::program::ProgramBuilder;
use beehive_vm::{Asm, MethodId, StaticSlot};

use crate::natives::NativeSet;

/// Build the interceptor chain; returns the entry method.
///
/// Each of the `depth` levels lives in its own generated class, performs two
/// `invoke0` reflective natives on the shared `Method` metadata object (read
/// through `meta_static`), and dispatches to the next level through a stub
/// with `stub_impls` possible targets (one real, the rest decoys).
///
/// # Panics
///
/// Panics if `depth` or `stub_impls` is zero.
pub fn build_chain(
    pb: &mut ProgramBuilder,
    natives: &NativeSet,
    meta_static: StaticSlot,
    depth: u32,
    stub_impls: u32,
    bottom: MethodId,
) -> MethodId {
    assert!(depth > 0 && stub_impls > 0, "degenerate chain");

    // Decoy interceptor implementations shared by every level's stub.
    let decoys: Vec<MethodId> = (0..stub_impls.saturating_sub(1))
        .map(|j| {
            let c = pb.generated_class(&format!("$MethodInterceptor{j}"), 0);
            let mut a = Asm::new();
            a.load(0).return_val();
            pb.method(c, "intercept", 1, 0, a.finish())
        })
        .collect();

    // Build levels bottom-up so each can reference the next.
    let mut next = bottom;
    for i in (0..depth).rev() {
        let class = pb.generated_class(&format!("$Proxy{i}$$EnhancerBySpring"), 0);
        let mut targets = vec![next];
        targets.extend(decoys.iter().copied());
        let stub = pb.stub(&format!("interceptor_dispatch_{i}"), targets);
        let mut a = Asm::new();
        // Reflective bookkeeping the framework performs per level.
        a.get_static(meta_static).store(1);
        a.load(1).native(natives.invoke0).pop();
        a.load(1).native(natives.invoke0).pop();
        // Dispatch downward: argument, then selector 0 (the real target).
        a.load(0).const_i(0).call_stub(stub).return_val();
        next = pb.method(class, &format!("dispatch{i}"), 1, 1, a.finish());
    }
    next
}

/// Reflective natives the chain performs per request (two per level).
pub fn chain_hidden_natives(depth: u32) -> u64 {
    2 * depth as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_vm::class::{PackKind, PackSpec};
    use beehive_vm::heap::Space;
    use beehive_vm::natives::NativeState;
    use beehive_vm::{CostModel, Execution, Outcome, Value, VmInstance};

    #[test]
    fn chain_dispatches_to_the_bottom() {
        let mut pb = ProgramBuilder::new();
        let natives = NativeSet::register(&mut pb);
        let meta_class = pb.jdk_class("java.lang.reflect.Method", 1);
        pb.make_packageable(
            meta_class,
            PackSpec {
                handle_slot: 0,
                kind: PackKind::MethodMeta,
                marshalled_bytes: 48,
            },
        );
        let meta_static = pb.static_slot("HANDLER_METHOD");
        let app = pb.user_class("App", 0, None);
        let mut body = Asm::new();
        body.load(0).const_i(3).mul().return_val();
        let bottom = pb.method(app, "logic", 1, 0, body.finish());
        let entry = build_chain(&mut pb, &natives, meta_static, 20, 31, bottom);
        let program = pb.finish();

        let mut vm = VmInstance::server(&program, CostModel::default());
        let mobj = vm.heap.alloc_object(meta_class, 1, Space::Closure).unwrap();
        let h = vm.register_native_state(NativeState::MethodMeta { method: bottom });
        vm.heap.set(mobj, 0, Value::I64(h as i64));
        vm.set_static(meta_static, Value::Ref(mobj));

        let mut e = Execution::call(entry, vec![Value::I64(7)], &program);
        let r = e.run(&mut vm, &program);
        assert!(matches!(r.outcome, Outcome::Done(Value::I64(21))));
        // Two reflective natives per level.
        assert_eq!(vm.counters.natives.hidden_state, chain_hidden_natives(20));
        // The chain produced 20 proxy classes + 30 decoy classes.
        assert!(program.class_count() >= 50);
    }
}
