//! # beehive-apps — the evaluation applications
//!
//! Synthetic reconstructions of the paper's three web services (§5.1),
//! compiled to BeeHive bytecode with framework-realistic structure:
//!
//! * **thumbnail** — a Spring image-thumbnail service; compute-intensive
//!   micro-benchmark (2 GB Lambda instances).
//! * **pybbs** — an enterprise forum (24 692 classes). We reproduce its
//!   *comment* request: a ~20-deep generated interceptor chain,
//!   `MethodInterceptor` stubs with 31 implementations (§2.2), the native
//!   invocation mix of Table 2 (226 643 pure on-heap, 34 749 hidden-state,
//!   248 network, 415 stateless per request), 80+ database rounds (§3.3),
//!   and synchronized shared counters (7 sync points, Table 5).
//! * **blog** — SpringBlog (18 493 classes); the *archive* request fetches
//!   many records, making it I/O-intensive.
//!
//! Each application is built at a chosen [`Fidelity`]: `Full` reproduces the
//! exact per-request native counts (used for Tables 2 and 5 and the GC
//! study); `Scaled(k)` divides bulk native loops and allocation churn by `k`
//! while preserving the request's total CPU demand — latency and throughput
//! experiments over hundreds of thousands of requests stay fast without
//! changing the request's resource profile. The CPU budget is enforced by a
//! calibration run at build time that sizes the padding work.

#![warn(missing_docs)]

pub mod framework;
pub mod natives;
pub mod spec;

mod build;

pub use build::App;
pub use spec::{AppKind, AppSpec, Fidelity};
