//! The JDK native methods the applications use, in the paper's taxonomy
//! (§3.2, Table 2).

use beehive_sim::Duration;
use beehive_vm::natives::{NativeCategory, NativeEffect};
use beehive_vm::program::ProgramBuilder;
use beehive_vm::NativeId;

/// Handles to the registered native methods.
#[derive(Clone, Copy, Debug)]
pub struct NativeSet {
    /// `System.arraycopy` — pure on-heap bulk copy.
    pub arraycopy: NativeId,
    /// `String.hashCode`-style pure on-heap helper.
    pub string_hash: NativeId,
    /// `MethodAccessor.invoke0` — reflection with hidden native state.
    pub invoke0: NativeId,
    /// `socketWrite0` — network I/O on a connection.
    pub socket_write: NativeId,
    /// `Thread.currentThread` — stateless.
    pub current_thread: NativeId,
    /// `System.nanoTime` — stateless.
    pub nano_time: NativeId,
    /// `FileInputStream.read0` — non-offloadable local file access.
    pub file_read: NativeId,
}

impl NativeSet {
    /// Register the set into a program under construction.
    pub fn register(pb: &mut ProgramBuilder) -> NativeSet {
        NativeSet {
            arraycopy: pb.native(
                "System.arraycopy",
                NativeCategory::PureOnHeap,
                Duration::from_nanos(55),
                NativeEffect::ArrayCopy,
            ),
            string_hash: pb.native(
                "String.hashCode",
                NativeCategory::PureOnHeap,
                Duration::from_nanos(30),
                NativeEffect::Nop,
            ),
            invoke0: pb.native(
                "MethodAccessor.invoke0",
                NativeCategory::HiddenState,
                Duration::from_nanos(180),
                NativeEffect::ReflectInvoke,
            ),
            socket_write: pb.native(
                "socketWrite0",
                NativeCategory::Network,
                Duration::from_nanos(400),
                NativeEffect::SocketIo,
            ),
            current_thread: pb.native(
                "Thread.currentThread",
                NativeCategory::Stateless,
                Duration::from_nanos(15),
                NativeEffect::PushToken(1),
            ),
            nano_time: pb.native(
                "System.nanoTime",
                NativeCategory::Stateless,
                Duration::from_nanos(25),
                NativeEffect::PushToken(7),
            ),
            file_read: pb.native(
                "FileInputStream.read0",
                NativeCategory::NonOffloadable,
                Duration::from_micros(3),
                NativeEffect::FileAccess,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_all_categories() {
        let mut pb = ProgramBuilder::new();
        let n = NativeSet::register(&mut pb);
        let p = pb.finish();
        assert_eq!(p.native(n.arraycopy).category, NativeCategory::PureOnHeap);
        assert_eq!(p.native(n.invoke0).category, NativeCategory::HiddenState);
        assert_eq!(p.native(n.socket_write).category, NativeCategory::Network);
        assert_eq!(
            p.native(n.current_thread).category,
            NativeCategory::Stateless
        );
        assert_eq!(
            p.native(n.file_read).category,
            NativeCategory::NonOffloadable
        );
    }
}
