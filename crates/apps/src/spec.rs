//! Per-application parameters.

use beehive_sim::Duration;

/// Which evaluation application (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// The image-thumbnail micro-benchmark (compute-intensive).
    Thumbnail,
    /// The pybbs forum's comment request (mixed I/O + compute).
    Pybbs,
    /// SpringBlog's archive request (I/O-intensive).
    Blog,
}

impl AppKind {
    /// Display name used in figures/tables.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Thumbnail => "thumbnail",
            AppKind::Pybbs => "pybbs",
            AppKind::Blog => "blog",
        }
    }

    /// All three applications in paper order.
    pub fn all() -> [AppKind; 3] {
        [AppKind::Thumbnail, AppKind::Pybbs, AppKind::Blog]
    }
}

/// Execution fidelity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fidelity {
    /// Exact per-request native counts (Tables 2/5, GC study). Slowest.
    Full,
    /// Bulk native loops and allocation churn divided by the factor; total
    /// CPU demand preserved via padding. Database rounds, locks and the
    /// dispatch chain are *not* scaled — they shape latency.
    Scaled(u32),
}

impl Fidelity {
    /// The division factor (1 for full fidelity).
    pub fn factor(self) -> u32 {
        match self {
            Fidelity::Full => 1,
            Fidelity::Scaled(k) => k.max(1),
        }
    }

    /// The default fast mode for timeline/throughput experiments.
    pub fn fast() -> Fidelity {
        Fidelity::Scaled(1024)
    }
}

/// Build parameters of one application.
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// The application.
    pub kind: AppKind,
    /// Per-request CPU demand on a warm server core (pads are sized to hit
    /// this at any fidelity).
    pub cpu_budget: Duration,
    /// Pure on-heap native invocations per request at full fidelity
    /// (Table 2 row 1).
    pub pure_natives: u64,
    /// Hidden-state native invocations per request (Table 2 row 2).
    pub hidden_natives: u64,
    /// Stateless native invocations per request (Table 2 row 4, "Others").
    pub other_natives: u64,
    /// Direct socket natives on top of the 3 per database round (Table 2
    /// row 3 = 3 × rounds + this).
    pub direct_socket_natives: u64,
    /// Point reads per request.
    pub db_reads: u32,
    /// Scan rounds per request.
    pub db_scans: u32,
    /// Rows per scan.
    pub scan_rows: u32,
    /// Inserts per request.
    pub db_inserts: u32,
    /// Synchronized blocks per request, each on its own shared lock
    /// (Table 5's steady-state sync fallback count).
    pub locks: u32,
    /// Shared "hot statistics" objects written per request (drives the
    /// synchronized-object volume of Table 5).
    pub hot_stats: u32,
    /// Small objects allocated (and dropped) per request at full fidelity —
    /// the young-generation churn behind the §5.6 GC pauses.
    pub churn_objects: u32,
    /// How many of the most recent churn objects stay reachable (request-
    /// scoped beans, session attributes): the live set each collection must
    /// copy, which sets the §5.6 pause medians.
    pub live_window: u32,
    /// Fields per churn object.
    pub churn_fields: u16,
    /// Dynamically generated framework classes for this request path (§2.2:
    /// 287 for the pybbs comment request).
    pub generated_classes: u32,
    /// Total classes in the application (pybbs: 24 692; blog: 18 493).
    pub classes_total: u32,
    /// Depth of the framework interceptor chain (§2.2: ~20 indirections).
    pub chain_depth: u32,
    /// Number of `MethodInterceptor` implementations behind the dispatch
    /// stub (§2.2: 31 in pybbs).
    pub stub_impls: u32,
    /// Lambda instance memory (GB): thumbnail gets 2 GB, others 1 GB
    /// (§5.1).
    pub lambda_memory_gb: f64,
}

impl AppSpec {
    /// The paper-calibrated spec for `kind`.
    pub fn of(kind: AppKind) -> AppSpec {
        match kind {
            AppKind::Thumbnail => AppSpec {
                kind,
                cpu_budget: Duration::from_millis(42),
                pure_natives: 78_000,
                hidden_natives: 2_400,
                other_natives: 180,
                direct_socket_natives: 0,
                db_reads: 0,
                db_scans: 0,
                scan_rows: 0,
                db_inserts: 0,
                locks: 1,
                hot_stats: 4,
                churn_objects: 32_000,
                churn_fields: 9,
                live_window: 9_000,
                generated_classes: 60,
                classes_total: 3_000,
                chain_depth: 12,
                stub_impls: 8,
                lambda_memory_gb: 2.0,
            },
            AppKind::Pybbs => AppSpec {
                kind,
                cpu_budget: Duration::from_millis(55),
                // Table 2, exactly.
                pure_natives: 226_643,
                hidden_natives: 34_749,
                other_natives: 415,
                // 81 reads + 1 insert = 82 rounds × 3 socket natives = 246,
                // plus 2 direct = 248 (Table 2 row 3).
                direct_socket_natives: 2,
                db_reads: 81,
                db_scans: 0,
                scan_rows: 0,
                db_inserts: 1,
                locks: 7,
                hot_stats: 12,
                churn_objects: 110_000,
                churn_fields: 9,
                live_window: 36_000,
                generated_classes: 287,
                classes_total: 24_692,
                chain_depth: 20,
                stub_impls: 31,
                lambda_memory_gb: 1.0,
            },
            AppKind::Blog => AppSpec {
                kind,
                cpu_budget: Duration::from_millis(36),
                pure_natives: 64_000,
                hidden_natives: 9_000,
                other_natives: 260,
                direct_socket_natives: 1,
                db_reads: 2,
                db_scans: 11,
                scan_rows: 160,
                db_inserts: 0,
                locks: 3,
                hot_stats: 8,
                churn_objects: 84_000,
                churn_fields: 9,
                live_window: 20_000,
                generated_classes: 140,
                classes_total: 18_493,
                chain_depth: 16,
                stub_impls: 14,
                lambda_memory_gb: 1.0,
            },
        }
    }

    /// Database rounds per request.
    pub fn db_rounds(&self) -> u32 {
        self.db_reads + self.db_scans + self.db_inserts
    }

    /// Expected Table 2 network-native count (3 per round + direct).
    pub fn network_natives(&self) -> u64 {
        3 * self.db_rounds() as u64 + self.direct_socket_natives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pybbs_matches_table2() {
        let s = AppSpec::of(AppKind::Pybbs);
        assert_eq!(s.pure_natives, 226_643);
        assert_eq!(s.hidden_natives, 34_749);
        assert_eq!(s.network_natives(), 248);
        assert_eq!(s.other_natives, 415);
        assert_eq!(s.classes_total, 24_692);
        assert_eq!(s.generated_classes, 287);
        assert_eq!(s.stub_impls, 31);
    }

    #[test]
    fn fidelity_factors() {
        assert_eq!(Fidelity::Full.factor(), 1);
        assert_eq!(Fidelity::Scaled(64).factor(), 64);
        assert_eq!(Fidelity::Scaled(0).factor(), 1, "clamped");
    }

    #[test]
    fn app_ordering_and_names() {
        let names: Vec<_> = AppKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["thumbnail", "pybbs", "blog"]);
    }

    #[test]
    fn io_profiles_differ() {
        assert_eq!(AppSpec::of(AppKind::Thumbnail).db_rounds(), 0);
        assert_eq!(AppSpec::of(AppKind::Pybbs).db_rounds(), 82);
        assert!(AppSpec::of(AppKind::Blog).db_scans > 0);
        assert!(
            AppSpec::of(AppKind::Thumbnail).lambda_memory_gb
                > AppSpec::of(AppKind::Pybbs).lambda_memory_gb
        );
    }
}
