//! Component benchmarks: the building blocks behind every figure.
//!
//! | Bench | Feeds |
//! |---|---|
//! | `request/server/*` | Fig 2, Fig 8 (vanilla curves) |
//! | `request/offload/*` | Fig 8, Table 4, Table 5 |
//! | `closure/instantiate` | §5.6 shadow breakdown, Table 5 (shadow rows) |
//! | `gc/collect` | §5.6 GC study |
//! | `sync/handoff` | Table 5 (sync fallbacks), Fig 6 mechanics |

use std::collections::HashMap;
use std::sync::Arc;

use beehive_apps::{App, AppKind, Fidelity};
use beehive_bench::{BenchConfig, Harness};
use beehive_core::config::BeeHiveConfig;
use beehive_core::{FunctionRuntime, OffloadSession, ServerRuntime, ServerSession, SessionStep};
use beehive_db::Database;
use beehive_proxy::Proxy;
use beehive_vm::heap::Space;
use beehive_vm::{ClassId, CostModel, Value};

fn fresh_server(app: &App) -> ServerRuntime {
    let mut server = ServerRuntime::new(
        Arc::clone(&app.program),
        BeeHiveConfig::default(),
        Proxy::new(Database::new()),
        CostModel::default(),
    );
    app.install(&mut server);
    server
}

fn drive_server(server: &mut ServerRuntime, session: &mut ServerSession) -> Value {
    loop {
        match session.next(server) {
            SessionStep::Need(_) => {}
            SessionStep::ServerGc => {
                let pause = server
                    .vm
                    .collect(&mut [session.execution_mut()], &mut [])
                    .pause;
                session.gc_done(pause);
            }
            SessionStep::SyncFromPeer { peer, monitor } => {
                let _ = (peer, monitor);
                unreachable!("no peers in component benches")
            }
            SessionStep::AwaitLock { .. } => {
                unreachable!("no concurrent lock hand-offs in this driver")
            }
            SessionStep::Finished(v) => return v,
        }
    }
}

fn drive_offload(
    server: &mut ServerRuntime,
    session: &mut OffloadSession,
    funcs: &mut HashMap<u32, FunctionRuntime>,
) -> Value {
    loop {
        let id = session.function_id;
        let mut f = funcs.remove(&id).unwrap();
        let step = session.next(server, &mut f);
        funcs.insert(id, f);
        match step {
            SessionStep::Need(_) => {}
            SessionStep::SyncFromPeer { peer, monitor } => {
                let p = funcs.get_mut(&peer).unwrap();
                let objs = server.pull_dirty_from(p).0;
                if let Some(c) = monitor {
                    server.revoke_peer_monitor(p, c);
                }
                session.deliver_peer_objects(objs);
            }
            SessionStep::ServerGc => unreachable!(),
            SessionStep::AwaitLock { .. } => {
                unreachable!("no concurrent lock hand-offs in this driver")
            }
            SessionStep::Finished(v) => return v,
        }
    }
}

fn bench_server_request(h: &mut Harness) {
    for kind in AppKind::all() {
        let app = App::build(kind, Fidelity::Scaled(2048));
        let mut server = fresh_server(&app);
        let mut arg = 0i64;
        h.bench(&format!("request/server/{}", kind.name()), || {
            arg = (arg + 1) % 997;
            let mut s = ServerSession::start(&mut server, app.root, vec![Value::I64(arg)]);
            drive_server(&mut server, &mut s)
        });
    }
}

fn bench_offload_request(h: &mut Harness) {
    for kind in AppKind::all() {
        let app = App::build(kind, Fidelity::Scaled(2048));
        let mut server = fresh_server(&app);
        let mut funcs = HashMap::new();
        funcs.insert(
            0,
            FunctionRuntime::new(0, &app.program, CostModel::default()),
        );
        // Warm the instance (closure + refinement) once.
        let net = server.config.net;
        let mut warm = OffloadSession::start(
            &mut server,
            funcs.get_mut(&0).unwrap(),
            app.root,
            vec![Value::I64(1)],
            false,
            net,
            false,
        );
        drive_offload(&mut server, &mut warm, &mut funcs);
        let mut arg = 0i64;
        h.bench(&format!("request/offload/{}", kind.name()), || {
            arg = (arg + 1) % 997;
            let mut s = {
                let f = funcs.get_mut(&0).unwrap();
                OffloadSession::start(
                    &mut server,
                    f,
                    app.root,
                    vec![Value::I64(arg)],
                    false,
                    net,
                    false,
                )
            };
            drive_offload(&mut server, &mut s, &mut funcs)
        });
    }
}

fn bench_closure_instantiation(h: &mut Harness) {
    let app = App::build(AppKind::Pybbs, Fidelity::Scaled(2048));
    let mut server = fresh_server(&app);
    // Refine the plan first so the closure is the steady-state one.
    let mut funcs = HashMap::new();
    funcs.insert(
        0,
        FunctionRuntime::new(0, &app.program, CostModel::default()),
    );
    let net = server.config.net;
    let mut warm = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(1)],
        true,
        net,
        false,
    );
    drive_offload(&mut server, &mut warm, &mut funcs);

    let mut next_id = 10u32;
    h.bench("closure/instantiate", || {
        let mut f = FunctionRuntime::new(next_id, &app.program, CostModel::default());
        next_id += 1;
        let stats = server.instantiate_closure(&mut f, app.root);
        server.remove_mapping(f.id);
        stats.bytes
    });
}

fn bench_gc(h: &mut Harness) {
    let app = App::build(AppKind::Pybbs, Fidelity::Scaled(2048));
    let program = Arc::clone(&app.program);
    let churn_class = (0..program.class_count() as u32)
        .map(ClassId)
        .find(|&cl| program.class(cl).name == "RequestScopedBean")
        .unwrap();
    let mut vm = beehive_vm::VmInstance::function(&program, CostModel::default());
    h.bench("gc/collect", || {
        // Fill ~2 MB of young objects, then collect with no roots.
        for _ in 0..20_000 {
            if vm.heap.alloc_object(churn_class, 9, Space::Alloc).is_none() {
                break;
            }
        }
        vm.collect(&mut [], &mut []).pause
    });
}

fn bench_sync_handoff(h: &mut Harness) {
    // A request whose only expensive step is the monitor sync: measure the
    // hand-off machinery (pull dirty, refresh, ownership transfer).
    let app = App::build(AppKind::Thumbnail, Fidelity::Scaled(8192));
    let mut server = fresh_server(&app);
    let mut funcs = HashMap::new();
    let net = server.config.net;
    for id in 0..2u32 {
        funcs.insert(
            id,
            FunctionRuntime::new(id, &app.program, CostModel::default()),
        );
        let mut warm = {
            let f = funcs.get_mut(&id).unwrap();
            OffloadSession::start(
                &mut server,
                f,
                app.root,
                vec![Value::I64(1)],
                false,
                net,
                false,
            )
        };
        drive_offload(&mut server, &mut warm, &mut funcs);
    }
    let mut which = 0u32;
    h.bench("sync/handoff", || {
        which ^= 1; // alternate instances so the lock always moves
        let mut s = {
            let f = funcs.get_mut(&which).unwrap();
            OffloadSession::start(
                &mut server,
                f,
                app.root,
                vec![Value::I64(2)],
                false,
                net,
                false,
            )
        };
        drive_offload(&mut server, &mut s, &mut funcs)
    });
}

fn main() {
    let mut h = Harness::new(BenchConfig::default().samples(20));
    bench_server_request(&mut h);
    bench_offload_request(&mut h);
    bench_closure_instantiation(&mut h);
    bench_gc(&mut h);
    bench_sync_handoff(&mut h);
    h.finish();
}
