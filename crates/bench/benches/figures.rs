//! Figure-scale benchmarks: one short end-to-end simulation per table /
//! figure family, so `cargo bench` exercises every regeneration path. The
//! full-length reproduction (paper horizons) is the `repro` binary:
//!
//! ```text
//! cargo run --release -p beehive-bench --bin repro          # everything
//! cargo run --release -p beehive-bench --bin repro fig7     # one item
//! ```

use std::time::Duration as StdDuration;

use beehive_apps::{App, AppKind, Fidelity};
use beehive_bench::{BenchConfig, Harness};
use beehive_sim::Duration;
use beehive_workload::driver::{ArrivalPattern, Sim, SimConfig};
use beehive_workload::Strategy;

fn main() {
    let mut h = Harness::new(
        BenchConfig::default()
            .samples(10)
            .measure(StdDuration::from_secs(12))
            .warmup(StdDuration::from_secs(2)),
    );

    let pybbs = App::build(AppKind::Pybbs, Fidelity::Scaled(4096));

    h.bench("figures/fig2_closed_loop_point", || {
        let mut cfg = SimConfig::new(pybbs.clone(), Strategy::Vanilla);
        cfg.arrivals = ArrivalPattern::Closed { clients: 16 };
        cfg.horizon = Duration::from_secs(6);
        cfg.record_from = Duration::from_secs(2);
        Sim::new(cfg).run().completed
    });

    h.bench("figures/fig7_burst_window", || {
        let mut cfg = SimConfig::new(pybbs.clone(), Strategy::BeeHiveOpenWhisk);
        cfg.arrivals = ArrivalPattern::Open {
            base_rps: 50.0,
            burst_mult: 2.0,
            burst_at: Duration::from_secs(4),
            burst_end: Duration::from_secs(16),
        };
        cfg.horizon = Duration::from_secs(16);
        cfg.engage_at = Duration::from_secs(4);
        Sim::new(cfg).run().completed
    });

    h.bench("figures/fig8_throughput_point", || {
        let mut cfg = SimConfig::new(pybbs.clone(), Strategy::BeeHiveOpenWhisk);
        cfg.arrivals = ArrivalPattern::constant(150.0);
        cfg.horizon = Duration::from_secs(8);
        cfg.record_from = Duration::from_secs(4);
        cfg.offload_ratio = 0.9;
        cfg.prewarm_ready = 16;
        Sim::new(cfg).run().completed
    });

    h.bench("figures/fig9_cost_measurement", || {
        let mut cfg = SimConfig::new(pybbs.clone(), Strategy::BeeHiveLambda);
        cfg.arrivals = ArrivalPattern::constant(40.0);
        cfg.horizon = Duration::from_secs(8);
        cfg.record_from = Duration::from_secs(4);
        cfg.offload_ratio = 1.0;
        cfg.prewarm_ready = 12;
        let r = Sim::new(cfg).run();
        r.faas_gb_seconds
    });

    let blog = App::build(AppKind::Blog, Fidelity::Scaled(4096));
    h.bench("figures/table5_steady_window", || {
        let mut cfg = SimConfig::new(blog.clone(), Strategy::BeeHiveOpenWhisk);
        cfg.arrivals = ArrivalPattern::constant(60.0);
        cfg.horizon = Duration::from_secs(8);
        cfg.record_from = Duration::from_secs(4);
        let r = Sim::new(cfg).run();
        r.steady_offload.total_fallbacks()
    });

    let thumb = App::build(AppKind::Thumbnail, Fidelity::Scaled(8));
    h.bench("figures/gcstats_window", || {
        let mut cfg = SimConfig::new(thumb.clone(), Strategy::BeeHiveOpenWhisk);
        cfg.arrivals = ArrivalPattern::constant(3.0);
        cfg.horizon = Duration::from_secs(4);
        cfg.record_from = Duration::ZERO;
        cfg.offload_ratio = 1.0;
        cfg.prewarm_ready = 2;
        cfg.max_instances = 2;
        let r = Sim::new(cfg).run();
        r.function_gc_pauses.len()
    });

    h.finish();
}
