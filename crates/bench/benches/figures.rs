//! Figure-scale benchmarks: one short end-to-end simulation per table /
//! figure family, so `cargo bench` exercises every regeneration path. The
//! full-length reproduction (paper horizons) is the `repro` binary:
//!
//! ```text
//! cargo run --release -p beehive-bench --bin repro          # everything
//! cargo run --release -p beehive-bench --bin repro fig7     # one item
//! ```

use beehive_apps::{App, AppKind, Fidelity};
use beehive_sim::Duration;
use beehive_workload::driver::{ArrivalPattern, Sim, SimConfig};
use beehive_workload::Strategy;
use criterion::{criterion_group, criterion_main, Criterion};

fn fig2_point(c: &mut Criterion) {
    let app = App::build(AppKind::Pybbs, Fidelity::Scaled(4096));
    c.bench_function("figures/fig2_closed_loop_point", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::new(app.clone(), Strategy::Vanilla);
            cfg.arrivals = ArrivalPattern::Closed { clients: 16 };
            cfg.horizon = Duration::from_secs(6);
            cfg.record_from = Duration::from_secs(2);
            Sim::new(cfg).run().completed
        })
    });
}

fn fig7_burst_window(c: &mut Criterion) {
    let app = App::build(AppKind::Pybbs, Fidelity::Scaled(4096));
    c.bench_function("figures/fig7_burst_window", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::new(app.clone(), Strategy::BeeHiveOpenWhisk);
            cfg.arrivals = ArrivalPattern::Open {
                base_rps: 50.0,
                burst_mult: 2.0,
                burst_at: Duration::from_secs(4),
                burst_end: Duration::from_secs(16),
            };
            cfg.horizon = Duration::from_secs(16);
            cfg.engage_at = Duration::from_secs(4);
            Sim::new(cfg).run().completed
        })
    });
}

fn fig8_throughput_point(c: &mut Criterion) {
    let app = App::build(AppKind::Pybbs, Fidelity::Scaled(4096));
    c.bench_function("figures/fig8_throughput_point", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::new(app.clone(), Strategy::BeeHiveOpenWhisk);
            cfg.arrivals = ArrivalPattern::constant(150.0);
            cfg.horizon = Duration::from_secs(8);
            cfg.record_from = Duration::from_secs(4);
            cfg.offload_ratio = 0.9;
            cfg.prewarm_ready = 16;
            Sim::new(cfg).run().completed
        })
    });
}

fn fig9_cost_measurement(c: &mut Criterion) {
    let app = App::build(AppKind::Pybbs, Fidelity::Scaled(4096));
    c.bench_function("figures/fig9_cost_measurement", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::new(app.clone(), Strategy::BeeHiveLambda);
            cfg.arrivals = ArrivalPattern::constant(40.0);
            cfg.horizon = Duration::from_secs(8);
            cfg.record_from = Duration::from_secs(4);
            cfg.offload_ratio = 1.0;
            cfg.prewarm_ready = 12;
            let r = Sim::new(cfg).run();
            r.faas_gb_seconds
        })
    });
}

fn table5_steady_window(c: &mut Criterion) {
    let app = App::build(AppKind::Blog, Fidelity::Scaled(4096));
    c.bench_function("figures/table5_steady_window", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::new(app.clone(), Strategy::BeeHiveOpenWhisk);
            cfg.arrivals = ArrivalPattern::constant(60.0);
            cfg.horizon = Duration::from_secs(8);
            cfg.record_from = Duration::from_secs(4);
            let r = Sim::new(cfg).run();
            r.steady_offload.total_fallbacks()
        })
    });
}

fn gcstats_window(c: &mut Criterion) {
    let app = App::build(AppKind::Thumbnail, Fidelity::Scaled(8));
    c.bench_function("figures/gcstats_window", |b| {
        b.iter(|| {
            let mut cfg = SimConfig::new(app.clone(), Strategy::BeeHiveOpenWhisk);
            cfg.arrivals = ArrivalPattern::constant(3.0);
            cfg.horizon = Duration::from_secs(4);
            cfg.record_from = Duration::ZERO;
            cfg.offload_ratio = 1.0;
            cfg.prewarm_ready = 2;
            cfg.max_instances = 2;
            let r = Sim::new(cfg).run();
            r.function_gc_pauses.len()
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(12))
        .warm_up_time(std::time::Duration::from_secs(2));
    targets = fig2_point, fig7_burst_window, fig8_throughput_point,
              fig9_cost_measurement, table5_steady_window, gcstats_window
}
criterion_main!(figures);
