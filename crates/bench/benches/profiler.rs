//! Profiler overhead guard.
//!
//! The call-tree probes sit on the interpreter's hottest edges — every frame
//! push, every return, every run-segment boundary — so their disabled path
//! must be near-free. This bench pins that down two ways:
//!
//! * `probe/*` — the raw cost of one probe call with no recorder installed
//!   and with a recorder attached (the recording-sink cost per push/pop),
//! * `request/offload` — a hot end-to-end experiment iteration (the same
//!   shape as `telemetry.rs`'s) with profiler probes present but disabled.
//!
//! Run it once normally and once with the probes compiled out entirely, then
//! compare the `request/offload` rows — they should be indistinguishable:
//!
//! ```text
//! cargo bench -p beehive-bench --bench profiler
//! CARGO_TARGET_DIR=target/compile-off \
//!     cargo bench -p beehive-bench --bench profiler \
//!     --features beehive-profiler/compile-off
//! ```
//!
//! The header line reports which mode the binary was compiled in. Give the
//! compiled-off run its own `CARGO_TARGET_DIR` (see `telemetry.rs` for why).

use std::collections::HashMap;
use std::sync::Arc;

use beehive_apps::{App, AppKind, Fidelity};
use beehive_bench::{black_box, BenchConfig, Harness};
use beehive_core::config::BeeHiveConfig;
use beehive_core::{FunctionRuntime, OffloadSession, ServerRuntime, SessionStep};
use beehive_db::Database;
use beehive_profiler as prof;
use beehive_proxy::Proxy;
use beehive_sim::Duration;
use beehive_vm::{CostModel, Value};

fn fresh_server(app: &App) -> ServerRuntime {
    let mut server = ServerRuntime::new(
        Arc::clone(&app.program),
        BeeHiveConfig::default(),
        Proxy::new(Database::new()),
        CostModel::default(),
    );
    app.install(&mut server);
    server
}

fn drive_offload(
    server: &mut ServerRuntime,
    session: &mut OffloadSession,
    funcs: &mut HashMap<u32, FunctionRuntime>,
) -> Value {
    loop {
        let id = session.function_id;
        let mut f = funcs.remove(&id).unwrap();
        let step = session.next(server, &mut f);
        funcs.insert(id, f);
        match step {
            SessionStep::Need(_) => {}
            SessionStep::SyncFromPeer { .. }
            | SessionStep::ServerGc
            | SessionStep::AwaitLock { .. } => unreachable!("single instance, no peers"),
            SessionStep::Finished(v) => return v,
        }
    }
}

fn bench_probes(h: &mut Harness) {
    // No recorder installed: the disabled path every unprofiled simulation
    // pays on each probe site (one thread-local check).
    let mut cpu = Duration::ZERO;
    h.bench("probe/disabled/push_pop", || {
        cpu += Duration::from_nanos(1);
        prof::push(black_box(7), cpu);
        prof::pop(cpu);
    });
    h.bench("probe/disabled/segment", || {
        cpu += Duration::from_nanos(1);
        prof::begin_segment("server", None, [black_box(3u32)].into_iter(), false);
        prof::end_segment(cpu);
    });

    if prof::COMPILED_OFF {
        return; // a recorder cannot be driven when probes compile to nothing
    }
    // Recorder installed: the recording-sink cost per push/pop. The call
    // tree only grows with distinct stacks, so one hot frame pair keeps
    // memory flat and nothing needs draining.
    prof::install();
    prof::begin_segment("server", None, [0u32].into_iter(), true);
    h.bench("probe/recording/push_pop", || {
        cpu += Duration::from_nanos(1);
        prof::push(black_box(7), cpu);
        prof::pop(cpu);
    });
    prof::end_segment(cpu);
    black_box(prof::take());
}

fn bench_offload_request(h: &mut Harness) {
    let app = App::build(AppKind::Pybbs, Fidelity::Scaled(2048));
    let mut server = fresh_server(&app);
    let mut funcs = HashMap::new();
    funcs.insert(
        0,
        FunctionRuntime::new(0, &app.program, CostModel::default()),
    );
    let net = server.config.net;
    let mut warm = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(1)],
        false,
        net,
        false,
    );
    drive_offload(&mut server, &mut warm, &mut funcs);
    let mut arg = 0i64;
    h.bench("request/offload", || {
        arg = (arg + 1) % 997;
        let mut s = {
            let f = funcs.get_mut(&0).unwrap();
            OffloadSession::start(
                &mut server,
                f,
                app.root,
                vec![Value::I64(arg)],
                false,
                net,
                false,
            )
        };
        drive_offload(&mut server, &mut s, &mut funcs)
    });
}

fn main() {
    println!(
        "profiler mode: {}",
        if prof::COMPILED_OFF {
            "compiled off (feature beehive-profiler/compile-off)"
        } else {
            "no-op sink (probes live, no recorder)"
        }
    );
    let mut h = Harness::new(BenchConfig::default().samples(20));
    bench_probes(&mut h);
    bench_offload_request(&mut h);
    h.finish();
}
