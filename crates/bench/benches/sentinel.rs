//! Conformance-checker overhead guard.
//!
//! The sentinel's cost model has two sides:
//!
//! * `feed/*` — the per-event cost of the streaming checker itself: a
//!   legal session open/close cycle on a request track, and the
//!   lifecycle-machine path for instance events,
//! * `run/offload` — a hot end-to-end experiment iteration with the
//!   checker *disarmed* (no recorder installed), the path every unchecked
//!   simulation pays.
//!
//! Run it once normally and once with the checker compiled out, then
//! compare the `run/offload` rows — they should be indistinguishable:
//!
//! ```text
//! cargo bench -p beehive-bench --bench sentinel
//! CARGO_TARGET_DIR=target/compile-off \
//!     cargo bench -p beehive-bench --bench sentinel \
//!     --features beehive-sentinel/compile-off,beehive-telemetry/compile-off
//! ```
//!
//! The header line reports which mode the binary was compiled in. Give the
//! compiled-off run its own `CARGO_TARGET_DIR` (see `telemetry.rs` for
//! why).

use std::collections::HashMap;
use std::sync::Arc;

use beehive_apps::{App, AppKind, Fidelity};
use beehive_bench::{black_box, BenchConfig, Harness};
use beehive_core::config::BeeHiveConfig;
use beehive_core::{FunctionRuntime, OffloadSession, ServerRuntime, SessionStep};
use beehive_db::Database;
use beehive_proxy::Proxy;
use beehive_sentinel::{Sentinel, SentinelConfig};
use beehive_sim::SimTime;
use beehive_telemetry::{Arg, EventKind, TraceEvent, Track};
use beehive_vm::{CostModel, Value};

fn ev(
    track: Track,
    name: &'static str,
    kind: EventKind,
    args: &[(&'static str, Arg)],
) -> TraceEvent {
    TraceEvent {
        at: SimTime::ZERO,
        track,
        name,
        kind,
        args: args.to_vec(),
    }
}

fn bench_feed(h: &mut Harness) {
    // A legal warm offload session cycle, replayed forever on one track:
    // decision → dispatch → session begin/end. State stays bounded (the
    // multiset empties every iteration), so memory is flat.
    let mut s = Sentinel::new(SentinelConfig::default());
    s.feed(&ev(
        Track::Instance(1),
        "instance:warm_start",
        EventKind::Instant,
        &[],
    ));
    let decision = ev(
        Track::Server,
        "offload:decision",
        EventKind::Instant,
        &[("offload", Arg::Bool(true)), ("engaged", Arg::Bool(true))],
    );
    let dispatch = ev(
        Track::Server,
        "offload:dispatch",
        EventKind::Instant,
        &[("outcome", Arg::Str("warm"))],
    );
    let mut rid = 0u64;
    h.bench("feed/session_cycle", || {
        rid += 1;
        let track = Track::Request(black_box(rid));
        s.feed(&decision);
        s.feed(&dispatch);
        s.feed(&ev(
            track,
            "req:offload",
            EventKind::Begin,
            &[("instance", Arg::UInt(1)), ("warm", Arg::Bool(true))],
        ));
        s.feed(&ev(track, "req:offload", EventKind::End, &[]));
    });

    let mut s = Sentinel::new(SentinelConfig::default());
    let release = ev(
        Track::Instance(2),
        "instance:release",
        EventKind::Instant,
        &[("busy_us", Arg::UInt(10))],
    );
    let activate = ev(
        Track::Instance(2),
        "instance:warm_start",
        EventKind::Instant,
        &[],
    );
    s.feed(&activate);
    h.bench("feed/lifecycle_hop", || {
        s.feed(black_box(&release));
        s.feed(black_box(&activate));
    });
}

fn fresh_server(app: &App) -> ServerRuntime {
    let mut server = ServerRuntime::new(
        Arc::clone(&app.program),
        BeeHiveConfig::default(),
        Proxy::new(Database::new()),
        CostModel::default(),
    );
    app.install(&mut server);
    server
}

fn drive_offload(
    server: &mut ServerRuntime,
    session: &mut OffloadSession,
    funcs: &mut HashMap<u32, FunctionRuntime>,
) -> Value {
    loop {
        let id = session.function_id;
        let mut f = funcs.remove(&id).unwrap();
        let step = session.next(server, &mut f);
        funcs.insert(id, f);
        match step {
            SessionStep::Need(_) => {}
            SessionStep::SyncFromPeer { .. }
            | SessionStep::ServerGc
            | SessionStep::AwaitLock { .. } => unreachable!("single instance, no peers"),
            SessionStep::Finished(v) => return v,
        }
    }
}

fn bench_offload_request(h: &mut Harness) {
    // The disarmed path: no telemetry recorder, no checker — every probe
    // site collapses to one thread-local check. Identical in shape to
    // `telemetry.rs`'s hot request so the two guards are comparable.
    let app = App::build(AppKind::Pybbs, Fidelity::Scaled(2048));
    let mut server = fresh_server(&app);
    let mut funcs = HashMap::new();
    funcs.insert(
        0,
        FunctionRuntime::new(0, &app.program, CostModel::default()),
    );
    let net = server.config.net;
    let mut warm = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(1)],
        false,
        net,
        false,
    );
    drive_offload(&mut server, &mut warm, &mut funcs);
    let mut arg = 0i64;
    h.bench("run/offload", || {
        arg = (arg + 1) % 997;
        let mut s = {
            let f = funcs.get_mut(&0).unwrap();
            OffloadSession::start(
                &mut server,
                f,
                app.root,
                vec![Value::I64(arg)],
                false,
                net,
                false,
            )
        };
        drive_offload(&mut server, &mut s, &mut funcs)
    });
}

fn main() {
    println!(
        "sentinel mode: {}",
        if beehive_sentinel::COMPILED_OFF {
            "compiled off (feature beehive-sentinel/compile-off)"
        } else {
            "live checker (feed sites active)"
        }
    );
    let mut h = Harness::new(BenchConfig::default().samples(20));
    if !beehive_sentinel::COMPILED_OFF {
        bench_feed(&mut h);
    }
    bench_offload_request(&mut h);
    h.finish();
}
