//! Telemetry overhead guard.
//!
//! The no-op sink must be near-free: an untraced run executes every probe
//! with no recorder installed, so the only cost is the thread-local check.
//! This bench pins that down two ways:
//!
//! * `probe/*` — the raw cost of one probe call with no recorder, with a
//!   recorder installed, and of an argument-carrying instant,
//! * `request/offload` — a hot end-to-end experiment iteration (the same
//!   shape as `components.rs`'s `request/offload/*`) with probes present
//!   but disabled.
//!
//! Run it once normally and once with tracing compiled out entirely, then
//! compare the `request/offload` rows — they should be indistinguishable:
//!
//! ```text
//! cargo bench -p beehive-bench --bench telemetry
//! CARGO_TARGET_DIR=target/compile-off \
//!     cargo bench -p beehive-bench --bench telemetry \
//!     --features beehive-telemetry/compile-off
//! ```
//!
//! The header line reports which mode the binary was compiled in. Give the
//! compiled-off run its own `CARGO_TARGET_DIR`: cargo keeps one copy of each
//! artifact per target dir, so building the feature into the shared
//! `target/` would leave a probe-free `repro` binary behind for later plain
//! builds to re-use as fresh.

use std::collections::HashMap;
use std::sync::Arc;

use beehive_apps::{App, AppKind, Fidelity};
use beehive_bench::{black_box, BenchConfig, Harness};
use beehive_core::config::BeeHiveConfig;
use beehive_core::{FunctionRuntime, OffloadSession, ServerRuntime, SessionStep};
use beehive_db::Database;
use beehive_proxy::Proxy;
use beehive_telemetry as tele;
use beehive_vm::{CostModel, Value};

fn fresh_server(app: &App) -> ServerRuntime {
    let mut server = ServerRuntime::new(
        Arc::clone(&app.program),
        BeeHiveConfig::default(),
        Proxy::new(Database::new()),
        CostModel::default(),
    );
    app.install(&mut server);
    server
}

fn drive_offload(
    server: &mut ServerRuntime,
    session: &mut OffloadSession,
    funcs: &mut HashMap<u32, FunctionRuntime>,
) -> Value {
    loop {
        let id = session.function_id;
        let mut f = funcs.remove(&id).unwrap();
        let step = session.next(server, &mut f);
        funcs.insert(id, f);
        match step {
            SessionStep::Need(_) => {}
            SessionStep::SyncFromPeer { .. }
            | SessionStep::ServerGc
            | SessionStep::AwaitLock { .. } => unreachable!("single instance, no peers"),
            SessionStep::Finished(v) => return v,
        }
    }
}

fn bench_probes(h: &mut Harness) {
    // No recorder installed: the disabled path every untraced simulation
    // pays on each probe site.
    h.bench("probe/disabled/begin_end", || {
        tele::begin(tele::Track::Server, "bench", &[]);
        tele::end(tele::Track::Server, "bench", &[]);
    });
    h.bench("probe/disabled/instant_args", || {
        tele::instant(
            tele::Track::Request(7),
            "bench",
            &[("value", tele::Arg::UInt(black_box(42)))],
        );
    });

    if tele::COMPILED_OFF {
        return; // a recorder cannot be driven when probes compile to nothing
    }
    // Recorder installed: the recording-sink cost per event. The buffer is
    // drained every batch so memory stays bounded and `take` amortizes out.
    tele::install();
    let mut n = 0u32;
    h.bench("probe/recording/begin_end", || {
        tele::begin(tele::Track::Server, "bench", &[]);
        tele::end(tele::Track::Server, "bench", &[]);
        n += 1;
        if n >= 4096 {
            n = 0;
            black_box(tele::take());
            tele::install();
        }
    });
    black_box(tele::take());
}

fn bench_offload_request(h: &mut Harness) {
    let app = App::build(AppKind::Pybbs, Fidelity::Scaled(2048));
    let mut server = fresh_server(&app);
    let mut funcs = HashMap::new();
    funcs.insert(
        0,
        FunctionRuntime::new(0, &app.program, CostModel::default()),
    );
    let net = server.config.net;
    let mut warm = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(1)],
        false,
        net,
        false,
    );
    drive_offload(&mut server, &mut warm, &mut funcs);
    let mut arg = 0i64;
    h.bench("request/offload", || {
        arg = (arg + 1) % 997;
        let mut s = {
            let f = funcs.get_mut(&0).unwrap();
            OffloadSession::start(
                &mut server,
                f,
                app.root,
                vec![Value::I64(arg)],
                false,
                net,
                false,
            )
        };
        drive_offload(&mut server, &mut s, &mut funcs)
    });
}

fn main() {
    println!(
        "telemetry mode: {}",
        if tele::COMPILED_OFF {
            "compiled off (feature beehive-telemetry/compile-off)"
        } else {
            "no-op sink (probes live, no recorder)"
        }
    );
    let mut h = Harness::new(BenchConfig::default().samples(20));
    bench_probes(&mut h);
    bench_offload_request(&mut h);
    h.finish();
}
