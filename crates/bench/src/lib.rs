//! repro harness lib (bench targets live in benches/)
