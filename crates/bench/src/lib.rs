//! Self-timed benchmark harness — the zero-dependency replacement for
//! criterion that the `benches/` targets run on (`harness = false`).
//!
//! Each benchmark is warmed up for a fixed wall-clock budget, a per-iteration
//! estimate is taken, and then `samples` batches are timed with enough
//! iterations per batch to fill the measurement budget. The report prints
//! median / mean / min / max per-iteration times.
//!
//! Tuning knobs (environment variables, all optional):
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `BEEHIVE_BENCH_SAMPLES` | timed batches per benchmark | per-suite |
//! | `BEEHIVE_BENCH_WARMUP_MS` | warm-up budget per benchmark | per-suite |
//! | `BEEHIVE_BENCH_MEASURE_MS` | measurement budget per benchmark | per-suite |
//!
//! `BEEHIVE_BENCH_QUICK=1` shrinks everything to a smoke-test size (1 sample,
//! tiny budgets) so CI can check the benches still run without paying for a
//! real measurement.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-suite timing configuration (see the module docs for the env knobs).
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Timed batches per benchmark.
    pub samples: usize,
    /// Wall-clock warm-up budget per benchmark.
    pub warmup: Duration,
    /// Wall-clock measurement budget per benchmark (split across samples).
    pub measure: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            samples: 10,
            warmup: Duration::from_secs(1),
            measure: Duration::from_secs(3),
        }
    }
}

impl BenchConfig {
    /// Apply the `BEEHIVE_BENCH_*` environment overrides to `self`.
    pub fn from_env(mut self) -> Self {
        if env_flag("BEEHIVE_BENCH_QUICK") {
            self.samples = 1;
            self.warmup = Duration::from_millis(1);
            self.measure = Duration::from_millis(1);
        }
        if let Some(n) = env_u64("BEEHIVE_BENCH_SAMPLES") {
            self.samples = (n as usize).max(1);
        }
        if let Some(ms) = env_u64("BEEHIVE_BENCH_WARMUP_MS") {
            self.warmup = Duration::from_millis(ms);
        }
        if let Some(ms) = env_u64("BEEHIVE_BENCH_MEASURE_MS") {
            self.measure = Duration::from_millis(ms);
        }
        self
    }

    /// Builder: timed batches per benchmark.
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Builder: warm-up budget.
    pub fn warmup(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Builder: measurement budget.
    pub fn measure(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Summary statistics for one benchmark, in seconds per iteration.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Median over the timed batches.
    pub median: f64,
    /// Mean over the timed batches.
    pub mean: f64,
    /// Fastest batch.
    pub min: f64,
    /// Slowest batch.
    pub max: f64,
    /// Iterations per batch.
    pub iters: u64,
}

/// A benchmark suite: times closures and prints one aligned row each.
pub struct Harness {
    cfg: BenchConfig,
    ran: usize,
}

impl Harness {
    /// A suite with the given defaults, after env overrides.
    pub fn new(cfg: BenchConfig) -> Harness {
        Harness {
            cfg: cfg.from_env(),
            ran: 0,
        }
    }

    /// Warm up, measure, and report one benchmark. Returns the statistics so
    /// callers can assert on them if they want.
    pub fn bench<R>(&mut self, name: &str, mut routine: impl FnMut() -> R) -> Sample {
        if self.ran == 0 {
            println!(
                "{:<44} {:>12} {:>12} {:>12} {:>12}",
                "benchmark", "median/iter", "mean", "min", "max"
            );
        }
        self.ran += 1;

        // Warm-up doubles as the batch-size estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.cfg.warmup {
                break;
            }
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.cfg.measure.as_secs_f64() / self.cfg.samples as f64;
        let iters = ((budget / est.max(1e-9)).ceil() as u64).max(1);

        let mut times = Vec::with_capacity(self.cfg.samples);
        for _ in 0..self.cfg.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times.push(t0.elapsed().as_secs_f64() / iters as f64);
        }
        times.sort_by(f64::total_cmp);
        let stats = Sample {
            median: times[times.len() / 2],
            mean: times.iter().sum::<f64>() / times.len() as f64,
            min: times[0],
            max: times[times.len() - 1],
            iters,
        };
        println!(
            "{:<44} {:>12} {:>12} {:>12} {:>12}   ({} × {} iters)",
            name,
            fmt_time(stats.median),
            fmt_time(stats.mean),
            fmt_time(stats.min),
            fmt_time(stats.max),
            self.cfg.samples,
            iters,
        );
        stats
    }

    /// Footer; call once after the last benchmark.
    pub fn finish(self) {
        println!("{} benchmarks done.", self.ran);
    }
}

/// Render seconds with an auto-selected unit (ns / µs / ms / s).
pub fn fmt_time(secs: f64) -> String {
    let ns = secs * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{secs:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_pick_sensible_scales() {
        assert_eq!(fmt_time(5e-9), "5.0 ns");
        assert_eq!(fmt_time(2.5e-6), "2.5 µs");
        assert_eq!(fmt_time(1.25e-3), "1.25 ms");
        assert_eq!(fmt_time(4.2), "4.200 s");
    }

    #[test]
    fn harness_measures_and_counts() {
        let cfg = BenchConfig {
            samples: 2,
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(2),
        };
        let mut h = Harness::new(cfg);
        let mut n = 0u64;
        let s = h.bench("test/spin", || {
            n += 1;
            black_box(n)
        });
        assert!(s.min <= s.median && s.median <= s.max);
        assert!(s.mean > 0.0);
        assert!(n >= s.iters, "routine actually ran");
        h.finish();
    }
}
