//! `repro` — regenerate every table and figure of the BeeHive paper.
//!
//! ```text
//! repro [--quick] [--seed N] [all|fig2|table1|table2|fig7|table3|fig8|fig9|
//!                             table4|fig10|table5|gcstats|shadow|ablations|combination]
//! ```
//!
//! Without a subcommand, everything runs in paper order. `--quick` shortens
//! horizons (the same mode the test suite and Criterion benches use); the
//! default horizons match the paper's (e.g. 180 s burst windows).

use beehive_apps::AppKind;
use beehive_scaling::table1;
use beehive_workload::experiment::{
    ablation::ablation,
    combination::combination,
    breakdown::{gc_stats, shadow_breakdown},
    fig2::fig2,
    fig7::fig7,
    fig8::fig8,
    fig9::fig9,
    slo::{fig10, table4},
    table2::table2,
    table5::table5,
    Profile,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = Profile::full();
    let mut cmds: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => profile.quick = true,
            "--seed" => {
                profile.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--help" | "-h" => {
                println!(
                    "repro [--quick] [--seed N] [all|fig2|table1|table2|fig7|table3|fig8|fig9|table4|fig10|table5|gcstats|shadow|ablations|combination]"
                );
                return;
            }
            other => cmds.push(other.to_string()),
        }
    }
    if cmds.is_empty() {
        cmds.push("all".into());
    }

    let all = cmds.iter().any(|c| c == "all");
    let want = |name: &str| all || cmds.iter().any(|c| c == name);
    let apps = AppKind::all();

    if want("table1") {
        banner("Table 1 — scaling solutions compared");
        println!(
            "{:<14} {:<18} {:<14} {:<16} {:<12} {}",
            "Solution", "Min running time", "Billing", "Preparation", "Config", "Auto-scaling"
        );
        for row in table1() {
            println!(
                "{:<14} {:<18} {:<14} {:<16} {:<12} {}",
                row.name,
                row.min_running_time,
                row.billing_granularity,
                row.preparation_time,
                row.config_granularity,
                if row.auto_scaling { "yes" } else { "no" }
            );
        }
    }

    if want("fig2") {
        banner("Figure 2");
        println!("{}", fig2(profile));
    }

    if want("table2") {
        banner("Table 2");
        println!("{}", table2());
    }

    if want("fig7") || want("table3") {
        banner("Figure 7 + Table 3");
        let mut table3: Vec<(AppKind, Vec<(String, f64)>)> = Vec::new();
        for kind in apps {
            let rep = fig7(kind, profile);
            println!("{rep}");
            table3.push((
                kind,
                rep.rows
                    .iter()
                    .map(|r| (r.strategy.label().to_string(), r.scaling_cost))
                    .collect(),
            ));
        }
        println!("Table 3 — financial cost ($) for scaling in Figure 7");
        if let Some((_, first)) = table3.first() {
            print!("{:<22}", "Scaling solutions");
            for (k, _) in &table3 {
                print!("{:>12}", k.name());
            }
            println!();
            for (i, (label, _)) in first.iter().enumerate() {
                print!("{:<22}", label);
                for (_, costs) in &table3 {
                    print!("{:>12.4}", costs[i].1);
                }
                println!();
            }
        }
    }

    if want("fig8") {
        banner("Figure 8");
        for kind in apps {
            println!("{}", fig8(kind, profile));
        }
    }

    if want("fig9") {
        banner("Figure 9");
        println!("{}", fig9(AppKind::Pybbs, profile));
        if !profile.quick {
            for kind in [AppKind::Blog, AppKind::Thumbnail] {
                println!("{}", fig9(kind, profile));
            }
        }
    }

    if want("table4") {
        banner("Table 4");
        println!("{}", table4(&apps, profile));
    }

    if want("fig10") {
        banner("Figure 10");
        println!("{}", fig10(profile));
    }

    if want("table5") {
        banner("Table 5");
        println!("{}", table5(&apps, profile));
    }

    if want("gcstats") {
        banner("§5.6 — memory consumption and GC");
        println!("{}", gc_stats(&apps, profile));
    }

    if want("shadow") {
        banner("§5.6 — shadow execution");
        for kind in apps {
            println!("{}", shadow_breakdown(kind, profile));
        }
    }

    if want("ablations") {
        banner("Ablations");
        println!("{}", ablation(AppKind::Pybbs, profile));
    }

    if want("combination") {
        banner("§5.7 — combination mode");
        println!("{}", combination(AppKind::Pybbs, profile));
    }
}

fn banner(title: &str) {
    println!("\n{}", "=".repeat(74));
    println!("{title}");
    println!("{}", "=".repeat(74));
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}
