//! `repro` — regenerate every table and figure of the BeeHive paper.
//!
//! ```text
//! repro [--quick] [--seed N] [--json] [all|fig2|table1|table2|fig7|table3|fig8|
//!                             fig9|table4|fig10|table5|gcstats|shadow|ablations|combination]
//! ```
//!
//! Without a subcommand, everything runs in paper order. `--quick` shortens
//! horizons (the same mode the test suite and benches use); the default
//! horizons match the paper's (e.g. 180 s burst windows). `--json` replaces
//! the Display tables with one machine-readable JSON document: an array of
//! `{"title": ..., "body": ...}` reports, rendered deterministically (the
//! same seed yields byte-identical output at any worker count).
//!
//! Every driver fans its independent simulations out over the parallel
//! scenario engine (`beehive_workload::engine`); pin the worker count with
//! the `BEEHIVE_WORKERS` environment variable.

use beehive_apps::AppKind;
use beehive_scaling::table1;
use beehive_sim::json::{Json, ToJson};
use beehive_workload::engine::RunReport;
use beehive_workload::experiment::{
    ablation::ablation,
    combination::combination,
    breakdown::{gc_stats, shadow_breakdown},
    fig2::fig2,
    fig7::fig7,
    fig8::fig8,
    fig9::fig9,
    slo::{fig10, table4},
    table2::table2,
    table5::table5,
    Profile,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = Profile::full();
    let mut json = false;
    let mut cmds: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => profile.quick = true,
            "--json" => json = true,
            "--seed" => {
                profile.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--help" | "-h" => {
                println!(
                    "repro [--quick] [--seed N] [--json] [all|fig2|table1|table2|fig7|table3|fig8|fig9|table4|fig10|table5|gcstats|shadow|ablations|combination]"
                );
                return;
            }
            other => cmds.push(other.to_string()),
        }
    }
    if cmds.is_empty() {
        cmds.push("all".into());
    }
    const KNOWN: [&str; 15] = [
        "all", "fig2", "table1", "table2", "fig7", "table3", "fig8", "fig9", "table4", "fig10",
        "table5", "gcstats", "shadow", "ablations", "combination",
    ];
    for c in &cmds {
        if !KNOWN.contains(&c.as_str()) {
            die(&format!("unknown item {c:?} (run with --help for the list)"));
        }
    }

    let all = cmds.iter().any(|c| c == "all");
    let want = |name: &str| all || cmds.iter().any(|c| c == name);
    let apps = AppKind::all();
    // In JSON mode every section appends a RunReport; one array document is
    // printed at the end.
    let mut reports: Vec<RunReport> = Vec::new();

    if want("table1") {
        if json {
            reports.push(RunReport::new(
                "table1",
                Json::obj([("rows".into(), Json::arr(table1().iter()))]),
            ));
        } else {
            banner("Table 1 — scaling solutions compared");
            println!(
                "{:<14} {:<18} {:<14} {:<16} {:<12} {}",
                "Solution", "Min running time", "Billing", "Preparation", "Config", "Auto-scaling"
            );
            for row in table1() {
                println!(
                    "{:<14} {:<18} {:<14} {:<16} {:<12} {}",
                    row.name,
                    row.min_running_time,
                    row.billing_granularity,
                    row.preparation_time,
                    row.config_granularity,
                    if row.auto_scaling { "yes" } else { "no" }
                );
            }
        }
    }

    if want("fig2") {
        let rep = fig2(profile);
        if json {
            reports.push(RunReport::new("fig2", rep.to_json()));
        } else {
            banner("Figure 2");
            println!("{rep}");
        }
    }

    if want("table2") {
        let rep = table2();
        if json {
            reports.push(RunReport::new("table2", rep.to_json()));
        } else {
            banner("Table 2");
            println!("{rep}");
        }
    }

    if want("fig7") || want("table3") {
        if !json {
            banner("Figure 7 + Table 3");
        }
        let mut table3: Vec<(AppKind, Vec<(String, f64)>)> = Vec::new();
        let mut fig7_bodies = Vec::new();
        for kind in apps {
            let rep = fig7(kind, profile);
            if json {
                fig7_bodies.push(rep.to_json());
            } else {
                println!("{rep}");
            }
            table3.push((
                kind,
                rep.rows
                    .iter()
                    .map(|r| (r.strategy.label().to_string(), r.scaling_cost))
                    .collect(),
            ));
        }
        if json {
            reports.push(RunReport::new(
                "fig7",
                Json::obj([("apps".into(), Json::Arr(fig7_bodies))]),
            ));
            reports.push(RunReport::new(
                "table3",
                Json::obj([(
                    "costs".into(),
                    Json::Arr(
                        table3
                            .iter()
                            .map(|(kind, costs)| {
                                Json::obj([
                                    ("app".into(), Json::from(kind.name())),
                                    (
                                        "by_strategy".into(),
                                        Json::Obj(
                                            costs
                                                .iter()
                                                .map(|(l, c)| (l.clone(), Json::from(*c)))
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                )]),
            ));
        } else {
            println!("Table 3 — financial cost ($) for scaling in Figure 7");
            if let Some((_, first)) = table3.first() {
                print!("{:<22}", "Scaling solutions");
                for (k, _) in &table3 {
                    print!("{:>12}", k.name());
                }
                println!();
                for (i, (label, _)) in first.iter().enumerate() {
                    print!("{:<22}", label);
                    for (_, costs) in &table3 {
                        print!("{:>12.4}", costs[i].1);
                    }
                    println!();
                }
            }
        }
    }

    if want("fig8") {
        if json {
            let bodies: Vec<Json> = apps.iter().map(|&k| fig8(k, profile).to_json()).collect();
            reports.push(RunReport::new(
                "fig8",
                Json::obj([("apps".into(), Json::Arr(bodies))]),
            ));
        } else {
            banner("Figure 8");
            for kind in apps {
                println!("{}", fig8(kind, profile));
            }
        }
    }

    if want("fig9") {
        let mut kinds = vec![AppKind::Pybbs];
        if !profile.quick {
            kinds.extend([AppKind::Blog, AppKind::Thumbnail]);
        }
        if json {
            let bodies: Vec<Json> = kinds.iter().map(|&k| fig9(k, profile).to_json()).collect();
            reports.push(RunReport::new(
                "fig9",
                Json::obj([("apps".into(), Json::Arr(bodies))]),
            ));
        } else {
            banner("Figure 9");
            for kind in kinds {
                println!("{}", fig9(kind, profile));
            }
        }
    }

    if want("table4") {
        let rep = table4(&apps, profile);
        if json {
            reports.push(RunReport::new("table4", rep.to_json()));
        } else {
            banner("Table 4");
            println!("{rep}");
        }
    }

    if want("fig10") {
        let rep = fig10(profile);
        if json {
            reports.push(RunReport::new("fig10", rep.to_json()));
        } else {
            banner("Figure 10");
            println!("{rep}");
        }
    }

    if want("table5") {
        let rep = table5(&apps, profile);
        if json {
            reports.push(RunReport::new("table5", rep.to_json()));
        } else {
            banner("Table 5");
            println!("{rep}");
        }
    }

    if want("gcstats") {
        let rep = gc_stats(&apps, profile);
        if json {
            reports.push(RunReport::new("gcstats", rep.to_json()));
        } else {
            banner("§5.6 — memory consumption and GC");
            println!("{rep}");
        }
    }

    if want("shadow") {
        if json {
            let bodies: Vec<Json> = apps
                .iter()
                .map(|&k| shadow_breakdown(k, profile).to_json())
                .collect();
            reports.push(RunReport::new(
                "shadow",
                Json::obj([("apps".into(), Json::Arr(bodies))]),
            ));
        } else {
            banner("§5.6 — shadow execution");
            for kind in apps {
                println!("{}", shadow_breakdown(kind, profile));
            }
        }
    }

    if want("ablations") {
        let rep = ablation(AppKind::Pybbs, profile);
        if json {
            reports.push(RunReport::new("ablations", rep.to_json()));
        } else {
            banner("Ablations");
            println!("{rep}");
        }
    }

    if want("combination") {
        let rep = combination(AppKind::Pybbs, profile);
        if json {
            reports.push(RunReport::new("combination", rep.to_json()));
        } else {
            banner("§5.7 — combination mode");
            println!("{rep}");
        }
    }

    if json {
        let doc = Json::Arr(
            reports
                .iter()
                .map(|r| {
                    Json::obj([
                        ("title".into(), Json::from(r.title.clone())),
                        ("body".into(), r.body.clone()),
                    ])
                })
                .collect(),
        );
        println!("{}", doc.render());
    }
}

fn banner(title: &str) {
    println!("\n{}", "=".repeat(74));
    println!("{title}");
    println!("{}", "=".repeat(74));
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}
