//! `repro` — regenerate every table and figure of the BeeHive paper.
//!
//! ```text
//! repro [--quick] [--seed N] [--chaos-seed N] [--json] [--trace DIR]
//!       [--metrics DIR] [--profile DIR] [--insight DIR] [--obs DIR]
//!       [--sentinel]
//!       [list|all|fig2|table1|table2|fig7|table3|fig8|
//!        fig9|table4|fig10|table5|gcstats|shadow|ablations|combination|
//!        recovery]
//! repro compare BASELINE CURRENT [--bench-out FILE]
//! repro diff BASELINE CURRENT [--bench-out FILE]
//! repro top ITEM [--quick] [--seed N] [--chaos-seed N] [--top N]
//! repro explain ITEM [--quick] [--seed N] [--chaos-seed N] [--slowest N]
//! repro check ITEM... [--quick] [--strict] [--json] [--seed N] [--chaos-seed N]
//! repro timeline ITEM [--quick] [--seed N] [--chaos-seed N] [--window NS] [--json|--svg]
//! repro lag BASELINE CURRENT
//! ```
//!
//! Without a subcommand, everything runs in paper order; `repro list`
//! prints every runnable item with a one-line description. `--quick`
//! shortens horizons (the same mode the test suite and benches use); the
//! default horizons match the paper's (e.g. 180 s burst windows). `--json`
//! replaces the Display tables with one machine-readable JSON document: an
//! array of `{"title": ..., "body": ...}` reports, rendered
//! deterministically (the same seed yields byte-identical output at any
//! worker count). `--trace DIR` additionally records a virtual-time trace
//! of every simulation and writes, per experiment, a Chrome trace-event
//! file (`DIR/<item>.trace.json`, loadable in `chrome://tracing` or
//! Perfetto) plus a per-request critical-path summary
//! (`DIR/<item>.summary.json`); for a fixed seed these files are
//! byte-identical at any `BEEHIVE_WORKERS`.
//!
//! `--metrics DIR` keeps a live virtual-time metrics registry in every
//! simulation and writes, per experiment, a snapshot
//! (`DIR/<item>.metrics.json`, the `beehive_metrics` JSON shape) plus a
//! Prometheus text-exposition rendering (`DIR/<item>.prom`). These too are
//! byte-identical at any worker count for a fixed seed.
//!
//! `--profile DIR` records an exact-attribution call-tree profile of every
//! simulation (per endpoint lane: `server`, `faas:primary`, `faas:shadow`)
//! and writes, per experiment, a collapsed-stack file (`DIR/<item>.folded`,
//! flamegraph.pl / inferno compatible, scenario label as the first frame)
//! plus the full call tree (`DIR/<item>.profile.json`). When combined with
//! `--trace`, each scenario's summary gains a `"hottest"` per-lane table.
//! Byte-identical at any worker count for a fixed seed. `repro top ITEM`
//! runs one item with profiling on and prints the per-lane hottest-method
//! tables directly.
//!
//! `--insight DIR` records a trace of every simulation and writes, per
//! experiment, a latency-attribution + SLO document
//! (`DIR/<item>.insight.json`, the `beehive_insight` JSON shape): each
//! completed request's latency decomposed into typed components that sum
//! exactly to the measured latency, slowest-K exemplar breakdowns, and
//! per-scenario error-budget/burn-rate evaluation. Byte-identical at any
//! worker count for a fixed seed.
//!
//! `repro compare BASELINE CURRENT` diffs two such snapshot directories
//! over the watched-metric table (P50/P99 request latency, fallback count,
//! cold-boot count, total GC pause) and exits non-zero when any watched
//! metric regresses beyond its tolerance — the perf gate `scripts/verify.sh`
//! runs against the checked-in golden baseline. Deltas that *cleared* the
//! tolerance band downward are flagged `improved` (informational; the exit
//! code only reflects regressions). `--bench-out FILE` additionally writes
//! the full delta table as JSON.
//!
//! `repro diff BASELINE CURRENT` is `compare` plus root-cause diagnosis:
//! when the two directories also hold `--insight` documents (and,
//! optionally, `--profile` folded stacks), every regressed latency metric
//! is attributed to the attribution component whose per-request mean grew
//! the most, the watched counters that moved, and the hottest grown
//! profiler frame.
//!
//! `repro explain ITEM [--slowest N]` runs one item with tracing on and
//! prints each scenario's latency-attribution table, SLO evaluation, and
//! slowest-request component breakdowns.
//!
//! `repro check ITEM...` runs the named items with tracing on, replays
//! every recorded trace through the `beehive_sentinel` conformance engine,
//! prints the per-scenario verdicts (`--json` for the `SentinelReport`
//! document) and exits 1 when any invariant was violated. `--strict`
//! escalates unknown-event-vocabulary warnings to violations. For a fixed
//! seed the report is byte-identical at any `BEEHIVE_WORKERS`.
//!
//! `repro timeline ITEM` runs one item with the streaming observatory
//! reducer riding the recorder and prints, per scenario, fixed-width
//! virtual-time series (offered/served RPS, P50/P99, queue depth,
//! in-flight, fleet gauges, warm-hit rate) as ASCII sparklines, plus the
//! derived elasticity signals: per-burst scale-up lag, provisioning
//! efficiency and cold-start amplification. `--window NS` sets the bin
//! width (default 1 s of virtual time); `--json` prints the
//! `TimelineDoc` JSON artifact instead, `--svg` a self-contained SVG
//! panel chart. For a fixed seed all three renderings are byte-identical
//! at any `BEEHIVE_WORKERS`.
//!
//! `repro lag BASELINE CURRENT` loads the `*.timeline.json` artifacts
//! from two directories (written by `--obs`) and diffs the scale-up lag
//! of every matching burst, exiting 1 when any lag regressed beyond the
//! tolerance band.
//!
//! `--sentinel` runs the same checker *online* inside every simulation of
//! the selected items (no trace is retained; events stream through the
//! checker as they are recorded) and exits 1 when any run violated an
//! invariant. `--obs DIR` is the umbrella observability flag: it implies
//! `--trace DIR --metrics DIR --profile DIR --insight DIR --sentinel` and
//! additionally writes `DIR/<item>.sentinel.json` conformance reports plus
//! `DIR/<item>.timeline.json` / `DIR/<item>.timeline.svg` elasticity
//! timelines, so one pass captures every artifact the toolchain can
//! produce.
//!
//! Unknown flags, unknown items and malformed arguments exit with status 2
//! and a one-line error on stderr (stdout stays clean).
//!
//! Every driver fans its independent simulations out over the parallel
//! scenario engine (`beehive_workload::engine`); pin the worker count with
//! the `BEEHIVE_WORKERS` environment variable.

use beehive_apps::AppKind;
use beehive_scaling::table1;
use beehive_sim::json::{Json, ToJson};
use beehive_workload::engine::RunReport;
use beehive_workload::experiment::{
    ablation::ablation,
    breakdown::{gc_stats, shadow_breakdown},
    combination::combination,
    fig2::fig2,
    fig7::fig7,
    fig8::fig8,
    fig9::fig9,
    recovery::recovery,
    slo::{fig10, table4},
    table2::table2,
    table5::table5,
    Profile,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        run_compare(&args[1..], false);
    }
    if args.first().map(String::as_str) == Some("diff") {
        run_compare(&args[1..], true);
    }
    if args.first().map(String::as_str) == Some("top") {
        run_top(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("explain") {
        run_explain(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("check") {
        run_check(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("timeline") {
        run_timeline(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("lag") {
        run_lag(&args[1..]);
    }
    let mut profile = Profile::full();
    let mut json = false;
    let mut chaos_seed: Option<u64> = None;
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut metrics_dir: Option<std::path::PathBuf> = None;
    let mut profile_dir: Option<std::path::PathBuf> = None;
    let mut insight_dir: Option<std::path::PathBuf> = None;
    let mut obs_dir: Option<std::path::PathBuf> = None;
    let mut sentinel = false;
    let mut cmds: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => profile.quick = true,
            "--json" => json = true,
            "--seed" => {
                profile.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--chaos-seed" => {
                chaos_seed = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--chaos-seed needs an integer")),
                );
            }
            "--trace" => {
                trace_dir = Some(dir_value(&mut it, "--trace"));
            }
            "--metrics" => {
                metrics_dir = Some(dir_value(&mut it, "--metrics"));
            }
            "--profile" => {
                profile_dir = Some(dir_value(&mut it, "--profile"));
            }
            "--insight" => {
                insight_dir = Some(dir_value(&mut it, "--insight"));
            }
            "--obs" => {
                obs_dir = Some(dir_value(&mut it, "--obs"));
            }
            "--sentinel" => sentinel = true,
            "--help" | "-h" => {
                println!(
                    "repro [--quick] [--seed N] [--chaos-seed N] [--json] [--trace DIR] [--metrics DIR] [--profile DIR] [--insight DIR] [--obs DIR] [--sentinel] [list|all|fig2|table1|table2|fig7|table3|fig8|fig9|table4|fig10|table5|gcstats|shadow|ablations|combination|recovery]"
                );
                println!("repro compare BASELINE CURRENT [--bench-out FILE]");
                println!("repro diff BASELINE CURRENT [--bench-out FILE]");
                println!("repro top ITEM [--quick] [--seed N] [--chaos-seed N] [--top N]");
                println!("repro explain ITEM [--quick] [--seed N] [--chaos-seed N] [--slowest N]");
                println!(
                    "repro check ITEM... [--quick] [--strict] [--json] [--seed N] [--chaos-seed N]"
                );
                println!(
                    "repro timeline ITEM [--quick] [--seed N] [--chaos-seed N] [--window NS] [--json|--svg]"
                );
                println!("repro lag BASELINE CURRENT");
                return;
            }
            other if other.starts_with('-') => {
                die(&format!("unknown flag {other:?} (see `repro --help`)"))
            }
            other => cmds.push(other.to_string()),
        }
    }
    if cmds.is_empty() {
        cmds.push("all".into());
    }
    if cmds.iter().any(|c| c == "list") {
        list_items();
        return;
    }
    const KNOWN: [&str; 16] = [
        "all",
        "fig2",
        "table1",
        "table2",
        "fig7",
        "table3",
        "fig8",
        "fig9",
        "table4",
        "fig10",
        "table5",
        "gcstats",
        "shadow",
        "ablations",
        "combination",
        "recovery",
    ];
    for c in &cmds {
        if !KNOWN.contains(&c.as_str()) {
            die(&format!(
                "unknown item {c:?} (run `repro list` for the available items)"
            ));
        }
    }
    // `--obs DIR` is the umbrella: every artifact family, one directory,
    // one pass. Specific flags given alongside it keep their own
    // directories.
    if let Some(dir) = &obs_dir {
        trace_dir.get_or_insert_with(|| dir.clone());
        metrics_dir.get_or_insert_with(|| dir.clone());
        profile_dir.get_or_insert_with(|| dir.clone());
        insight_dir.get_or_insert_with(|| dir.clone());
        sentinel = true;
        // The elasticity timeline rides the same recorder: one more
        // consumer, two more artifacts per item.
        beehive_workload::engine::set_observe_default(true);
    }
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| die(&format!("creating {}: {e}", dir.display())));
        beehive_workload::engine::set_trace_default(true);
    }
    if let Some(dir) = &insight_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| die(&format!("creating {}: {e}", dir.display())));
        // Attribution reads the recorded trace.
        beehive_workload::engine::set_trace_default(true);
    }
    if let Some(dir) = &metrics_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| die(&format!("creating {}: {e}", dir.display())));
        beehive_workload::engine::set_metrics_default(true);
    }
    if let Some(dir) = &profile_dir {
        if beehive_profiler::COMPILED_OFF {
            die(
                "--profile is unavailable: this binary was built with beehive-profiler/compile-off",
            );
        }
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| die(&format!("creating {}: {e}", dir.display())));
        beehive_workload::engine::set_profile_default(true);
    }
    if sentinel {
        if beehive_telemetry::COMPILED_OFF || beehive_sentinel::COMPILED_OFF {
            die("--sentinel is unavailable: this binary was built with telemetry or sentinel compile-off");
        }
        beehive_workload::engine::set_sentinel_default(true);
    }

    // One artifact flush per item: profiles feed the trace summary, traces
    // feed both the trace files and the insight document, the online
    // checker's verdicts gate the exit status.
    let sentinel_violations = std::cell::Cell::new(0usize);
    let flush = |name: &str| {
        let profiles = flush_profiles(profile_dir.as_deref(), name);
        let traces = if trace_dir.is_some() || insight_dir.is_some() {
            beehive_workload::engine::drain_traces()
        } else {
            Vec::new()
        };
        flush_traces(trace_dir.as_deref(), name, &traces, &profiles);
        flush_insight(insight_dir.as_deref(), name, &traces);
        flush_metrics(metrics_dir.as_deref(), name);
        flush_timeline(obs_dir.as_deref(), name);
        if sentinel {
            let v = flush_sentinel(obs_dir.as_deref(), name);
            sentinel_violations.set(sentinel_violations.get() + v);
        }
    };

    let all = cmds.iter().any(|c| c == "all");
    let want = |name: &str| all || cmds.iter().any(|c| c == name);
    let apps = AppKind::all();
    // In JSON mode every section appends a RunReport; one array document is
    // printed at the end.
    let mut reports: Vec<RunReport> = Vec::new();

    if want("table1") {
        if json {
            reports.push(RunReport::new(
                "table1",
                Json::obj([("rows".into(), Json::arr(table1().iter()))]),
            ));
        } else {
            banner("Table 1 — scaling solutions compared");
            println!(
                "{:<14} {:<18} {:<14} {:<16} {:<12} Auto-scaling",
                "Solution", "Min running time", "Billing", "Preparation", "Config"
            );
            for row in table1() {
                println!(
                    "{:<14} {:<18} {:<14} {:<16} {:<12} {}",
                    row.name,
                    row.min_running_time,
                    row.billing_granularity,
                    row.preparation_time,
                    row.config_granularity,
                    if row.auto_scaling { "yes" } else { "no" }
                );
            }
        }
    }

    if want("fig2") {
        let rep = fig2(profile);
        if json {
            reports.push(RunReport::new("fig2", rep.to_json()));
        } else {
            banner("Figure 2");
            println!("{rep}");
        }
        flush("fig2");
    }

    if want("table2") {
        let rep = table2();
        if json {
            reports.push(RunReport::new("table2", rep.to_json()));
        } else {
            banner("Table 2");
            println!("{rep}");
        }
    }

    if want("fig7") || want("table3") {
        if !json {
            banner("Figure 7 + Table 3");
        }
        let mut table3: Vec<(AppKind, Vec<(String, f64)>)> = Vec::new();
        let mut fig7_bodies = Vec::new();
        for kind in apps {
            let rep = fig7(kind, profile);
            if json {
                fig7_bodies.push(rep.to_json());
            } else {
                println!("{rep}");
            }
            table3.push((
                kind,
                rep.rows
                    .iter()
                    .map(|r| (r.strategy.label().to_string(), r.scaling_cost))
                    .collect(),
            ));
        }
        if json {
            reports.push(RunReport::new(
                "fig7",
                Json::obj([("apps".into(), Json::Arr(fig7_bodies))]),
            ));
            reports.push(RunReport::new(
                "table3",
                Json::obj([(
                    "costs".into(),
                    Json::Arr(
                        table3
                            .iter()
                            .map(|(kind, costs)| {
                                Json::obj([
                                    ("app".into(), Json::from(kind.name())),
                                    (
                                        "by_strategy".into(),
                                        Json::Obj(
                                            costs
                                                .iter()
                                                .map(|(l, c)| (l.clone(), Json::from(*c)))
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                )]),
            ));
        } else {
            println!("Table 3 — financial cost ($) for scaling in Figure 7");
            if let Some((_, first)) = table3.first() {
                print!("{:<22}", "Scaling solutions");
                for (k, _) in &table3 {
                    print!("{:>12}", k.name());
                }
                println!();
                for (i, (label, _)) in first.iter().enumerate() {
                    print!("{:<22}", label);
                    for (_, costs) in &table3 {
                        print!("{:>12.4}", costs[i].1);
                    }
                    println!();
                }
            }
        }
        flush("fig7");
    }

    if want("fig8") {
        if json {
            let bodies: Vec<Json> = apps.iter().map(|&k| fig8(k, profile).to_json()).collect();
            reports.push(RunReport::new(
                "fig8",
                Json::obj([("apps".into(), Json::Arr(bodies))]),
            ));
        } else {
            banner("Figure 8");
            for kind in apps {
                println!("{}", fig8(kind, profile));
            }
        }
        flush("fig8");
    }

    if want("fig9") {
        let mut kinds = vec![AppKind::Pybbs];
        if !profile.quick {
            kinds.extend([AppKind::Blog, AppKind::Thumbnail]);
        }
        if json {
            let bodies: Vec<Json> = kinds.iter().map(|&k| fig9(k, profile).to_json()).collect();
            reports.push(RunReport::new(
                "fig9",
                Json::obj([("apps".into(), Json::Arr(bodies))]),
            ));
        } else {
            banner("Figure 9");
            for kind in kinds {
                println!("{}", fig9(kind, profile));
            }
        }
        flush("fig9");
    }

    if want("table4") {
        let rep = table4(&apps, profile);
        if json {
            reports.push(RunReport::new("table4", rep.to_json()));
        } else {
            banner("Table 4");
            println!("{rep}");
        }
        flush("table4");
    }

    if want("fig10") {
        let rep = fig10(profile);
        if json {
            reports.push(RunReport::new("fig10", rep.to_json()));
        } else {
            banner("Figure 10");
            println!("{rep}");
        }
        flush("fig10");
    }

    if want("table5") {
        let rep = table5(&apps, profile);
        if json {
            reports.push(RunReport::new("table5", rep.to_json()));
        } else {
            banner("Table 5");
            println!("{rep}");
        }
        flush("table5");
    }

    if want("gcstats") {
        let rep = gc_stats(&apps, profile);
        if json {
            reports.push(RunReport::new("gcstats", rep.to_json()));
        } else {
            banner("§5.6 — memory consumption and GC");
            println!("{rep}");
        }
        flush("gcstats");
    }

    if want("shadow") {
        if json {
            let bodies: Vec<Json> = apps
                .iter()
                .map(|&k| shadow_breakdown(k, profile).to_json())
                .collect();
            reports.push(RunReport::new(
                "shadow",
                Json::obj([("apps".into(), Json::Arr(bodies))]),
            ));
        } else {
            banner("§5.6 — shadow execution");
            for kind in apps {
                println!("{}", shadow_breakdown(kind, profile));
            }
        }
        flush("shadow");
    }

    if want("ablations") {
        let rep = ablation(AppKind::Pybbs, profile);
        if json {
            reports.push(RunReport::new("ablations", rep.to_json()));
        } else {
            banner("Ablations");
            println!("{rep}");
        }
        flush("ablations");
    }

    if want("combination") {
        let rep = combination(AppKind::Pybbs, profile);
        if json {
            reports.push(RunReport::new("combination", rep.to_json()));
        } else {
            banner("§5.7 — combination mode");
            println!("{rep}");
        }
        flush("combination");
    }

    if want("recovery") {
        let rep = recovery(AppKind::Pybbs, profile, chaos_seed.unwrap_or(profile.seed));
        if json {
            reports.push(RunReport::new("recovery", rep.to_json()));
        } else {
            banner("§4.5 — failure recovery under fault injection");
            println!("{rep}");
        }
        flush("recovery");
    }

    if json {
        let doc = Json::Arr(
            reports
                .iter()
                .map(|r| {
                    Json::obj([
                        ("title".into(), Json::from(r.title.clone())),
                        ("body".into(), r.body.clone()),
                    ])
                })
                .collect(),
        );
        println!("{}", doc.render());
    }
    if sentinel_violations.get() > 0 {
        eprintln!(
            "sentinel: {} invariant violation(s) detected (see above)",
            sentinel_violations.get()
        );
        std::process::exit(1);
    }
}

/// `repro list`: every runnable item with a one-line description.
fn list_items() {
    let items: [(&str, &str); 16] = [
        ("all", "every item below, in paper order"),
        (
            "fig2",
            "motivation: closed-loop latency of a vanilla server under load",
        ),
        (
            "table1",
            "scaling solutions compared (billing, preparation, granularity)",
        ),
        ("table2", "application suite and workload characteristics"),
        ("fig7", "burst latency timelines for every scaling strategy"),
        ("table3", "financial cost of the scaling in Figure 7"),
        ("fig8", "sub-second elasticity around the scaling trigger"),
        ("fig9", "offload-ratio sweep: latency vs offloaded fraction"),
        (
            "table4",
            "SLO-driven offloading controller outcomes per app",
        ),
        ("fig10", "SLO controller timeline under a burst"),
        (
            "table5",
            "fallback and synchronization counts per offloaded request",
        ),
        ("gcstats", "§5.6 memory consumption and GC pauses"),
        ("shadow", "§5.6 shadow-execution warm-up breakdown"),
        (
            "ablations",
            "feature ablations (shadowing, proxy, refinement) on pybbs",
        ),
        (
            "combination",
            "§5.7 Semi-FaaS bridging an on-demand instance boot",
        ),
        (
            "recovery",
            "§4.5 MTTR and latency under injected instance crashes",
        ),
    ];
    println!("Runnable items (repro [flags] <item>...):");
    for (name, desc) in items {
        println!("  {name:<12} {desc}");
    }
    let subcommands: [(&str, &str); 7] = [
        (
            "top",
            "hottest simulated frames for one item (repro top ITEM)",
        ),
        (
            "explain",
            "latency attribution, SLO burn and slowest requests (repro explain ITEM)",
        ),
        (
            "check",
            "replay traces through the conformance engine (repro check ITEM...)",
        ),
        (
            "timeline",
            "elasticity timelines and scale-up lag for one item (repro timeline ITEM)",
        ),
        (
            "lag",
            "diff scale-up lag between two --obs directories (repro lag BASE CUR)",
        ),
        (
            "compare",
            "regression-gate two --metrics directories (repro compare BASE CUR)",
        ),
        (
            "diff",
            "compare plus root-cause diagnosis of regressed latency (repro diff BASE CUR)",
        ),
    ];
    println!("Subcommands:");
    for (name, desc) in subcommands {
        println!("  {name:<12} {desc}");
    }
    println!("Umbrella flags:");
    println!(
        "  --obs DIR    write every artifact family in one pass: trace + metrics + profile + insight + sentinel conformance reports + elasticity timelines"
    );
    println!("  --sentinel   run the online conformance checker in every simulation (exit 1 on violations)");
}

/// Write the drained traces as `DIR/<name>.trace.json` (Chrome trace-event
/// format) plus `DIR/<name>.summary.json` (per-request critical-path
/// summary). When `profiles` holds a call-tree profile for a scenario
/// label, that scenario's summary gains a `"hottest"` per-lane top-methods
/// table. No-op when tracing is off or nothing ran.
fn flush_traces(
    dir: Option<&std::path::Path>,
    name: &str,
    traces: &[(String, beehive_telemetry::Trace)],
    profiles: &[(String, beehive_profiler::Profile)],
) {
    let Some(dir) = dir else { return };
    if traces.is_empty() {
        return;
    }
    let trace_path = dir.join(format!("{name}.trace.json"));
    std::fs::write(
        &trace_path,
        beehive_telemetry::chrome::chrome_trace_string(traces),
    )
    .unwrap_or_else(|e| die(&format!("writing {}: {e}", trace_path.display())));
    let summary_path = dir.join(format!("{name}.summary.json"));
    let summary = beehive_telemetry::summary::critical_path_with(traces, &|label| {
        profiles
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, p)| p.hottest_json(5))
    });
    std::fs::write(&summary_path, summary.render())
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", summary_path.display())));
    eprintln!(
        "trace: wrote {} ({} scenarios) and {}",
        trace_path.display(),
        traces.len(),
        summary_path.display()
    );
}

/// Write the latency-attribution + SLO document for the drained traces as
/// `DIR/<name>.insight.json` (the `beehive_insight` JSON shape). No-op
/// when `--insight` is off or nothing ran.
fn flush_insight(
    dir: Option<&std::path::Path>,
    name: &str,
    traces: &[(String, beehive_telemetry::Trace)],
) {
    let Some(dir) = dir else { return };
    if traces.is_empty() {
        return;
    }
    let doc = beehive_insight::InsightDoc::from_traces(
        traces,
        &beehive_insight::SloPolicy::default(),
        beehive_metrics::EXEMPLAR_K,
    );
    let path = dir.join(format!("{name}.insight.json"));
    std::fs::write(&path, doc.to_json().render())
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", path.display())));
    eprintln!(
        "insight: wrote {} ({} scenarios)",
        path.display(),
        doc.attributions.len()
    );
}

/// Write the call-tree profiles drained from the engine as `DIR/<name>.folded`
/// (Brendan Gregg collapsed stacks — the scenario label, sanitized, is the
/// first frame of every line, so one file holds every scenario of the item
/// and feeds flamegraph.pl / inferno unchanged) plus `DIR/<name>.profile.json`
/// (the full per-lane call trees and per-instance totals). Returns the
/// drained profiles so the trace summary can embed hottest-method tables.
/// No-op when profiling is off or nothing ran.
fn flush_profiles(
    dir: Option<&std::path::Path>,
    name: &str,
) -> Vec<(String, beehive_profiler::Profile)> {
    let Some(dir) = dir else { return Vec::new() };
    let profiles = beehive_workload::engine::drain_profiles();
    if profiles.is_empty() {
        return profiles;
    }
    let mut folded = String::new();
    for (label, p) in &profiles {
        // Folded frames may not contain the `;` separator or the trailing
        // count's space; scenario labels may.
        let prefix: String = label
            .chars()
            .map(|c| if c == ' ' || c == ';' { '_' } else { c })
            .collect();
        for line in p.folded().lines() {
            folded.push_str(&prefix);
            folded.push(';');
            folded.push_str(line);
            folded.push('\n');
        }
    }
    let folded_path = dir.join(format!("{name}.folded"));
    std::fs::write(&folded_path, folded)
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", folded_path.display())));
    let json_path = dir.join(format!("{name}.profile.json"));
    let doc = Json::obj([(
        "scenarios".into(),
        Json::Arr(
            profiles
                .iter()
                .map(|(label, p)| {
                    Json::obj([
                        ("label".into(), Json::from(label.clone())),
                        ("profile".into(), p.to_json()),
                    ])
                })
                .collect(),
        ),
    )]);
    std::fs::write(&json_path, doc.render())
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", json_path.display())));
    eprintln!(
        "profile: wrote {} ({} scenarios) and {}",
        folded_path.display(),
        profiles.len(),
        json_path.display()
    );
    profiles
}

/// Run one item's simulations, discarding its report — the instrumentation
/// defaults (profiling for `repro top`, tracing for `repro explain`) decide
/// what the engine records. The list of simulations mirrors the main
/// dispatch (`table1`/`table2` run none and are rejected here).
fn run_item(item: &str, profile: Profile, chaos_seed: u64) {
    let apps = AppKind::all();
    match item {
        "fig2" => {
            fig2(profile);
        }
        "fig7" | "table3" => {
            for kind in apps {
                fig7(kind, profile);
            }
        }
        "fig8" => {
            for kind in apps {
                fig8(kind, profile);
            }
        }
        "fig9" => {
            let mut kinds = vec![AppKind::Pybbs];
            if !profile.quick {
                kinds.extend([AppKind::Blog, AppKind::Thumbnail]);
            }
            for kind in kinds {
                fig9(kind, profile);
            }
        }
        "table4" => {
            table4(&apps, profile);
        }
        "fig10" => {
            fig10(profile);
        }
        "table5" => {
            table5(&apps, profile);
        }
        "gcstats" => {
            gc_stats(&apps, profile);
        }
        "shadow" => {
            for kind in apps {
                shadow_breakdown(kind, profile);
            }
        }
        "ablations" => {
            ablation(AppKind::Pybbs, profile);
        }
        "combination" => {
            combination(AppKind::Pybbs, profile);
        }
        "recovery" => {
            recovery(AppKind::Pybbs, profile, chaos_seed);
        }
        other => die(&format!(
            "item {other:?} runs no simulations (run `repro list`)"
        )),
    }
}

/// `repro top ITEM [--quick] [--seed N] [--top N]`: run one item with the
/// call-tree profiler on and print, per scenario and per endpoint lane, the
/// top-N frames by self time.
fn run_top(args: &[String]) -> ! {
    if beehive_profiler::COMPILED_OFF {
        die("`repro top` is unavailable: this binary was built with beehive-profiler/compile-off");
    }
    let mut profile = Profile::full();
    let mut n = 5usize;
    let mut chaos_seed: Option<u64> = None;
    let mut items: Vec<String> = Vec::new();
    let mut it = args.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => profile.quick = true,
            "--seed" => {
                profile.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--chaos-seed" => {
                chaos_seed = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--chaos-seed needs an integer")),
                );
            }
            "--top" => {
                n = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--top needs a positive integer"));
            }
            other if other.starts_with('-') => {
                die(&format!("unknown flag {other:?} for `repro top`"))
            }
            other => items.push(other.to_string()),
        }
    }
    let [item] = items.as_slice() else {
        die("usage: repro top ITEM [--quick] [--seed N] [--chaos-seed N] [--top N]");
    };
    beehive_workload::engine::set_profile_default(true);
    run_item(item, profile, chaos_seed.unwrap_or(profile.seed));
    let profiles = beehive_workload::engine::drain_profiles();
    if profiles.is_empty() {
        die(&format!("item {item:?} produced no profile"));
    }
    for (label, p) in &profiles {
        banner(&format!("{item} — {label}"));
        for (lane, rows) in p.hottest(n) {
            println!("\n  lane {lane}");
            println!(
                "    {:<44} {:>12} {:>12} {:>10}",
                "frame", "self_ms", "total_ms", "calls"
            );
            for r in rows {
                println!(
                    "    {:<44} {:>12.3} {:>12.3} {:>10}",
                    r.frame,
                    r.self_ns as f64 / 1e6,
                    r.total_ns as f64 / 1e6,
                    r.calls
                );
            }
        }
    }
    std::process::exit(0)
}

/// Basis points rendered as a multiplier: `12_345` → `"1.23x"`.
fn bp_x(bp: u64) -> String {
    format!("{}.{:02}x", bp / 10_000, (bp % 10_000) / 100)
}

/// `repro explain ITEM [--quick] [--seed N] [--chaos-seed N] [--slowest N]`:
/// run one item with tracing on and print, per scenario, the latency
/// attribution table, the SLO evaluation, and the slowest requests'
/// component breakdowns. Integer-only formatting keeps the output
/// byte-identical across worker counts.
fn run_explain(args: &[String]) -> ! {
    let mut profile = Profile::full();
    let mut chaos_seed: Option<u64> = None;
    let mut k = beehive_metrics::EXEMPLAR_K;
    let mut items: Vec<String> = Vec::new();
    let mut it = args.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => profile.quick = true,
            "--seed" => {
                profile.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--chaos-seed" => {
                chaos_seed = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--chaos-seed needs an integer")),
                );
            }
            "--slowest" => {
                k = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--slowest needs a positive integer"));
            }
            other if other.starts_with('-') => {
                die(&format!("unknown flag {other:?} for `repro explain`"))
            }
            other => items.push(other.to_string()),
        }
    }
    let [item] = items.as_slice() else {
        die("usage: repro explain ITEM [--quick] [--seed N] [--chaos-seed N] [--slowest N]");
    };
    beehive_workload::engine::set_trace_default(true);
    run_item(item, profile, chaos_seed.unwrap_or(profile.seed));
    let traces = beehive_workload::engine::drain_traces();
    if traces.is_empty() {
        die(&format!("item {item:?} produced no trace"));
    }
    let doc = beehive_insight::InsightDoc::from_traces(
        &traces,
        &beehive_insight::SloPolicy::default(),
        k,
    );
    for (rep, slo) in doc.attributions.iter().zip(&doc.slo) {
        banner(&format!("{item} — {}", rep.label));
        println!(
            "requests {} (shadows {})   attributed {}us   gc {}us   residual {}ns",
            rep.requests,
            rep.shadows,
            rep.total_ns / 1_000,
            rep.gc_pause_ns / 1_000,
            rep.residual_ns()
        );
        if rep.requests > 0 {
            println!(
                "\n  {:<18} {:>12} {:>12} {:>8}",
                "component", "total_us", "per-req_us", "share"
            );
            for c in beehive_insight::Component::ALL {
                let ns = rep.components[c as usize];
                if ns == 0 {
                    continue;
                }
                // Share in per-mille of the attributed total.
                let pm = ns * 1_000 / rep.total_ns.max(1);
                println!(
                    "  {:<18} {:>12} {:>12} {:>7}.{}%",
                    c.name(),
                    ns / 1_000,
                    rep.mean_ns(c) / 1_000,
                    pm / 10,
                    pm % 10
                );
            }
        }
        println!(
            "\n  SLO p({}.{:02}%) <= {}ms: {} — good {}/{}, budget consumed {}",
            slo.objective_bp / 100,
            slo.objective_bp % 100,
            slo.threshold_ns / 1_000_000,
            if slo.met() { "met" } else { "MISSED" },
            slo.good,
            slo.total,
            bp_x(slo.budget_consumed_bp)
        );
        for (w_ns, burn) in &slo.burn {
            println!("  burn[{:>5}s] max {}", w_ns / 1_000_000_000, bp_x(*burn));
        }
        if !rep.slowest.is_empty() {
            println!("\n  slowest requests:");
            for r in &rep.slowest {
                let mut parts: Vec<(&'static str, u64)> = r.nonzero();
                parts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                let breakdown: Vec<String> = parts
                    .iter()
                    .map(|(n, ns)| format!("{n} {}us", ns / 1_000))
                    .collect();
                println!(
                    "  #{} {} {}us = {}",
                    r.rid,
                    r.kind,
                    r.total_ns / 1_000,
                    breakdown.join(" + ")
                );
            }
        }
    }
    std::process::exit(0)
}

/// Drain the engine's online conformance checks and, with `--obs`, write
/// them as `DIR/<name>.sentinel.json`. Violating scenarios are rendered to
/// stderr; returns the violation count so `main` can gate the exit status.
/// No-op when the checker is off or nothing ran.
fn flush_sentinel(dir: Option<&std::path::Path>, name: &str) -> usize {
    let checks = beehive_workload::engine::drain_sentinel();
    if checks.is_empty() {
        return 0;
    }
    let report = beehive_sentinel::SentinelReport::from_checks(false, checks);
    if let Some(dir) = dir {
        let path = dir.join(format!("{name}.sentinel.json"));
        std::fs::write(&path, report.to_json().render())
            .unwrap_or_else(|e| die(&format!("writing {}: {e}", path.display())));
        eprintln!(
            "sentinel: wrote {} ({} scenarios)",
            path.display(),
            report.scenarios.len()
        );
    }
    let violations = report.violations();
    if violations > 0 {
        eprint!("{}", report.render_text());
        eprintln!("sentinel: {name}: {violations} violation(s)");
    }
    violations
}

/// `repro check ITEM... [--quick] [--strict] [--json] [--seed N]
/// [--chaos-seed N]`: run the named items with tracing on, replay every
/// recorded trace through a fresh conformance engine, print the verdicts
/// (text, or the `SentinelReport` JSON document with `--json`) and exit 1
/// when any invariant was violated. Scenario labels are prefixed with the
/// item name, so one report covers several items without collisions.
fn run_check(args: &[String]) -> ! {
    if beehive_telemetry::COMPILED_OFF {
        die("`repro check` is unavailable: this binary was built with beehive-telemetry/compile-off");
    }
    let mut profile = Profile::full();
    let mut strict = false;
    let mut json = false;
    let mut chaos_seed: Option<u64> = None;
    let mut items: Vec<String> = Vec::new();
    let mut it = args.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => profile.quick = true,
            "--strict" => strict = true,
            "--json" => json = true,
            "--seed" => {
                profile.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--chaos-seed" => {
                chaos_seed = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--chaos-seed needs an integer")),
                );
            }
            other if other.starts_with('-') => {
                die(&format!("unknown flag {other:?} for `repro check`"))
            }
            other => items.push(other.to_string()),
        }
    }
    if items.is_empty() {
        die("usage: repro check ITEM... [--quick] [--strict] [--json] [--seed N] [--chaos-seed N]");
    }
    beehive_workload::engine::set_trace_default(true);
    let cfg = beehive_sentinel::SentinelConfig {
        strict,
        // The experiment drivers all run the default retry policy; pinning
        // it lets the checker bound when `recovery:degrade` may fire.
        max_retries: Some(beehive_chaos::RetryPolicy::default().max_retries),
        ..Default::default()
    };
    let mut scenarios = Vec::new();
    for item in &items {
        run_item(item, profile, chaos_seed.unwrap_or(profile.seed));
        let traces = beehive_workload::engine::drain_traces();
        if traces.is_empty() {
            die(&format!("item {item:?} produced no trace"));
        }
        let labelled: Vec<(String, beehive_telemetry::Trace)> = traces
            .into_iter()
            .map(|(label, trace)| (format!("{item}/{label}"), trace))
            .collect();
        scenarios.extend(beehive_sentinel::SentinelReport::from_traces(&labelled, &cfg).scenarios);
    }
    let report = beehive_sentinel::SentinelReport::from_checks(strict, scenarios);
    if json {
        println!("{}", report.to_json().render());
    } else {
        print!("{}", report.render_text());
    }
    if !report.clean() {
        eprintln!("check: {} invariant violation(s)", report.violations());
        std::process::exit(1);
    }
    eprintln!("check: ok — {} scenario(s) conform", report.scenarios.len());
    std::process::exit(0)
}

/// Drain the engine's observatory timelines and, with `--obs`, write them
/// as `DIR/<name>.timeline.json` plus `DIR/<name>.timeline.svg`. No-op when
/// the observer is off or nothing ran.
fn flush_timeline(dir: Option<&std::path::Path>, name: &str) {
    let Some(dir) = dir else { return };
    let series = beehive_workload::engine::drain_timelines();
    if series.is_empty() {
        return;
    }
    let doc = beehive_observatory::TimelineDoc::from_series(series);
    let json_path = dir.join(format!("{name}.timeline.json"));
    std::fs::write(&json_path, doc.to_json().render())
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", json_path.display())));
    let svg_path = dir.join(format!("{name}.timeline.svg"));
    std::fs::write(&svg_path, doc.render_svg())
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", svg_path.display())));
    eprintln!(
        "timeline: wrote {} ({} scenarios) and {}",
        json_path.display(),
        doc.scenarios.len(),
        svg_path.display()
    );
}

/// `repro timeline ITEM [--quick] [--seed N] [--chaos-seed N] [--window NS]
/// [--json|--svg]`: run one item with the streaming observatory reducer on
/// and print every scenario's virtual-time series and derived elasticity
/// signals — ASCII sparklines by default, the `TimelineDoc` JSON artifact
/// with `--json`, a self-contained SVG panel chart with `--svg`.
fn run_timeline(args: &[String]) -> ! {
    if beehive_telemetry::COMPILED_OFF {
        die("`repro timeline` is unavailable: this binary was built with beehive-telemetry/compile-off");
    }
    let mut profile = Profile::full();
    let mut chaos_seed: Option<u64> = None;
    let mut window = beehive_observatory::DEFAULT_WINDOW;
    let mut json = false;
    let mut svg = false;
    let mut items: Vec<String> = Vec::new();
    let mut it = args.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => profile.quick = true,
            "--json" => json = true,
            "--svg" => svg = true,
            "--seed" => {
                profile.seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--chaos-seed" => {
                chaos_seed = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--chaos-seed needs an integer")),
                );
            }
            "--window" => {
                let ns: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--window needs a positive nanosecond count"));
                window = beehive_sim::Duration::from_nanos(ns);
            }
            other if other.starts_with('-') => {
                die(&format!("unknown flag {other:?} for `repro timeline`"))
            }
            other => items.push(other.to_string()),
        }
    }
    if json && svg {
        die("--json and --svg are mutually exclusive");
    }
    let [item] = items.as_slice() else {
        die("usage: repro timeline ITEM [--quick] [--seed N] [--chaos-seed N] [--window NS] [--json|--svg]");
    };
    beehive_workload::engine::set_observe_default(true);
    beehive_workload::engine::set_observe_window(window);
    run_item(item, profile, chaos_seed.unwrap_or(profile.seed));
    let series = beehive_workload::engine::drain_timelines();
    if series.is_empty() {
        die(&format!("item {item:?} produced no timeline"));
    }
    let doc = beehive_observatory::TimelineDoc::from_series(series);
    if json {
        println!("{}", doc.to_json().render());
    } else if svg {
        println!("{}", doc.render_svg());
    } else {
        print!("{}", doc.render_text());
    }
    std::process::exit(0)
}

/// Load and merge every `*.timeline.json` document under `dir`, scenario
/// labels prefixed with the item stem so several items diff without
/// collisions. Files are visited in name order for a deterministic merge.
fn load_timelines(dir: &std::path::Path) -> beehive_observatory::TimelineDoc {
    let entries =
        std::fs::read_dir(dir).unwrap_or_else(|e| die(&format!("reading {}: {e}", dir.display())));
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".timeline.json"))
        .collect();
    names.sort();
    let mut scenarios = Vec::new();
    for name in &names {
        let stem = name.trim_end_matches(".timeline.json");
        let path = dir.join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("reading {}: {e}", path.display())));
        let doc = beehive_observatory::TimelineDoc::parse(&text)
            .unwrap_or_else(|| die(&format!("{}: not a timeline document", path.display())));
        for mut s in doc.scenarios {
            s.label = format!("{stem}/{}", s.label);
            scenarios.push(s);
        }
    }
    if scenarios.is_empty() {
        die(&format!(
            "{}: no *.timeline.json documents (write them with --obs DIR)",
            dir.display()
        ));
    }
    beehive_observatory::TimelineDoc::from_series(scenarios)
}

/// `repro lag BASELINE CURRENT`: diff the per-burst scale-up lag between
/// two `--obs` artifact directories and exit 1 when any burst's lag
/// regressed beyond the tolerance band (a quarter of the baseline lag plus
/// one bin width).
fn run_lag(args: &[String]) -> ! {
    let mut dirs: Vec<std::path::PathBuf> = Vec::new();
    for a in args {
        if a.starts_with('-') {
            die(&format!("unknown flag {a:?} for `repro lag`"));
        }
        dirs.push(std::path::PathBuf::from(a));
    }
    let [baseline, current] = dirs.as_slice() else {
        die("usage: repro lag BASELINE CURRENT");
    };
    let base = load_timelines(baseline);
    let cur = load_timelines(current);
    let (rows, regressed) = beehive_observatory::lag_diff(&base, &cur);
    print!("{}", beehive_observatory::render_lag_rows(&rows));
    if regressed {
        eprintln!("lag: scale-up lag regressed");
        std::process::exit(1);
    }
    eprintln!("lag: ok — {} burst(s) compared", rows.len());
    std::process::exit(0)
}

/// Pull the directory value of `flag` off the argument iterator; a missing
/// value or one that looks like another flag is a usage error.
fn dir_value(it: &mut impl Iterator<Item = String>, flag: &str) -> std::path::PathBuf {
    match it.next() {
        Some(v) if !v.starts_with('-') => std::path::PathBuf::from(v),
        _ => die(&format!("{flag} needs a directory")),
    }
}

/// Write the metrics snapshots drained from the engine as
/// `DIR/<name>.metrics.json` (the `beehive_metrics` JSON shape) plus
/// `DIR/<name>.prom` (Prometheus text exposition). No-op when metrics are
/// off or nothing ran.
fn flush_metrics(dir: Option<&std::path::Path>, name: &str) {
    let Some(dir) = dir else { return };
    let scenarios = beehive_workload::engine::drain_metrics();
    if scenarios.is_empty() {
        return;
    }
    let snap = beehive_metrics::MetricsSnapshot {
        window: beehive_metrics::DEFAULT_WINDOW,
        scenarios,
    };
    let json_path = dir.join(format!("{name}.metrics.json"));
    std::fs::write(&json_path, snap.render())
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", json_path.display())));
    let prom_path = dir.join(format!("{name}.prom"));
    std::fs::write(&prom_path, beehive_metrics::prometheus(&snap, name))
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", prom_path.display())));
    eprintln!(
        "metrics: wrote {} ({} scenarios) and {}",
        json_path.display(),
        snap.scenarios.len(),
        prom_path.display()
    );
}

/// Load every `*.metrics.json` snapshot in `dir`, sorted by file name.
fn load_snapshots(dir: &std::path::Path) -> Vec<(String, beehive_metrics::MetricsSnapshot)> {
    let entries =
        std::fs::read_dir(dir).unwrap_or_else(|e| die(&format!("reading {}: {e}", dir.display())));
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".metrics.json"))
        .collect();
    names.sort();
    names
        .into_iter()
        .map(|n| {
            let path = dir.join(&n);
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| die(&format!("reading {}: {e}", path.display())));
            let snap = beehive_metrics::MetricsSnapshot::parse(&text)
                .unwrap_or_else(|e| die(&format!("parsing {}: {e}", path.display())));
            let item = n.trim_end_matches(".metrics.json").to_string();
            (item, snap)
        })
        .collect()
}

/// Read one item's `*.insight.json` from an artifact directory, when
/// present. Unparseable documents are usage-grade errors (exit 2).
fn load_insight(dir: &std::path::Path, item: &str) -> Option<beehive_insight::InsightDoc> {
    let path = dir.join(format!("{item}.insight.json"));
    let text = std::fs::read_to_string(&path).ok()?;
    Some(
        beehive_insight::InsightDoc::parse(&text)
            .unwrap_or_else(|e| die(&format!("parsing {}: {e}", path.display()))),
    )
}

/// `repro compare BASELINE CURRENT [--bench-out FILE]` and its diagnosing
/// sibling `repro diff`: diff every watched metric of the snapshots in two
/// `--metrics` output directories. With `diagnose` (diff), regressed
/// latency metrics are additionally root-caused from the directories'
/// `--insight` documents and `--profile` folded stacks, when present.
/// Exits 0 when nothing regressed, 1 when something did, 2 on usage
/// errors.
fn run_compare(args: &[String], diagnose: bool) -> ! {
    let cmd = if diagnose { "diff" } else { "compare" };
    let mut dirs: Vec<std::path::PathBuf> = Vec::new();
    let mut bench_out: Option<std::path::PathBuf> = None;
    let mut it = args.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bench-out" => match it.next() {
                Some(v) if !v.starts_with('-') => bench_out = Some(std::path::PathBuf::from(v)),
                _ => die("--bench-out needs a file"),
            },
            other if other.starts_with('-') => {
                die(&format!("unknown flag {other:?} for `repro {cmd}`"))
            }
            other => dirs.push(std::path::PathBuf::from(other)),
        }
    }
    let [baseline_dir, current_dir] = dirs.as_slice() else {
        die(&format!(
            "usage: repro {cmd} BASELINE CURRENT [--bench-out FILE]"
        ));
    };

    let baseline = load_snapshots(baseline_dir);
    if baseline.is_empty() {
        die(&format!(
            "no *.metrics.json snapshots in {}",
            baseline_dir.display()
        ));
    }
    let mut regressed = false;
    let mut file_reports: Vec<Json> = Vec::new();
    for (item, base) in &baseline {
        let current_path = current_dir.join(format!("{item}.metrics.json"));
        let (deltas, cur) = match std::fs::read_to_string(&current_path) {
            Ok(text) => {
                let cur = beehive_metrics::MetricsSnapshot::parse(&text)
                    .unwrap_or_else(|e| die(&format!("parsing {}: {e}", current_path.display())));
                (beehive_metrics::compare(base, &cur), cur)
            }
            Err(_) => {
                println!("{item}: MISSING {}", current_path.display());
                regressed = true;
                file_reports.push(Json::obj([
                    ("item".into(), Json::from(item.clone())),
                    ("missing".into(), Json::from(true)),
                ]));
                continue;
            }
        };
        // Diff-mode diagnosis inputs, all optional per directory.
        let base_insight = diagnose.then(|| load_insight(baseline_dir, item)).flatten();
        let cur_insight = diagnose.then(|| load_insight(current_dir, item)).flatten();
        let base_folded = diagnose
            .then(|| std::fs::read_to_string(baseline_dir.join(format!("{item}.folded"))).ok())
            .flatten();
        let cur_folded = diagnose
            .then(|| std::fs::read_to_string(current_dir.join(format!("{item}.folded"))).ok())
            .flatten();
        let mut delta_json: Vec<Json> = Vec::new();
        for d in &deltas {
            let verdict = if d.regressed {
                "REGRESSED"
            } else if d.improved {
                "improved"
            } else {
                "ok"
            };
            let rel = d.relative();
            let change = if rel.is_finite() {
                format!("{:+.1}%", rel * 100.0)
            } else {
                "n/a".to_string()
            };
            println!(
                "{item}: {verdict:<9} {:<40} {:<28} {:>12} -> {:>12}  ({change}, tol +{:.0}%)",
                d.metric,
                d.scenario,
                d.baseline.map_or("-".to_string(), |v| v.to_string()),
                d.current.map_or("-".to_string(), |v| v.to_string()),
                d.tolerance * 100.0
            );
            regressed |= d.regressed;
            let mut fields = vec![
                ("scenario".into(), Json::from(d.scenario.clone())),
                ("metric".into(), Json::from(d.metric.clone())),
                ("baseline".into(), Json::from(d.baseline)),
                ("current".into(), Json::from(d.current)),
                ("tolerance".into(), Json::from(d.tolerance)),
                ("regressed".into(), Json::from(d.regressed)),
                ("improved".into(), Json::from(d.improved)),
            ];
            if d.regressed && diagnose && beehive_insight::is_latency_metric(&d.metric) {
                let diag = beehive_insight::diagnose(
                    d,
                    base_insight
                        .as_ref()
                        .and_then(|i| i.attribution(&d.scenario)),
                    cur_insight
                        .as_ref()
                        .and_then(|i| i.attribution(&d.scenario)),
                    base.scenarios.iter().find(|s| s.label == d.scenario),
                    cur.scenarios.iter().find(|s| s.label == d.scenario),
                    match (base_folded.as_deref(), cur_folded.as_deref()) {
                        (Some(b), Some(c)) => Some((b, c)),
                        _ => None,
                    },
                );
                match diag {
                    Some(diag) => {
                        let line = diag.render();
                        println!("{item}: CAUSE     {:<40} {:<28} {line}", d.metric, d.scenario);
                        fields.push(("cause".into(), Json::from(line)));
                    }
                    None => println!(
                        "{item}: CAUSE     {:<40} {:<28} no insight artifacts (re-run with --insight)",
                        d.metric, d.scenario
                    ),
                }
            }
            delta_json.push(Json::Obj(fields));
        }
        file_reports.push(Json::obj([
            ("item".into(), Json::from(item.clone())),
            ("deltas".into(), Json::Arr(delta_json)),
        ]));
    }
    if let Some(path) = bench_out {
        let doc = Json::obj([
            (
                "baseline".into(),
                Json::from(baseline_dir.display().to_string()),
            ),
            (
                "current".into(),
                Json::from(current_dir.display().to_string()),
            ),
            ("regressed".into(), Json::from(regressed)),
            ("files".into(), Json::Arr(file_reports)),
        ]);
        std::fs::write(&path, doc.render())
            .unwrap_or_else(|e| die(&format!("writing {}: {e}", path.display())));
        eprintln!("{cmd}: wrote {}", path.display());
    }
    if regressed {
        eprintln!("{cmd}: REGRESSED (see deltas above)");
        std::process::exit(1);
    }
    eprintln!("{cmd}: ok — no watched metric regressed");
    std::process::exit(0);
}

fn banner(title: &str) {
    println!("\n{}", "=".repeat(74));
    println!("{title}");
    println!("{}", "=".repeat(74));
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: run `repro --help` for flags, items and subcommands");
    std::process::exit(2)
}
