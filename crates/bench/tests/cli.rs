//! CLI-convention tests for the `repro` binary: usage errors exit 2 with a
//! one-line hint on stderr (stdout stays clean), `repro list` advertises
//! every subcommand, and the conformance subcommand/flags behave.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn stderr(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn usage_errors_exit_2() {
    // Unknown flags, for every subcommand that parses its own.
    for args in [
        &["explain", "--nope", "shadow"][..],
        &["compare", "--nope", "a", "b"][..],
        &["diff", "--nope", "a", "b"][..],
        &["top", "--nope", "shadow"][..],
        &["check", "--nope", "shadow"][..],
        &["timeline", "--nope", "shadow"][..],
        &["lag", "--nope", "a", "b"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(stderr(&out).contains("--nope"), "{args:?}");
    }

    // Missing or surplus ITEM.
    let out = repro(&["explain"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"));
    let out = repro(&["explain", "shadow", "gcstats"]);
    assert_eq!(out.status.code(), Some(2));
    let out = repro(&["check"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"));

    // --slowest needs a positive integer.
    for bad in ["0", "-3", "many"] {
        let out = repro(&["explain", "--slowest", bad, "shadow"]);
        assert_eq!(out.status.code(), Some(2), "--slowest {bad}");
    }

    // Unreadable snapshot directories.
    for cmd in ["compare", "diff"] {
        let out = repro(&[cmd, "/nonexistent-baseline", "/nonexistent-current"]);
        assert_eq!(out.status.code(), Some(2), "{cmd} with unreadable dirs");
    }

    // An item that runs no simulations cannot be explained or checked.
    let out = repro(&["explain", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    let out = repro(&["check", "table1"]);
    assert_eq!(out.status.code(), Some(2));

    // timeline: missing/surplus ITEM, malformed --window, exclusive modes.
    let out = repro(&["timeline"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"));
    let out = repro(&["timeline", "shadow", "gcstats"]);
    assert_eq!(out.status.code(), Some(2));
    for bad in ["0", "-5", "soon", "1.5"] {
        let out = repro(&["timeline", "--window", bad, "shadow"]);
        assert_eq!(out.status.code(), Some(2), "--window {bad}");
        assert!(stderr(&out).contains("--window"), "--window {bad}");
    }
    let out = repro(&["timeline", "--json", "--svg", "shadow"]);
    assert_eq!(out.status.code(), Some(2));
    let out = repro(&["timeline", "table1"]);
    assert_eq!(out.status.code(), Some(2));

    // lag: wrong arity and unreadable artifact directories.
    let out = repro(&["lag"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"));
    let out = repro(&["lag", "onlyone"]);
    assert_eq!(out.status.code(), Some(2));
    let out = repro(&["lag", "/nonexistent-baseline", "/nonexistent-current"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn usage_errors_go_to_stderr_with_a_hint_and_a_clean_stdout() {
    // Every argument-error path: stderr carries a one-line `error:` plus
    // the usage hint, stdout stays byte-empty, exit status is 2.
    for args in [
        &["--nope"][..],
        &["nonsense-item"][..],
        &["--seed", "many"][..],
        &["--chaos-seed"][..],
        &["--trace"][..],
        &["--obs"][..],
        &["--obs", "--quick"][..],
        &["check"][..],
        &["check", "--seed"][..],
        &["top"][..],
        &["compare", "onlyone"][..],
        &["timeline"][..],
        &["timeline", "--window", "soon", "shadow"][..],
        &["lag", "onlyone"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            stdout(&out).is_empty(),
            "{args:?} leaked onto stdout: {:?}",
            stdout(&out)
        );
        let err = stderr(&out);
        assert!(err.starts_with("error: "), "{args:?} stderr: {err:?}");
        assert!(
            err.contains("repro --help"),
            "{args:?} lost the usage hint: {err:?}"
        );
    }
}

#[test]
fn list_advertises_items_and_subcommands() {
    let out = repro(&["list"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    for row in [
        "fig7",
        "shadow",
        "recovery",
        "top",
        "explain",
        "check",
        "timeline",
        "lag",
        "compare",
        "diff",
        "--obs",
        "--sentinel",
    ] {
        assert!(
            text.lines().any(|l| l.trim_start().starts_with(row)),
            "`repro list` lost the {row} row"
        );
    }
}

#[test]
fn check_runs_clean_and_emits_parseable_json() {
    let out = repro(&["check", "fig2", "--quick", "--json"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "check should pass: {}",
        stderr(&out)
    );
    let text = stdout(&out);
    let report =
        beehive_sentinel::SentinelReport::parse(&text).expect("check --json output parses");
    assert!(report.clean());
    assert!(!report.scenarios.is_empty());
    assert!(report
        .scenarios
        .iter()
        .all(|s| s.label.starts_with("fig2/")));
    assert!(stderr(&out).contains("check: ok"));
}

#[test]
fn obs_writes_every_artifact_family_and_sentinel_gates() {
    let dir = std::env::temp_dir().join(format!("beehive-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = repro(&["--quick", "--obs", dir.to_str().unwrap(), "fig2"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    for artifact in [
        "fig2.trace.json",
        "fig2.summary.json",
        "fig2.metrics.json",
        "fig2.prom",
        "fig2.folded",
        "fig2.profile.json",
        "fig2.insight.json",
        "fig2.sentinel.json",
        "fig2.timeline.json",
        "fig2.timeline.svg",
    ] {
        assert!(
            dir.join(artifact).is_file(),
            "--obs did not write {artifact}"
        );
    }
    let text = std::fs::read_to_string(dir.join("fig2.sentinel.json")).unwrap();
    let report = beehive_sentinel::SentinelReport::parse(&text).expect("sentinel artifact parses");
    assert!(report.clean());
    let text = std::fs::read_to_string(dir.join("fig2.timeline.json")).unwrap();
    let doc = beehive_observatory::TimelineDoc::parse(&text).expect("timeline artifact parses");
    assert!(!doc.scenarios.is_empty());
    let svg = std::fs::read_to_string(dir.join("fig2.timeline.svg")).unwrap();
    assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
    let _ = std::fs::remove_dir_all(&dir);

    // The online checker alone: clean run, exit 0, no artifacts needed.
    let out = repro(&["--quick", "--sentinel", "fig2"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
}
