//! CLI-convention tests for the `repro` binary: usage errors exit 2 and
//! say why, and `repro list` advertises every subcommand.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

fn stderr(out: &std::process::Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn usage_errors_exit_2() {
    // Unknown flags, for every subcommand that parses its own.
    for args in [
        &["explain", "--nope", "shadow"][..],
        &["compare", "--nope", "a", "b"][..],
        &["diff", "--nope", "a", "b"][..],
        &["top", "--nope", "shadow"][..],
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(stderr(&out).contains("--nope"), "{args:?}");
    }

    // Missing or surplus ITEM.
    let out = repro(&["explain"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage"));
    let out = repro(&["explain", "shadow", "gcstats"]);
    assert_eq!(out.status.code(), Some(2));

    // --slowest needs a positive integer.
    for bad in ["0", "-3", "many"] {
        let out = repro(&["explain", "--slowest", bad, "shadow"]);
        assert_eq!(out.status.code(), Some(2), "--slowest {bad}");
    }

    // Unreadable snapshot directories.
    for cmd in ["compare", "diff"] {
        let out = repro(&[cmd, "/nonexistent-baseline", "/nonexistent-current"]);
        assert_eq!(out.status.code(), Some(2), "{cmd} with unreadable dirs");
    }

    // An item that runs no simulations cannot be explained.
    let out = repro(&["explain", "table1"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn list_advertises_items_and_subcommands() {
    let out = repro(&["list"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    for row in [
        "fig7", "shadow", "recovery", "top", "explain", "compare", "diff",
    ] {
        assert!(
            text.lines().any(|l| l.trim_start().starts_with(row)),
            "`repro list` lost the {row} row"
        );
    }
}
