//! # beehive-chaos — deterministic, virtual-time fault injection
//!
//! The paper's failure-recovery story (§4.5) only matters under failures, so
//! this crate supplies them: a seeded **fault plan** that a workload run
//! expands into typed fault events on the virtual clock, plus the bounded
//! retry/backoff policy the driver consults when an offloaded request loses
//! its instance.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** A plan is expanded by [`FaultPlan::schedule`] with its
//!    own PCG stream keyed on `(plan seed, run seed)` — it never draws from
//!    the simulation's generator, so a run with an *empty* plan is
//!    byte-identical to one built before this crate existed, and a run with a
//!    non-empty plan is byte-identical at any `BEEHIVE_WORKERS` (each
//!    simulation is single-threaded and self-seeded).
//! 2. **Typed faults.** [`Fault`] enumerates the vocabulary: instance
//!    crashes, boot failures, dropped/delayed fallback RPCs, network-degrade
//!    windows and database connection drops. Injectors produce them either
//!    from an explicit timetable ([`Injector::Schedule`]) or from a Poisson
//!    rate over a window ([`Injector::Rate`]).
//! 3. **No DES in the loop.** The retry policy ([`RetryPolicy::decide`]) is a
//!    pure function of the attempt number and the request's write journal
//!    state, unit-testable without building a simulation.
//!
//! The workload driver wires the plan through its event loop (`Ev::Fault`),
//! kills instances via `FaasPlatform::kill`, and resumes crashed requests
//! from their last `beehive_core::recovery::Snapshot` on a replacement
//! instance; see `beehive-workload` for the integration and the
//! `repro recovery` experiment for the MTTR/latency-vs-crash-rate sweep.

#![warn(missing_docs)]
#![deny(dead_code)]

use std::collections::VecDeque;

use beehive_sim::stats::LatencySampler;
use beehive_sim::{Duration, Rng, SimTime};

/// One typed fault, delivered at a point in virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Kill one running or warm-idle FaaS instance. The `selector` picks the
    /// victim among the currently eligible instances (`selector % eligible`),
    /// so a rate injector crashes a deterministic but varied sample.
    InstanceCrash {
        /// Deterministic victim selector (reduced modulo the eligible set).
        selector: u64,
    },
    /// The next instance boot fails: the container never comes up and the
    /// platform reclaims it.
    BootFailure,
    /// The next fallback RPC round-trip is lost; the caller re-sends after
    /// `timeout` of virtual time.
    RpcDrop {
        /// Detection timeout before the caller re-sends.
        timeout: Duration,
    },
    /// The next fallback RPC round-trip is delayed by `delay`.
    RpcDelay {
        /// Extra one-way latency added to the round-trip.
        delay: Duration,
    },
    /// All network legs are slowed by `factor` for `duration` of virtual
    /// time from the moment the fault fires.
    NetworkDegrade {
        /// Multiplier applied to network demands (`> 1.0` slows).
        factor: f64,
        /// Window length.
        duration: Duration,
    },
    /// The next database round loses its connection and pays `reconnect`
    /// before being re-sent.
    DbConnDrop {
        /// Reconnect penalty added to the round.
        reconnect: Duration,
    },
}

/// An armed RPC fault, consumed by the next fallback round-trip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpcFault {
    /// The round-trip is lost; re-sent after `timeout`.
    Drop {
        /// Detection timeout before the re-send.
        timeout: Duration,
    },
    /// The round-trip is delayed by `delay`.
    Delay {
        /// Extra latency.
        delay: Duration,
    },
}

/// A deterministic fault source.
#[derive(Clone, Debug)]
pub enum Injector {
    /// An explicit timetable: each fault fires at its offset from the start
    /// of the run.
    Schedule(Vec<(Duration, Fault)>),
    /// A Poisson process emitting copies of `fault` at `per_sec` over
    /// `[start, end)`. `InstanceCrash` selectors are re-drawn per event so
    /// successive crashes hit varied victims.
    Rate {
        /// The fault template to emit.
        fault: Fault,
        /// Mean emission rate (events per virtual second).
        per_sec: f64,
        /// Window start (offset from the start of the run).
        start: Duration,
        /// Window end (exclusive).
        end: Duration,
    },
}

/// What the driver should do with a failed offload attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryDecision {
    /// Provision a replacement instance and resume from the last snapshot
    /// after `backoff` of virtual time.
    Retry {
        /// Exponential backoff before the resume.
        backoff: Duration,
    },
    /// Retries are exhausted and the request has issued no database write
    /// keys: degrade gracefully by re-running it on the server.
    Degrade,
}

/// Bounded retry with exponential backoff for failed offload invocations.
///
/// Pure policy, mirroring the router: no event queue in the loop. A request
/// that has already issued write-journal keys is *never* degraded — re-running
/// it under a fresh request id would defeat the exactly-once journal — so it
/// keeps retrying at the capped backoff instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Backoff before the first retry; doubles per subsequent attempt.
    pub base_backoff: Duration,
    /// Attempts allowed before degrading to server execution.
    pub max_retries: u32,
}

/// Backoff doubling stops here: `base << 10` caps the wait at ~1024× base.
const BACKOFF_CAP_EXP: u32 = 10;

impl RetryPolicy {
    /// A policy retrying `max_retries` times starting at `base_backoff`.
    pub fn new(base_backoff: Duration, max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            base_backoff,
            max_retries,
        }
    }

    /// Decide attempt number `attempt` (1-based) for a request that has
    /// issued `committed_writes` database write keys so far.
    pub fn decide(&self, attempt: u32, committed_writes: bool) -> RetryDecision {
        if attempt > self.max_retries && !committed_writes {
            return RetryDecision::Degrade;
        }
        let exp = attempt.saturating_sub(1).min(BACKOFF_CAP_EXP);
        RetryDecision::Retry {
            backoff: self.base_backoff * (1u64 << exp),
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::new(Duration::from_millis(50), 3)
    }
}

/// Counters and samples the chaos machinery accumulates during a run.
#[derive(Clone, Debug, Default)]
pub struct ChaosStats {
    /// Instances killed by injected faults.
    pub crashes: u64,
    /// Boots that failed before the instance came up.
    pub boot_failures: u64,
    /// Retries: replacement provisions, RPC re-sends, DB reconnects.
    pub retries: u64,
    /// Requests degraded to server execution after exhausting retries.
    pub degraded_to_server: u64,
    /// Virtual time of work lost to crashes and re-executed after recovery.
    pub re_executed_ns: u64,
    /// Detection-to-resume latency of each completed recovery (MTTR).
    pub recovery: LatencySampler,
}

impl ChaosStats {
    /// Completed §4.5 recoveries (crash → snapshot restore → resume).
    pub fn recoveries(&self) -> u64 {
        self.recovery.len() as u64
    }
}

/// A seeded fault plan: injectors, retry policy, and the armed one-shot
/// faults a run consumes as it executes.
///
/// The default plan is empty and inert — `SimConfig` carries one by value and
/// existing scenarios are byte-identical with it in place.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Plan seed, mixed with the run seed when expanding injectors.
    pub seed: u64,
    /// The fault sources.
    pub injectors: Vec<Injector>,
    /// Retry/backoff policy for failed offload invocations.
    pub policy: RetryPolicy,
    /// Counters accumulated while the plan executes.
    pub stats: ChaosStats,
    /// Armed RPC faults, consumed FIFO by fallback round-trips.
    armed_rpc: VecDeque<RpcFault>,
    /// Armed DB reconnect penalties, consumed FIFO by database rounds.
    armed_db: VecDeque<Duration>,
    /// Armed boot failures, consumed by instance boot completions.
    armed_boot: u32,
    /// Active network-degrade windows: `(from, to, factor)`.
    net: Vec<(SimTime, SimTime, f64)>,
}

impl FaultPlan {
    /// An empty plan under `seed` (injectors added via [`FaultPlan::push`]).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Add an injector.
    pub fn push(&mut self, injector: Injector) {
        self.injectors.push(injector);
    }

    /// `true` when the plan can never produce a fault.
    pub fn is_empty(&self) -> bool {
        self.injectors.is_empty()
    }

    /// Expand the injectors into a time-sorted fault timetable for one run.
    ///
    /// The expansion draws from a dedicated PCG stream keyed on
    /// `(self.seed, run_seed)`; the simulation's own generator is untouched,
    /// which is what keeps empty-plan runs byte-identical to pre-chaos ones.
    pub fn schedule(&self, run_seed: u64, horizon: Duration) -> Vec<(Duration, Fault)> {
        let mut rng = Rng::new(mix(self.seed, run_seed));
        let mut out: Vec<(Duration, Fault)> = Vec::new();
        for injector in &self.injectors {
            match injector {
                Injector::Schedule(entries) => {
                    for &(at, fault) in entries {
                        if at < horizon {
                            out.push((at, fault));
                        }
                    }
                }
                Injector::Rate {
                    fault,
                    per_sec,
                    start,
                    end,
                } => {
                    if *per_sec <= 0.0 {
                        continue;
                    }
                    let mean = Duration::from_secs_f64(1.0 / per_sec);
                    let stop = (*end).min(horizon);
                    let mut t = *start;
                    loop {
                        t += rng.exponential(mean);
                        if t >= stop {
                            break;
                        }
                        out.push((t, freshen(*fault, &mut rng)));
                    }
                }
            }
        }
        out.sort_by_key(|&(at, _)| at);
        out
    }

    /// Arm a non-crash fault at `now` (instance crashes are applied by the
    /// driver directly, since victim selection needs the fleet).
    pub fn arm(&mut self, now: SimTime, fault: Fault) {
        match fault {
            Fault::InstanceCrash { .. } => {}
            Fault::BootFailure => self.armed_boot += 1,
            Fault::RpcDrop { timeout } => self.armed_rpc.push_back(RpcFault::Drop { timeout }),
            Fault::RpcDelay { delay } => self.armed_rpc.push_back(RpcFault::Delay { delay }),
            Fault::NetworkDegrade { factor, duration } => {
                self.net.push((now, now + duration, factor));
            }
            Fault::DbConnDrop { reconnect } => self.armed_db.push_back(reconnect),
        }
    }

    /// Consume the next armed RPC fault, if any.
    pub fn rpc_fault(&mut self) -> Option<RpcFault> {
        self.armed_rpc.pop_front()
    }

    /// Consume the next armed DB connection drop, if any.
    pub fn db_drop(&mut self) -> Option<Duration> {
        self.armed_db.pop_front()
    }

    /// Consume one armed boot failure; `true` when the boot should fail.
    pub fn take_boot_failure(&mut self) -> bool {
        if self.armed_boot > 0 {
            self.armed_boot -= 1;
            true
        } else {
            false
        }
    }

    /// The network slowdown factor in effect at `now` (`1.0` when no degrade
    /// window is active; overlapping windows take the worst factor).
    pub fn net_factor(&self, now: SimTime) -> f64 {
        self.net
            .iter()
            .filter(|&&(from, to, _)| from <= now && now < to)
            .map(|&(_, _, f)| f)
            .fold(1.0, f64::max)
    }
}

/// Re-draw the randomized fields of a rate-injected fault template.
fn freshen(fault: Fault, rng: &mut Rng) -> Fault {
    match fault {
        Fault::InstanceCrash { .. } => Fault::InstanceCrash {
            selector: rng.next_u64(),
        },
        other => other,
    }
}

/// Mix the plan seed with the run seed (splitmix64-style finalizer).
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(31).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Key a plan seed on a scenario label, so each scenario in a sweep gets its
/// own independent fault stream from one user-facing `--chaos-seed`
/// (FNV-1a over the label, folded into the seed).
pub fn keyed(seed: u64, scenario: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x0100_0000_01b3);
    for b in scenario.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    // Satellite: table-driven retry/backoff tests, no DES in the loop
    // (mirroring the router's test style).
    #[test]
    fn backoff_doubles_per_attempt_and_caps() {
        let p = RetryPolicy::new(ms(50), 8);
        let cases: Vec<(u32, Duration)> = vec![
            (1, ms(50)),
            (2, ms(100)),
            (3, ms(200)),
            (4, ms(400)),
            (5, ms(800)),
        ];
        for (attempt, want) in cases {
            assert_eq!(
                p.decide(attempt, false),
                RetryDecision::Retry { backoff: want },
                "attempt {attempt}"
            );
        }
        // The doubling saturates at base << 10 no matter the attempt count.
        let p = RetryPolicy::new(ms(1), u32::MAX);
        assert_eq!(
            p.decide(10_000, false),
            RetryDecision::Retry { backoff: ms(1024) }
        );
    }

    #[test]
    fn retry_cap_degrades_clean_requests_only() {
        let p = RetryPolicy::new(ms(50), 3);
        let cases: Vec<(u32, bool, RetryDecision)> = vec![
            // Under the cap: retry regardless of journal state.
            (3, false, RetryDecision::Retry { backoff: ms(200) }),
            (3, true, RetryDecision::Retry { backoff: ms(200) }),
            // Over the cap, no writes issued: degrade to the server.
            (4, false, RetryDecision::Degrade),
            (9, false, RetryDecision::Degrade),
            // Over the cap with writes issued: degradation would re-run the
            // request under a fresh id and defeat the exactly-once journal,
            // so the policy persists at the capped backoff.
            (4, true, RetryDecision::Retry { backoff: ms(400) }),
            (
                20,
                true,
                RetryDecision::Retry {
                    backoff: ms(51_200),
                },
            ),
        ];
        for (attempt, committed, want) in cases {
            assert_eq!(
                p.decide(attempt, committed),
                want,
                "attempt {attempt} committed {committed}"
            );
        }
    }

    #[test]
    fn schedule_is_deterministic_and_keyed() {
        let mut plan = FaultPlan::new(7);
        plan.push(Injector::Rate {
            fault: Fault::InstanceCrash { selector: 0 },
            per_sec: 2.0,
            start: Duration::ZERO,
            end: Duration::from_secs(60),
        });
        let a = plan.schedule(42, Duration::from_secs(60));
        let b = plan.schedule(42, Duration::from_secs(60));
        assert!(!a.is_empty());
        assert_eq!(a, b, "same (plan seed, run seed) → identical timetable");
        let c = plan.schedule(43, Duration::from_secs(60));
        assert_ne!(a, c, "a different run seed reshuffles the stream");
        // Selectors are re-drawn per event, so crashes hit varied victims.
        let selectors: Vec<u64> = a
            .iter()
            .map(|&(_, f)| match f {
                Fault::InstanceCrash { selector } => selector,
                _ => unreachable!(),
            })
            .collect();
        assert!(selectors.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn schedule_clips_to_horizon_and_window() {
        let mut plan = FaultPlan::new(1);
        plan.push(Injector::Schedule(vec![
            (ms(10), Fault::BootFailure),
            (ms(500), Fault::BootFailure),
        ]));
        plan.push(Injector::Rate {
            fault: Fault::DbConnDrop { reconnect: ms(5) },
            per_sec: 100.0,
            start: ms(20),
            end: ms(40),
        });
        let out = plan.schedule(42, ms(100));
        assert!(out.iter().all(|&(at, _)| at < ms(100)));
        assert!(out
            .iter()
            .filter(|&&(_, f)| matches!(f, Fault::DbConnDrop { .. }))
            .all(|&(at, _)| at >= ms(20) && at < ms(40)));
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0), "time-sorted");
        // The ms(500) entry is beyond the horizon.
        assert_eq!(
            out.iter()
                .filter(|&&(_, f)| f == Fault::BootFailure)
                .count(),
            1
        );
    }

    #[test]
    fn armed_faults_consume_fifo() {
        let mut plan = FaultPlan::default();
        let t0 = SimTime::ZERO;
        plan.arm(t0, Fault::RpcDrop { timeout: ms(30) });
        plan.arm(t0, Fault::RpcDelay { delay: ms(5) });
        assert_eq!(plan.rpc_fault(), Some(RpcFault::Drop { timeout: ms(30) }));
        assert_eq!(plan.rpc_fault(), Some(RpcFault::Delay { delay: ms(5) }));
        assert_eq!(plan.rpc_fault(), None);

        plan.arm(t0, Fault::DbConnDrop { reconnect: ms(8) });
        assert_eq!(plan.db_drop(), Some(ms(8)));
        assert_eq!(plan.db_drop(), None);

        assert!(!plan.take_boot_failure());
        plan.arm(t0, Fault::BootFailure);
        plan.arm(t0, Fault::BootFailure);
        assert!(plan.take_boot_failure());
        assert!(plan.take_boot_failure());
        assert!(!plan.take_boot_failure());
    }

    #[test]
    fn net_factor_tracks_windows() {
        let mut plan = FaultPlan::default();
        let t = |v| SimTime::ZERO + ms(v);
        assert_eq!(plan.net_factor(t(0)), 1.0);
        plan.arm(
            t(10),
            Fault::NetworkDegrade {
                factor: 3.0,
                duration: ms(20),
            },
        );
        plan.arm(
            t(15),
            Fault::NetworkDegrade {
                factor: 2.0,
                duration: ms(30),
            },
        );
        assert_eq!(plan.net_factor(t(5)), 1.0);
        assert_eq!(plan.net_factor(t(10)), 3.0);
        assert_eq!(plan.net_factor(t(16)), 3.0, "overlap takes the worst");
        assert_eq!(plan.net_factor(t(35)), 2.0);
        assert_eq!(plan.net_factor(t(50)), 1.0, "windows are half-open");
    }

    #[test]
    fn keyed_separates_scenarios() {
        assert_eq!(keyed(42, "a"), keyed(42, "a"));
        assert_ne!(keyed(42, "a"), keyed(42, "b"));
        assert_ne!(keyed(42, "a"), keyed(43, "a"));
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(plan.schedule(42, Duration::from_secs(60)).is_empty());
    }
}
