//! Closure plans: what goes into the initial closure of a root method, and
//! how fallbacks refine it (§3.1, §4.3).
//!
//! The initial closure is "code (Java bytecode) and data likely to be used
//! according to dynamic profiling". BeeHive's key property is that the plan
//! need not be complete: execution on FaaS falls back for anything missing,
//! and every fallback *refines* the plan so the next dispatch includes it —
//! "the fallback mechanism continuously completes the closure" (§3.1). This
//! is exactly the Table 5 dynamic: ~1.5k fetches during the first (shadow)
//! execution, single digits afterwards.

use std::collections::BTreeSet;

use beehive_sim::Duration;
use beehive_vm::{Addr, ClassId, MethodId, StaticSlot};

/// The (refinable) recipe for building a root method's initial closure.
#[derive(Clone, Debug)]
pub struct ClosurePlan {
    /// The root method.
    pub root: MethodId,
    /// Classes whose code ships with the closure.
    pub classes: BTreeSet<ClassId>,
    /// Server objects (canonical addresses) copied into the closure.
    pub objects: BTreeSet<Addr>,
    /// Statics pre-installed on the function.
    pub statics: BTreeSet<StaticSlot>,
}

impl ClosurePlan {
    /// A minimal plan: just the root method's class. Everything else arrives
    /// through fallbacks and refinement.
    pub fn minimal(root: MethodId, root_class: ClassId) -> Self {
        let mut classes = BTreeSet::new();
        classes.insert(root_class);
        ClosurePlan {
            root,
            classes,
            objects: BTreeSet::new(),
            statics: BTreeSet::new(),
        }
    }

    /// Refine with a class fetched by a missing-code fallback.
    pub fn note_class(&mut self, class: ClassId) {
        self.classes.insert(class);
    }

    /// Refine with an object fetched by a data fallback.
    ///
    /// # Panics
    ///
    /// Panics on a remote-marked address (plans hold canonical addresses).
    pub fn note_object(&mut self, server_addr: Addr) {
        assert!(!server_addr.is_remote(), "plans hold canonical addresses");
        self.objects.insert(server_addr);
    }

    /// Refine with a static fetched by a data fallback.
    pub fn note_static(&mut self, slot: StaticSlot) {
        self.statics.insert(slot);
    }

    /// Rough size of the plan (for diagnostics).
    pub fn len(&self) -> usize {
        self.classes.len() + self.objects.len() + self.statics.len()
    }

    /// `true` when the plan holds nothing at all (not even a root class).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when only the root class is planned.
    pub fn is_minimal(&self) -> bool {
        self.classes.len() <= 1 && self.objects.is_empty() && self.statics.is_empty()
    }
}

/// Outcome of instantiating a closure on a fresh function instance.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClosureStats {
    /// Objects copied.
    pub objects: u64,
    /// Classes shipped.
    pub classes: u64,
    /// Total transfer size (classes + objects + marshalled native state).
    pub bytes: u64,
    /// Server CPU time to compute the closure (§5.6: ~134 ms on average,
    /// overlappable with the cold boot).
    pub compute: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_plan() {
        let p = ClosurePlan::minimal(MethodId(3), ClassId(7));
        assert!(p.is_minimal());
        assert_eq!(p.len(), 1);
        assert!(p.classes.contains(&ClassId(7)));
    }

    #[test]
    fn refinement_grows_the_plan() {
        let mut p = ClosurePlan::minimal(MethodId(0), ClassId(0));
        p.note_class(ClassId(1));
        p.note_class(ClassId(1)); // dedup
        p.note_object(Addr(0x1000_0000_0000));
        p.note_static(StaticSlot(2));
        assert!(!p.is_minimal());
        assert_eq!(p.len(), 4);
    }

    #[test]
    #[should_panic(expected = "canonical")]
    fn remote_addresses_rejected() {
        let mut p = ClosurePlan::minimal(MethodId(0), ClassId(0));
        p.note_object(Addr(0x1000_0000_0000).to_remote());
    }
}
