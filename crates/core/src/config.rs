//! BeeHive configuration: network profile, fallback costs, feature toggles
//! for the ablations.

use beehive_sim::Duration;

/// One-way latencies and bandwidth between the three endpoints.
#[derive(Clone, Copy, Debug)]
pub struct NetProfile {
    /// One-way latency function ↔ server.
    pub function_server: Duration,
    /// One-way latency function ↔ database proxy.
    pub function_db: Duration,
    /// One-way latency server ↔ database proxy.
    pub server_db: Duration,
    /// Bulk-transfer bandwidth in bytes per second (closures, classes,
    /// fetched objects).
    pub bandwidth_bps: u64,
    /// Per-invocation platform overhead (controller/invoker path on
    /// OpenWhisk, the invoke API on Lambda). Zero for non-FaaS paths.
    pub dispatch_latency: Duration,
}

impl NetProfile {
    /// Intra-AZ EC2 profile used for server-side runs (sub-millisecond).
    pub fn intra_az() -> Self {
        NetProfile {
            function_server: Duration::from_micros(120),
            function_db: Duration::from_micros(120),
            server_db: Duration::from_micros(100),
            bandwidth_bps: 1_000_000_000 / 8, // 1 Gb/s
            dispatch_latency: Duration::ZERO,
        }
    }

    /// Time to move `bytes` over the bulk link (excluding latency).
    pub fn transfer(&self, bytes: u64) -> Duration {
        Duration::from_nanos(bytes.saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }
}

/// Tunables and feature toggles of the BeeHive runtime.
#[derive(Clone, Copy, Debug)]
pub struct BeeHiveConfig {
    /// Network profile between endpoints.
    pub net: NetProfile,
    /// Server CPU time to service one fallback request (lookup + reply).
    pub fallback_handle_cost: Duration,
    /// Server CPU time to coordinate one synchronization (lock grant +
    /// address translation base cost, §4.2).
    pub sync_base_cost: Duration,
    /// Server CPU time per translated/shipped object during sync.
    pub per_object_sync_cost: Duration,
    /// Server CPU cost to compute an initial closure, per included object.
    pub closure_per_object_cost: Duration,
    /// Server CPU cost to compute an initial closure, per included class.
    pub closure_per_class_cost: Duration,
    /// Fixed part of closure computation.
    pub closure_base_cost: Duration,
    /// §3.2: pack native states into closures (`false` reproduces the
    /// COMET-style ablation where every hidden-state native falls back).
    pub packageable_enabled: bool,
    /// §3.3: share connections through the proxy (`false` makes every DB
    /// round trip fall back to the server).
    pub proxy_enabled: bool,
    /// §4.5: capture a recovery snapshot at every synchronization point.
    pub recovery_enabled: bool,
}

impl Default for BeeHiveConfig {
    fn default() -> Self {
        BeeHiveConfig {
            net: NetProfile::intra_az(),
            fallback_handle_cost: Duration::from_micros(25),
            sync_base_cost: Duration::from_micros(40),
            per_object_sync_cost: Duration::from_micros(2),
            // §5.6: computing initial closures averages 133.66 ms; dominated
            // by graph traversal over thousands of objects/classes.
            closure_per_object_cost: Duration::from_micros(40),
            closure_per_class_cost: Duration::from_micros(120),
            closure_base_cost: Duration::from_millis(2),
            packageable_enabled: true,
            proxy_enabled: true,
            recovery_enabled: false,
        }
    }
}

impl BeeHiveConfig {
    /// The COMET-style ablation: no native-state packaging (§3.2 motivation).
    pub fn without_packageable(mut self) -> Self {
        self.packageable_enabled = false;
        self
    }

    /// Ablation: no proxy-based connection sharing (§3.3 motivation).
    pub fn without_proxy(mut self) -> Self {
        self.proxy_enabled = false;
        self
    }

    /// Enable sync-point snapshots for failure recovery (§4.5).
    pub fn with_recovery(mut self) -> Self {
        self.recovery_enabled = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let net = NetProfile::intra_az();
        let small = net.transfer(1_000);
        let big = net.transfer(1_000_000);
        assert!(big > small * 500);
        // 1 MB over 1 Gb/s = 8 ms.
        assert_eq!(net.transfer(1_000_000).as_millis(), 8);
    }

    #[test]
    fn ablation_toggles() {
        let c = BeeHiveConfig::default();
        assert!(c.packageable_enabled && c.proxy_enabled && !c.recovery_enabled);
        assert!(!c.without_packageable().packageable_enabled);
        assert!(!c.without_proxy().proxy_enabled);
        assert!(c.with_recovery().recovery_enabled);
    }
}
