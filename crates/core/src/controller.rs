//! The offloading-ratio controller (§3.1, §5.7).
//!
//! "The number of offloaded requests is determined by an *offloading ratio*,
//! and BeeHive can scale in and out by setting the ratio." Setting the ratio
//! to zero stops offloading entirely — the §5.7 combination mode hands the
//! burst back to freshly provisioned on-demand instances this way.

/// Deterministic per-request offload decision maker.
///
/// Uses an error-accumulator (Bresenham-style) instead of randomness so that
/// a ratio of 0.5 offloads *exactly* every other request, keeping experiment
/// runs reproducible.
#[derive(Clone, Debug)]
pub struct OffloadController {
    ratio: f64,
    acc: f64,
}

impl OffloadController {
    /// A controller offloading `ratio` of requests (clamped to `[0, 1]`).
    pub fn new(ratio: f64) -> Self {
        OffloadController {
            ratio: ratio.clamp(0.0, 1.0),
            acc: 0.0,
        }
    }

    /// The current ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Set the ratio (clamped to `[0, 1]`).
    pub fn set_ratio(&mut self, ratio: f64) {
        self.ratio = ratio.clamp(0.0, 1.0);
    }

    /// Decide whether the next request is offloaded.
    pub fn decide(&mut self) -> bool {
        self.acc += self.ratio;
        if self.acc >= 1.0 {
            self.acc -= 1.0;
            true
        } else {
            false
        }
    }

    /// Scale out: raise the ratio by `step`.
    pub fn scale_out(&mut self, step: f64) {
        self.set_ratio(self.ratio + step);
    }

    /// Scale in: lower the ratio by `step`.
    pub fn scale_in(&mut self, step: f64) {
        self.set_ratio(self.ratio - step);
    }
}

impl Default for OffloadController {
    fn default() -> Self {
        Self::new(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_offloaded(ratio: f64, n: usize) -> usize {
        let mut c = OffloadController::new(ratio);
        (0..n).filter(|_| c.decide()).count()
    }

    #[test]
    fn zero_ratio_never_offloads() {
        assert_eq!(count_offloaded(0.0, 1000), 0);
    }

    #[test]
    fn full_ratio_always_offloads() {
        assert_eq!(count_offloaded(1.0, 1000), 1000);
    }

    #[test]
    fn half_ratio_alternates_exactly() {
        let mut c = OffloadController::new(0.5);
        let pattern: Vec<bool> = (0..6).map(|_| c.decide()).collect();
        assert_eq!(pattern, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn fractional_ratios_hit_expected_counts() {
        assert_eq!(count_offloaded(0.25, 1000), 250);
        assert_eq!(count_offloaded(0.75, 1000), 750);
    }

    #[test]
    fn ratio_is_clamped() {
        let mut c = OffloadController::new(7.0);
        assert_eq!(c.ratio(), 1.0);
        c.scale_in(5.0);
        assert_eq!(c.ratio(), 0.0);
        c.scale_out(0.3);
        assert!((c.ratio() - 0.3).abs() < 1e-12);
    }
}
