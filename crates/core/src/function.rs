//! The function-side runtime of one FaaS instance.

use std::collections::HashMap;

use beehive_proxy::ConnId;
use beehive_vm::program::Program;
use beehive_vm::{CostModel, MethodId, VmInstance};

/// Runtime state living inside one FaaS instance: a fresh VM plus the
/// attachment table of proxied connections.
///
/// An instance is reused across requests while the platform keeps it warm;
/// the instantiated closure (classes, objects, native state) persists, which
/// is why steady-state requests see almost no fallbacks (Table 5).
#[derive(Clone, Debug)]
pub struct FunctionRuntime {
    /// Stable id of this function instance (also its proxy identity).
    pub id: u32,
    /// The instance's VM.
    pub vm: VmInstance,
    /// Which root method's closure is instantiated here, if any.
    pub instantiated_for: Option<MethodId>,
    /// Proxy connections attached via prepared offload IDs:
    /// offload-id → underlying logical connection.
    pub attached: HashMap<u64, ConnId>,
}

impl FunctionRuntime {
    /// A fresh instance (as produced by a cold boot of the Semi-FaaS
    /// template: "only contains BeeHive's JVM for the function to connect
    /// with the server", §5.1).
    pub fn new(id: u32, program: &Program, cost: CostModel) -> Self {
        let mut vm = VmInstance::function(program, cost);
        vm.set_trace_id(id);
        FunctionRuntime {
            id,
            vm,
            instantiated_for: None,
            attached: HashMap::new(),
        }
    }

    /// The logical connection behind a prepared offload id, if attached.
    pub fn connection(&self, offload_id: u64) -> Option<ConnId> {
        self.attached.get(&offload_id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_vm::program::ProgramBuilder;

    #[test]
    fn fresh_instance_is_empty() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("A", 0, None);
        pb.method(c, "m", 0, 0, vec![beehive_vm::Op::Return]);
        let p = pb.finish();
        let f = FunctionRuntime::new(3, &p, CostModel::default());
        assert_eq!(f.id, 3);
        assert_eq!(f.instantiated_for, None);
        assert!(!f.vm.is_loaded(c));
        assert_eq!(f.connection(1), None);
    }
}
