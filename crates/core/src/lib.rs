//! # beehive-core — the BeeHive Semi-FaaS offloading framework
//!
//! This crate is the reproduction of the paper's contribution: a partial,
//! automatic, dynamic offloading framework that lets a monolithic web
//! service ship *closures* — bytecode, reachable objects, packed native
//! state — to FaaS instances, with a fallback-based execution model that
//! completes the closure on demand.
//!
//! The pieces map one-to-one onto the paper:
//!
//! | Module | Paper section |
//! |---|---|
//! | [`closure`] — initial-closure construction & refinement | §3.1, §4.3 |
//! | [`session`] — the fallback protocol (missing code/data, native, DB, sync) | §3.1–§3.3, §4.1–§4.2 |
//! | [`mapping`] — per-function address mapping tables | §4.1 |
//! | [`objgraph`] — object-graph copies with remote-reference marking | §4.1 |
//! | [`server`] / [`function`] — the two endpoint runtimes | §3.1 |
//! | shadow execution (a [`session`] mode) — warmup hiding | §3.4 |
//! | [`recovery`] — re-execution from sync-point snapshots | §4.5 |
//! | [`controller`] — the offloading ratio used to scale in/out | §3.1, §5.7 |
//!
//! ## Execution model
//!
//! Sessions ([`session::ServerSession`], [`session::OffloadSession`]) are
//! state machines that the embedding discrete-event simulation drives: each
//! [`session::SessionStep`] tells the driver which resource to occupy for how
//! long (server CPU, function CPU, network, database) before calling the
//! session again. All BeeHive mechanics — remote-reference fix-up, closure
//! refinement, monitor hand-offs with dirty-object shipping, proxy-mediated
//! database rounds — happen inside the session when its pending steps drain.

#![warn(missing_docs)]

pub mod closure;
pub mod config;
pub mod controller;
pub mod function;
pub mod mapping;
pub mod objgraph;
pub mod recovery;
pub mod server;
pub mod session;
pub mod stats;

pub use config::{BeeHiveConfig, NetProfile};
pub use controller::OffloadController;
pub use function::FunctionRuntime;
pub use server::ServerRuntime;
pub use session::{Need, OffloadSession, Resource, ServerSession, SessionStep};
pub use stats::SessionStats;
