//! Per-function address mapping tables (§4.1).
//!
//! When the server offloads a closure, the copied objects land in the
//! function's closure space in the same order, so the server can "establish
//! a one-to-one address mapping for each offloaded object. This mapping is
//! responsible for synchronizing updates on the shared objects between FaaS
//! functions and the server."

use std::collections::HashMap;

use beehive_vm::Addr;

/// Bidirectional address map between server canonical addresses and one
/// function's local addresses.
#[derive(Clone, Debug, Default)]
pub struct MappingTable {
    to_local: HashMap<Addr, Addr>,
    to_server: HashMap<Addr, Addr>,
}

impl MappingTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that server object `server` is function object `local`.
    ///
    /// # Panics
    ///
    /// Panics if either side is remote-marked or already mapped to a
    /// different address.
    pub fn insert(&mut self, server: Addr, local: Addr) {
        assert!(
            !server.is_remote() && !local.is_remote(),
            "map raw addresses"
        );
        let prev = self.to_local.insert(server, local);
        assert!(
            prev.is_none() || prev == Some(local),
            "server object {server:?} remapped"
        );
        let prev = self.to_server.insert(local, server);
        assert!(
            prev.is_none() || prev == Some(server),
            "local object {local:?} remapped"
        );
    }

    /// The function-local address of a server object, if offloaded.
    pub fn local_of(&self, server: Addr) -> Option<Addr> {
        self.to_local.get(&server).copied()
    }

    /// The server canonical address of a function object, if shared.
    pub fn server_of(&self, local: Addr) -> Option<Addr> {
        self.to_server.get(&local).copied()
    }

    /// Number of mapped objects.
    pub fn len(&self) -> usize {
        self.to_local.len()
    }

    /// `true` when no objects are mapped.
    pub fn is_empty(&self) -> bool {
        self.to_local.is_empty()
    }

    /// Approximate memory footprint of the table on the server (§5.6 reports
    /// hundreds of KBs per function): two hash entries of ~32 bytes each per
    /// object.
    pub fn footprint_bytes(&self) -> u64 {
        self.to_local.len() as u64 * 64
    }

    /// Iterate `(server, local)` pairs (deterministic order not guaranteed;
    /// callers sort when determinism matters).
    pub fn iter(&self) -> impl Iterator<Item = (Addr, Addr)> + '_ {
        self.to_local.iter().map(|(s, l)| (*s, *l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut m = MappingTable::new();
        let s = Addr(0x1000_0000_0000);
        let l = Addr(0x1000_0000_0100);
        m.insert(s, l);
        assert_eq!(m.local_of(s), Some(l));
        assert_eq!(m.server_of(l), Some(s));
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn idempotent_reinsert_is_fine() {
        let mut m = MappingTable::new();
        let s = Addr(0x1000_0000_0000);
        let l = Addr(0x1000_0000_0100);
        m.insert(s, l);
        m.insert(s, l);
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "remapped")]
    fn conflicting_mapping_panics() {
        let mut m = MappingTable::new();
        let s = Addr(0x1000_0000_0000);
        m.insert(s, Addr(0x1000_0000_0100));
        m.insert(s, Addr(0x1000_0000_0200));
    }

    #[test]
    fn footprint_grows() {
        let mut m = MappingTable::new();
        for i in 0..100u64 {
            m.insert(
                Addr(0x1000_0000_0000 + i * 8),
                Addr(0x1000_0000_8000 + i * 8),
            );
        }
        assert_eq!(m.footprint_bytes(), 6400);
    }
}
