//! Object-graph copies between endpoints (§4.1).
//!
//! Two directions:
//!
//! * [`copy_to_function`] — offloading: copy a set of server objects into a
//!   function's closure space; references to objects outside the set are
//!   written with bit 63 set (remote references), and packageable classes
//!   get their native state marshalled through a caller-supplied hook.
//! * [`apply_dirty_to_server`] — synchronization: write a function's dirty
//!   objects back through the mapping table; objects the function created
//!   that escaped into shared state are copied into the server's stable
//!   space and added to the mapping.

use std::collections::{HashSet, VecDeque};

use beehive_vm::class::PackKind;
use beehive_vm::heap::Space;
use beehive_vm::program::Program;
use beehive_vm::{Addr, Value, VmInstance};

use crate::mapping::MappingTable;

/// Hook invoked for every packageable native encountered during a copy:
/// given the kind and the server-side native state, it marshals (or refuses
/// to marshal) the state into the function VM, returning the function-side
/// native id.
pub type PackageHook<'a> = dyn FnMut(PackKind, Option<beehive_vm::natives::NativeState>, &mut VmInstance) -> Option<i64>
    + 'a;

/// Outcome of a copy into a function.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CopyReport {
    /// Objects copied.
    pub objects: u64,
    /// Bytes transferred (object payloads + marshalled native state).
    pub bytes: u64,
    /// Native states packed (packageable marshal calls).
    pub natives_packed: u64,
}

/// Outcome of shipping dirty objects back to the server.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// Mapped objects whose fields were updated on the server.
    pub updated: u64,
    /// Newly escaped function objects copied into server stable space.
    pub escaped: u64,
    /// Bytes shipped.
    pub bytes: u64,
}

/// Copy the `include` set of server objects (reachable roots of the closure,
/// or a single fetched object) into `func`'s closure space.
///
/// * Already-mapped objects are reused, not duplicated.
/// * References to server objects outside `include` become remote references
///   (bit 63 + server canonical address).
/// * For packageable classes, `on_packageable(kind, state, func)` is invoked
///   with the resolved server-side native state to marshal/unmarshal it; it
///   returns the new handle value on the function (or `None` to copy the
///   stale handle raw, which reproduces the no-packaging ablation).
///
/// # Panics
///
/// Panics if a root is remote-marked or not a valid server object.
pub fn copy_to_function(
    server: &VmInstance,
    func: &mut VmInstance,
    mapping: &mut MappingTable,
    program: &Program,
    include: &HashSet<Addr>,
    on_packageable: &mut PackageHook,
) -> CopyReport {
    let mut report = CopyReport::default();

    // Pass 1: allocate every included object (BFS from the include set
    // itself; inclusion is decided by the set, not reachability).
    let mut order: Vec<Addr> = Vec::new();
    let mut queue: VecDeque<Addr> = {
        let mut sorted: Vec<Addr> = include.iter().copied().collect();
        sorted.sort_unstable(); // deterministic layout
        sorted.into()
    };
    let mut seen: HashSet<Addr> = HashSet::new();
    while let Some(server_addr) = queue.pop_front() {
        assert!(
            !server_addr.is_remote(),
            "include set must hold canonical addresses"
        );
        if !seen.insert(server_addr) {
            continue;
        }
        if mapping.local_of(server_addr).is_some() {
            continue; // already offloaded earlier
        }
        let len = server.heap.len_of(server_addr);
        let local = if server.heap.is_array(server_addr) {
            func.heap
                .alloc_array(len, Space::Closure)
                .expect("closure space is unbounded")
        } else {
            let class = server.heap.class_of(server_addr);
            if !func.is_loaded(class) {
                // Object arrival implies its class becomes known (§3.1: the
                // closure contains code and data).
                func.load_class(class);
                report.bytes += program.class_bytes(class) as u64;
            }
            func.heap
                .alloc_object(class, len, Space::Closure)
                .expect("closure space is unbounded")
        };
        mapping.insert(server_addr, local);
        order.push(server_addr);
        report.objects += 1;
        report.bytes += (1 + len as u64) * 8;
    }

    // Pass 2: fill fields, translating references.
    for server_addr in order {
        let local = mapping.local_of(server_addr).expect("just mapped");
        let len = server.heap.len_of(server_addr);
        let pack_spec = if server.heap.is_array(server_addr) {
            None
        } else {
            program.class(server.heap.class_of(server_addr)).packageable
        };
        for slot in 0..len {
            let v = server.heap.get(server_addr, slot);
            // Packageable handle slot: marshal native state instead of the
            // raw handle.
            if let Some(spec) = pack_spec {
                if spec.handle_slot as u32 == slot {
                    if let Value::I64(server_handle) = v {
                        let state = server.native_state(server_handle as u64).cloned();
                        if let Some(new_handle) = on_packageable(spec.kind, state, func) {
                            func.heap.set(local, slot, Value::I64(new_handle));
                            report.natives_packed += 1;
                            report.bytes += spec.marshalled_bytes as u64;
                            continue;
                        }
                    }
                }
            }
            let tv = match v {
                Value::Null | Value::I64(_) => v,
                Value::Ref(a) => {
                    assert!(!a.is_remote(), "server heap holds no remote refs");
                    match mapping.local_of(a) {
                        Some(l) => Value::Ref(l),
                        None => Value::Ref(a.to_remote()),
                    }
                }
            };
            func.heap.set(local, slot, tv);
        }
    }
    report
}

/// Translate a single server value for installation on a function (statics,
/// returned arguments): mapped references become local, unmapped ones become
/// remote references.
pub fn translate_value_to_function(v: Value, mapping: &MappingTable) -> Value {
    match v {
        Value::Ref(a) if !a.is_remote() => match mapping.local_of(a) {
            Some(l) => Value::Ref(l),
            None => Value::Ref(a.to_remote()),
        },
        other => other,
    }
}

/// Ship a function's dirty objects back to the server (at a synchronization
/// point or on completion, §4.2).
///
/// Field values are translated local→server; function-created objects that
/// escaped into shared fields are copied into the server's stable (closure)
/// space and added to the mapping. Packageable handle slots are skipped —
/// native handles are endpoint-local.
///
/// # Panics
///
/// Panics if a dirty object is not in the mapping (dirty objects are always
/// closure-space objects, which are mapped by construction).
pub fn apply_dirty_to_server(
    func: &VmInstance,
    server: &mut VmInstance,
    mapping: &mut MappingTable,
    program: &Program,
    dirty: &[Addr],
) -> ApplyReport {
    let mut report = ApplyReport::default();

    // Discover escaped objects first: function-local, allocation- or
    // closure-space objects reachable from dirty fields that have no server
    // counterpart yet.
    let mut escape_order: Vec<Addr> = Vec::new();
    let mut queue: VecDeque<Addr> = dirty.iter().copied().collect();
    let mut seen: HashSet<Addr> = HashSet::new();
    while let Some(local) = queue.pop_front() {
        if !seen.insert(local) {
            continue;
        }
        if mapping.server_of(local).is_none() {
            // Escaped object: allocate a server-side twin in stable space.
            let len = func.heap.len_of(local);
            let server_addr = if func.heap.is_array(local) {
                server
                    .heap
                    .alloc_array(len, Space::Closure)
                    .expect("closure space is unbounded")
            } else {
                server
                    .heap
                    .alloc_object(func.heap.class_of(local), len, Space::Closure)
                    .expect("closure space is unbounded")
            };
            mapping.insert(server_addr, local);
            escape_order.push(local);
            report.escaped += 1;
        }
        // Scan fields for further local references.
        for slot in 0..func.heap.len_of(local) {
            if let Value::Ref(a) = func.heap.get(local, slot) {
                if !a.is_remote() {
                    queue.push_back(a);
                }
            }
        }
    }

    // Write back: dirty objects update their mapped twins; escaped objects
    // fill their fresh twins.
    let mut write_back = |local: Addr, report: &mut ApplyReport| {
        let server_addr = mapping.server_of(local).expect("mapped by now");
        let len = func.heap.len_of(local);
        let pack_spec = if func.heap.is_array(local) {
            None
        } else {
            program.class(func.heap.class_of(local)).packageable
        };
        for slot in 0..len {
            if let Some(spec) = pack_spec {
                if spec.handle_slot as u32 == slot {
                    continue; // native handles never travel raw
                }
            }
            let v = func.heap.get(local, slot);
            let tv = match v {
                Value::Null | Value::I64(_) => v,
                Value::Ref(a) if a.is_remote() => Value::Ref(a.to_local()),
                Value::Ref(a) => Value::Ref(
                    mapping
                        .server_of(a)
                        .expect("reachable locals were escaped or mapped"),
                ),
            };
            server.heap.set(server_addr, slot, tv);
        }
        report.bytes += (1 + len as u64) * 8;
    };

    for &local in dirty {
        write_back(local, &mut report);
        report.updated += 1;
    }
    for &local in &escape_order {
        if !dirty.contains(&local) {
            write_back(local, &mut report);
        }
    }
    report
}

/// Translate the set of server objects updated by one endpoint into another
/// endpoint's address space, updating any objects the target has mapped
/// (used for function→function synchronization through the server, Fig. 6).
///
/// Only objects the target already holds are refreshed; everything else
/// stays remote and will be fetched on demand.
pub fn refresh_mapped_objects(
    server: &VmInstance,
    target: &mut VmInstance,
    mapping: &MappingTable,
    program: &Program,
    server_objects: &[Addr],
) -> u64 {
    let mut refreshed = 0;
    for &server_addr in server_objects {
        let Some(local) = mapping.local_of(server_addr) else {
            continue;
        };
        let len = server.heap.len_of(server_addr);
        let pack_spec = if server.heap.is_array(server_addr) {
            None
        } else {
            program.class(server.heap.class_of(server_addr)).packageable
        };
        for slot in 0..len {
            if let Some(spec) = pack_spec {
                if spec.handle_slot as u32 == slot {
                    continue;
                }
            }
            let v = server.heap.get(server_addr, slot);
            let tv = translate_value_to_function(v, mapping);
            target.heap.set(local, slot, tv);
        }
        refreshed += 1;
    }
    refreshed
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_vm::class::PackSpec;
    use beehive_vm::natives::NativeState;
    use beehive_vm::program::ProgramBuilder;
    use beehive_vm::{ClassId, CostModel};

    struct World {
        program: Program,
        server: VmInstance,
        func: VmInstance,
        node: ClassId,
        sock: ClassId,
    }

    fn world() -> World {
        let mut pb = ProgramBuilder::new();
        let node = pb.user_class("Node", 3, None);
        let sock = pb.jdk_class("SocketImpl", 2);
        pb.make_packageable(
            sock,
            PackSpec {
                handle_slot: 0,
                kind: PackKind::Socket,
                marshalled_bytes: 64,
            },
        );
        pb.method(node, "noop", 0, 0, vec![beehive_vm::Op::Return]);
        let program = pb.finish();
        let server = VmInstance::server(&program, CostModel::default());
        let func = VmInstance::function(&program, CostModel::default());
        World {
            program,
            server,
            func,
            node,
            sock,
        }
    }

    fn alloc_node(w: &mut World, space: Space) -> Addr {
        w.server.heap.alloc_object(w.node, 3, space).unwrap()
    }

    #[test]
    fn copy_marks_excluded_refs_remote() {
        let mut w = world();
        let a = alloc_node(&mut w, Space::Closure);
        let b = alloc_node(&mut w, Space::Closure);
        let c = alloc_node(&mut w, Space::Closure);
        w.server.heap.set(a, 0, Value::Ref(b));
        w.server.heap.set(a, 1, Value::Ref(c));
        w.server.heap.set(b, 0, Value::I64(5));

        let include: HashSet<Addr> = [a, b].into_iter().collect();
        let mut mapping = MappingTable::new();
        let report = copy_to_function(
            &w.server,
            &mut w.func,
            &mut mapping,
            &w.program,
            &include,
            &mut |_, _, _| None,
        );
        assert_eq!(report.objects, 2);
        let la = mapping.local_of(a).unwrap();
        let lb = mapping.local_of(b).unwrap();
        // a.f0 -> local b
        assert_eq!(w.func.heap.get(la, 0), Value::Ref(lb));
        // a.f1 -> remote c
        assert_eq!(w.func.heap.get(la, 1), Value::Ref(c.to_remote()));
        // b payload copied
        assert_eq!(w.func.heap.get(lb, 0), Value::I64(5));
        // class got "loaded" on the function
        assert!(w.func.is_loaded(w.node));
    }

    #[test]
    fn copy_is_idempotent_for_mapped_objects() {
        let mut w = world();
        let a = alloc_node(&mut w, Space::Closure);
        let include: HashSet<Addr> = [a].into_iter().collect();
        let mut mapping = MappingTable::new();
        let r1 = copy_to_function(
            &w.server,
            &mut w.func,
            &mut mapping,
            &w.program,
            &include,
            &mut |_, _, _| None,
        );
        let r2 = copy_to_function(
            &w.server,
            &mut w.func,
            &mut mapping,
            &w.program,
            &include,
            &mut |_, _, _| None,
        );
        assert_eq!(r1.objects, 1);
        assert_eq!(r2.objects, 0, "second copy reuses the mapping");
    }

    #[test]
    fn packageable_socket_is_marshalled() {
        let mut w = world();
        let conn = w
            .server
            .heap
            .alloc_object(w.sock, 2, Space::Closure)
            .unwrap();
        let server_handle = w
            .server
            .register_native_state(NativeState::Socket { proxy_conn_id: 1 });
        w.server.heap.set(conn, 0, Value::I64(server_handle as i64));

        let include: HashSet<Addr> = [conn].into_iter().collect();
        let mut mapping = MappingTable::new();
        let mut packed = Vec::new();
        let report = copy_to_function(
            &w.server,
            &mut w.func,
            &mut mapping,
            &w.program,
            &include,
            &mut |kind, state, func| {
                packed.push((kind, state));
                // Pretend the proxy prepared offload id 77.
                Some(func.register_native_state(NativeState::Socket { proxy_conn_id: 77 }) as i64)
            },
        );
        assert_eq!(report.natives_packed, 1);
        assert_eq!(
            packed,
            vec![(
                PackKind::Socket,
                Some(NativeState::Socket { proxy_conn_id: 1 })
            )]
        );
        let _ = server_handle;
        let local = mapping.local_of(conn).unwrap();
        let new_handle = w.func.heap.get(local, 0).as_i64().unwrap() as u64;
        assert_eq!(
            w.func.native_state(new_handle),
            Some(&NativeState::Socket { proxy_conn_id: 77 })
        );
    }

    #[test]
    fn dirty_objects_write_back_through_mapping() {
        let mut w = world();
        let a = alloc_node(&mut w, Space::Closure);
        w.server.heap.set(a, 0, Value::I64(1));
        let include: HashSet<Addr> = [a].into_iter().collect();
        let mut mapping = MappingTable::new();
        copy_to_function(
            &w.server,
            &mut w.func,
            &mut mapping,
            &w.program,
            &include,
            &mut |_, _, _| None,
        );
        let la = mapping.local_of(a).unwrap();
        // The function mutates its copy.
        w.func.heap.set(la, 0, Value::I64(42));
        let report = apply_dirty_to_server(&w.func, &mut w.server, &mut mapping, &w.program, &[la]);
        assert_eq!(report.updated, 1);
        assert_eq!(w.server.heap.get(a, 0), Value::I64(42));
    }

    #[test]
    fn escaped_function_objects_are_materialized_on_server() {
        let mut w = world();
        let shared = alloc_node(&mut w, Space::Closure);
        let include: HashSet<Addr> = [shared].into_iter().collect();
        let mut mapping = MappingTable::new();
        copy_to_function(
            &w.server,
            &mut w.func,
            &mut mapping,
            &w.program,
            &include,
            &mut |_, _, _| None,
        );
        let lshared = mapping.local_of(shared).unwrap();

        // The function creates a new object and links it into shared state.
        let fresh = w.func.heap.alloc_object(w.node, 3, Space::Alloc).unwrap();
        w.func.heap.set(fresh, 0, Value::I64(99));
        w.func.heap.set(lshared, 1, Value::Ref(fresh));

        let report =
            apply_dirty_to_server(&w.func, &mut w.server, &mut mapping, &w.program, &[lshared]);
        assert_eq!(report.escaped, 1);
        let server_fresh = w.server.heap.get(shared, 1).as_ref().unwrap();
        assert!(!server_fresh.is_remote());
        assert_eq!(w.server.heap.get(server_fresh, 0), Value::I64(99));
        assert_eq!(mapping.server_of(fresh), Some(server_fresh));
    }

    #[test]
    fn remote_refs_written_back_become_canonical() {
        let mut w = world();
        let a = alloc_node(&mut w, Space::Closure);
        let other = alloc_node(&mut w, Space::Closure); // never offloaded
        let include: HashSet<Addr> = [a].into_iter().collect();
        let mut mapping = MappingTable::new();
        copy_to_function(
            &w.server,
            &mut w.func,
            &mut mapping,
            &w.program,
            &include,
            &mut |_, _, _| None,
        );
        let la = mapping.local_of(a).unwrap();
        // The function stores a remote ref (it never fetched `other`).
        w.func.heap.set(la, 2, Value::Ref(other.to_remote()));
        apply_dirty_to_server(&w.func, &mut w.server, &mut mapping, &w.program, &[la]);
        assert_eq!(w.server.heap.get(a, 2), Value::Ref(other));
    }

    #[test]
    fn translate_value_helper() {
        let mut w = world();
        let a = alloc_node(&mut w, Space::Closure);
        let mut mapping = MappingTable::new();
        assert_eq!(
            translate_value_to_function(Value::Ref(a), &mapping),
            Value::Ref(a.to_remote())
        );
        let include: HashSet<Addr> = [a].into_iter().collect();
        copy_to_function(
            &w.server,
            &mut w.func,
            &mut mapping,
            &w.program,
            &include,
            &mut |_, _, _| None,
        );
        let la = mapping.local_of(a).unwrap();
        assert_eq!(
            translate_value_to_function(Value::Ref(a), &mapping),
            Value::Ref(la)
        );
        assert_eq!(
            translate_value_to_function(Value::I64(7), &mapping),
            Value::I64(7)
        );
    }

    #[test]
    fn refresh_updates_only_mapped_objects() {
        let mut w = world();
        let a = alloc_node(&mut w, Space::Closure);
        let b = alloc_node(&mut w, Space::Closure);
        w.server.heap.set(a, 0, Value::I64(1));
        let include: HashSet<Addr> = [a].into_iter().collect();
        let mut mapping = MappingTable::new();
        copy_to_function(
            &w.server,
            &mut w.func,
            &mut mapping,
            &w.program,
            &include,
            &mut |_, _, _| None,
        );
        // Server-side state moves on.
        w.server.heap.set(a, 0, Value::I64(2));
        w.server.heap.set(b, 0, Value::I64(3));
        let n = refresh_mapped_objects(&w.server, &mut w.func, &mapping, &w.program, &[a, b]);
        assert_eq!(n, 1, "only `a` is mapped");
        let la = mapping.local_of(a).unwrap();
        assert_eq!(w.func.heap.get(la, 0), Value::I64(2));
    }
}
