//! Failure recovery (§4.5).
//!
//! "When a synchronization operation is triggered, BeeHive asks for the
//! function instance to send its execution stack, all objects referenced by
//! the stack, and updated shared objects back to the server. [...] If an
//! invocation to FaaS fails, BeeHive sends the latest stack information
//! together with the closure so that the FaaS function can resume its
//! execution from the last synchronization point."
//!
//! Mechanically, a [`Snapshot`] captures the execution's frames plus the
//! instance state needed to reconstruct the function on a replacement
//! instance. We snapshot the whole (small) instance image while charging
//! only the paper's wire cost (stack + referenced objects, a few KBs); the
//! observable semantics are the paper's: execution resumes from the last
//! synchronization point, and the database write journal keeps re-executed
//! writes exactly-once.

use std::collections::HashMap;

use beehive_proxy::ConnId;
use beehive_vm::{Execution, MethodId, VmInstance};

use crate::function::FunctionRuntime;
use crate::mapping::MappingTable;

/// A sync-point snapshot of one offloaded execution.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The execution (frames, locals, operand stacks) at the sync point.
    pub exec: Execution,
    vm: VmInstance,
    attached: HashMap<u64, ConnId>,
    instantiated_for: Option<MethodId>,
    /// The write sequence counter at the sync point (re-executed writes
    /// reuse their keys, so the database journal deduplicates them).
    pub write_seq: u32,
    /// The server-side mapping table at the sync point: entries created
    /// after the snapshot reference closure-space addresses the restored
    /// heap does not have, so the mapping must roll back with the heap.
    pub mapping: MappingTable,
}

impl Snapshot {
    /// Capture the state of `func` running `exec`, with the server-side
    /// mapping table as of the sync point.
    pub fn capture(
        exec: &Execution,
        func: &FunctionRuntime,
        root: MethodId,
        write_seq: u32,
        mapping: MappingTable,
    ) -> Self {
        Snapshot {
            exec: exec.clone(),
            vm: func.vm.clone(),
            attached: func.attached.clone(),
            instantiated_for: Some(root),
            write_seq,
            mapping,
        }
    }

    /// Restore the captured instance state onto a replacement instance (its
    /// id is preserved; heap, loaded classes, native state, monitor cache
    /// and connection attachments are replaced by the snapshot's).
    pub fn restore_into(&self, replacement: &mut FunctionRuntime) {
        replacement.vm = self.vm.clone();
        replacement.attached = self.attached.clone();
        replacement.instantiated_for = self.instantiated_for;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_vm::program::ProgramBuilder;
    use beehive_vm::{Asm, CostModel, Value};

    #[test]
    fn snapshot_round_trip() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("A", 1, None);
        let mut a = Asm::new();
        a.load(0).const_i(1).add().return_val();
        let m = pb.method(c, "m", 1, 0, a.finish());
        let p = pb.finish();

        let mut func = FunctionRuntime::new(1, &p, CostModel::default());
        func.vm.load_class(c);
        let exec = Execution::call(m, vec![Value::I64(41)], &p);
        let snap = Snapshot::capture(&exec, &func, m, 3, MappingTable::new());
        assert_eq!(snap.write_seq, 3);

        let mut replacement = FunctionRuntime::new(2, &p, CostModel::default());
        assert!(!replacement.vm.is_loaded(c));
        snap.restore_into(&mut replacement);
        assert!(replacement.vm.is_loaded(c), "loaded classes restored");
        assert_eq!(replacement.instantiated_for, Some(m));
        assert_eq!(replacement.id, 2, "identity stays with the instance");

        // The restored execution runs to completion on the replacement.
        let mut exec2 = snap.exec.clone();
        let r = exec2.run(&mut replacement.vm, &p);
        assert!(matches!(
            r.outcome,
            beehive_vm::Outcome::Done(Value::I64(42))
        ));
    }
}
