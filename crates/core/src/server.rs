//! The server-side BeeHive runtime: the long-running monolith plus all the
//! bookkeeping that coordinates its FaaS functions.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use beehive_proxy::{ConnId, Proxy};
use beehive_vm::class::{PackKind, PackSpec};
use beehive_vm::heap::Space;
use beehive_vm::natives::{NativeEffect, NativeState};
use beehive_vm::profiler::Profiler;
use beehive_vm::program::Program;
use beehive_vm::{Addr, ClassId, CostModel, EndpointId, MethodId, NativeId, Value, VmInstance};

use crate::closure::{ClosurePlan, ClosureStats};
use crate::config::BeeHiveConfig;
use crate::function::FunctionRuntime;
use crate::mapping::MappingTable;
use crate::objgraph::{
    apply_dirty_to_server, copy_to_function, refresh_mapped_objects, translate_value_to_function,
    ApplyReport,
};
use crate::stats::SessionStats;

/// Aggregate runtime statistics across all requests.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuntimeStats {
    /// Requests served locally on the server.
    pub requests_local: u64,
    /// Requests offloaded to FaaS (including shadows).
    pub requests_offloaded: u64,
    /// Shadow executions performed.
    pub shadows: u64,
    /// Sum of per-session statistics.
    pub sessions: SessionStats,
}

/// The server endpoint: program, VM, profiler, proxy, closure plans, mapping
/// tables and monitor ownership.
#[derive(Debug)]
pub struct ServerRuntime {
    /// The application program (shared with every function).
    pub program: Arc<Program>,
    /// The server VM instance.
    pub vm: VmInstance,
    /// The candidate-method profiler (§4.3).
    pub profiler: Profiler,
    /// The connection proxy fronting the database (§3.3).
    pub proxy: Proxy,
    /// Configuration and feature toggles.
    pub config: BeeHiveConfig,
    /// Aggregate statistics.
    pub stats: RuntimeStats,
    plans: HashMap<MethodId, ClosurePlan>,
    mappings: HashMap<u32, MappingTable>,
    monitor_owner: HashMap<Addr, EndpointId>,
    locks_in_transfer: HashSet<Addr>,
    freed_locks: Vec<Addr>,
    next_request: u64,
}

impl ServerRuntime {
    /// A server runtime for `program`, fronting `proxy`'s database.
    pub fn new(
        program: Arc<Program>,
        config: BeeHiveConfig,
        proxy: Proxy,
        cost: CostModel,
    ) -> Self {
        ServerRuntime {
            vm: VmInstance::server(&program, cost),
            program,
            profiler: Profiler::new(),
            proxy,
            config,
            stats: RuntimeStats::default(),
            plans: HashMap::new(),
            mappings: HashMap::new(),
            monitor_owner: HashMap::new(),
            locks_in_transfer: HashSet::new(),
            freed_locks: Vec::new(),
            next_request: 1,
        }
    }

    /// Allocate long-lived shared state in the server's stable space: runs
    /// `f` with `New` directed at the closure space (application init).
    pub fn with_stable_alloc<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> R {
        let prev = self.vm.alloc_target;
        self.vm.alloc_target = Space::Closure;
        let r = f(self);
        self.vm.alloc_target = prev;
        r
    }

    /// Create a database connection object of the (packageable, socket-kind)
    /// class `sock_class`: allocates the object in stable space, opens the
    /// proxied connection and installs the native state.
    ///
    /// # Panics
    ///
    /// Panics if `sock_class` is not declared packageable with
    /// [`PackKind::Socket`].
    pub fn create_connection(&mut self, sock_class: ClassId) -> Addr {
        let spec = self
            .program
            .class(sock_class)
            .packageable
            .expect("connection class must be packageable");
        assert_eq!(
            spec.kind,
            PackKind::Socket,
            "connection class must be a socket"
        );
        let fields = self.program.class(sock_class).field_count as u32;
        let obj = self
            .vm
            .heap
            .alloc_object(sock_class, fields, Space::Closure)
            .expect("closure space is unbounded");
        let conn = self.proxy.connect_server();
        let handle = self.vm.register_native_state(NativeState::Socket {
            proxy_conn_id: conn.0,
        });
        self.vm
            .heap
            .set(obj, spec.handle_slot as u32, Value::I64(handle as i64));
        obj
    }

    /// Fresh request identifier (write-key namespace).
    pub fn next_request_id(&mut self) -> u64 {
        let id = self.next_request;
        self.next_request += 1;
        id
    }

    /// The closure plan for `root` (created minimal on first use).
    pub fn plan_mut(&mut self, root: MethodId) -> &mut ClosurePlan {
        let class = self.program.method(root).class;
        self.plans
            .entry(root)
            .or_insert_with(|| ClosurePlan::minimal(root, class))
    }

    /// Read-only view of a plan, if it exists.
    pub fn plan(&self, root: MethodId) -> Option<&ClosurePlan> {
        self.plans.get(&root)
    }

    /// The mapping table of function `id` (created empty on first use).
    pub fn mapping_mut(&mut self, id: u32) -> &mut MappingTable {
        self.mappings.entry(id).or_default()
    }

    /// Read-only view of function `id`'s mapping table.
    pub fn mapping(&self, id: u32) -> Option<&MappingTable> {
        self.mappings.get(&id)
    }

    /// Move function `from`'s mapping table to `to` (failure recovery onto a
    /// replacement instance, §4.5).
    pub fn transfer_mapping(&mut self, from: u32, to: u32) {
        if let Some(m) = self.mappings.remove(&from) {
            self.mappings.insert(to, m);
        }
    }

    /// Remove a dead instance's mapping table.
    pub fn remove_mapping(&mut self, id: u32) {
        self.mappings.remove(&id);
    }

    /// Install a mapping table for an instance (failure recovery restores
    /// the sync-point table, §4.5).
    pub fn install_mapping(&mut self, id: u32, mapping: MappingTable) {
        self.mappings.insert(id, mapping);
    }

    /// Retarget monitor ownership from a dead instance to its replacement
    /// (failure recovery, §4.5).
    pub fn retarget_monitors(&mut self, from: u32, to: u32) {
        for owner in self.monitor_owner.values_mut() {
            if *owner == EndpointId::Function(from) {
                *owner = EndpointId::Function(to);
            }
        }
    }

    /// Current owner of the monitor of the server object `canonical`.
    pub fn monitor_owner(&self, canonical: Addr) -> EndpointId {
        self.monitor_owner
            .get(&canonical)
            .copied()
            .unwrap_or(EndpointId::Server)
    }

    /// Try to start a monitor hand-off for the lock at `canonical`. The
    /// server serializes hand-offs per lock (Fig. 6: the previous owner
    /// participates in the transfer synchronously), so a second acquirer
    /// must wait until the in-flight transfer completes. Returns `false`
    /// when a transfer is already in progress.
    pub fn begin_lock_transfer(&mut self, canonical: Addr) -> bool {
        self.locks_in_transfer.insert(canonical)
    }

    /// Complete a monitor hand-off started with
    /// [`ServerRuntime::begin_lock_transfer`]. The lock is recorded as
    /// freed so the embedding driver can wake a queued waiter
    /// ([`ServerRuntime::take_freed_locks`]).
    pub fn end_lock_transfer(&mut self, canonical: Addr) {
        if self.locks_in_transfer.remove(&canonical) {
            self.freed_locks.push(canonical);
        }
    }

    /// Locks whose hand-offs completed since the last call (drain to wake
    /// sessions parked on [`SessionStep::AwaitLock`]).
    ///
    /// [`SessionStep::AwaitLock`]: crate::session::SessionStep::AwaitLock
    pub fn take_freed_locks(&mut self) -> Vec<Addr> {
        std::mem::take(&mut self.freed_locks)
    }

    /// Collect the server heap with `roots` (every live server execution,
    /// [`SessionStep::ServerGc`]'s contract) and return the pause, which the
    /// triggering session is charged via
    /// [`crate::session::ServerSession::gc_done`].
    ///
    /// [`SessionStep::ServerGc`]: crate::session::SessionStep::ServerGc
    pub fn collect_server_heap(
        &mut self,
        roots: &mut [&mut beehive_vm::Execution],
    ) -> beehive_vm::Duration {
        self.vm.collect(roots, &mut []).pause
    }

    /// Revoke `peer`'s cached ownership of the lock at server address
    /// `canonical` (the lock is being handed to another endpoint; the
    /// peer must synchronize again before re-entering, §4.2).
    pub fn revoke_peer_monitor(&self, peer: &mut FunctionRuntime, canonical: Addr) {
        if let Some(local) = self.mapping(peer.id).and_then(|m| m.local_of(canonical)) {
            peer.vm.revoke_monitor(local);
        }
    }

    /// Record a monitor hand-off.
    pub fn set_monitor_owner(&mut self, canonical: Addr, owner: EndpointId) {
        match owner {
            EndpointId::Server => {
                self.monitor_owner.remove(&canonical);
                self.vm.grant_monitor(canonical);
            }
            EndpointId::Function(_) => {
                self.monitor_owner.insert(canonical, owner);
                self.vm.revoke_monitor(canonical);
            }
        }
    }

    /// Instantiate the initial closure of `root` on `func` (first dispatch
    /// to a fresh instance): ships planned classes, copies planned objects
    /// (packing native state of packageable classes), installs planned
    /// statics, and builds the mapping table.
    pub fn instantiate_closure(
        &mut self,
        func: &mut FunctionRuntime,
        root: MethodId,
    ) -> ClosureStats {
        let class = self.program.method(root).class;
        let ServerRuntime {
            program,
            vm,
            proxy,
            config,
            plans,
            mappings,
            ..
        } = self;
        let program = Arc::clone(program);
        let plan = plans
            .entry(root)
            .or_insert_with(|| ClosurePlan::minimal(root, class))
            .clone();
        let mapping = mappings.entry(func.id).or_default();

        let mut bytes = 0u64;
        let mut classes = 0u64;
        for &c in &plan.classes {
            if !func.vm.is_loaded(c) {
                func.vm.load_class(c);
                bytes += program.class_bytes(c) as u64;
                classes += 1;
            }
        }

        let include: HashSet<Addr> = plan.objects.iter().copied().collect();
        let pack_ok = config.packageable_enabled;
        let proxy_ok = config.proxy_enabled;
        let func_id = func.id;
        let attached = &mut func.attached;
        let report = copy_to_function(
            vm,
            &mut func.vm,
            mapping,
            &program,
            &include,
            &mut |kind, state, fvm| {
                pack_native_state(
                    kind, state, fvm, proxy, attached, func_id, pack_ok, proxy_ok,
                )
            },
        );

        for &slot in &plan.statics {
            let v = vm.static_value(slot);
            func.vm
                .install_static(slot, translate_value_to_function(v, mapping));
            bytes += 8;
        }

        func.instantiated_for = Some(root);

        let compute = config.closure_base_cost
            + config.closure_per_object_cost * report.objects
            + config.closure_per_class_cost * classes.max(1);
        if beehive_telemetry::enabled() {
            use beehive_telemetry::Arg;
            beehive_telemetry::complete(
                beehive_telemetry::Track::Server,
                "closure:build",
                compute,
                &[
                    ("instance", Arg::UInt(func_id as u64)),
                    ("objects", Arg::UInt(report.objects)),
                    ("classes", Arg::UInt(classes)),
                    ("bytes", Arg::UInt(bytes + report.bytes)),
                ],
            );
        }
        ClosureStats {
            objects: report.objects,
            classes,
            bytes: bytes + report.bytes,
            compute,
        }
    }

    /// Ship one server object to `func` (a data fallback, §4.1). Returns the
    /// transferred byte count.
    ///
    /// # Panics
    ///
    /// Panics if `canonical` is remote-marked.
    pub fn fetch_object_for(&mut self, func: &mut FunctionRuntime, canonical: Addr) -> u64 {
        assert!(!canonical.is_remote(), "fetch by canonical address");
        let ServerRuntime {
            program,
            vm,
            proxy,
            config,
            mappings,
            ..
        } = self;
        let program = Arc::clone(program);
        let mapping = mappings.entry(func.id).or_default();
        let include: HashSet<Addr> = [canonical].into_iter().collect();
        let pack_ok = config.packageable_enabled;
        let proxy_ok = config.proxy_enabled;
        let func_id = func.id;
        let attached = &mut func.attached;
        let report = copy_to_function(
            vm,
            &mut func.vm,
            mapping,
            &program,
            &include,
            &mut |kind, state, fvm| {
                pack_native_state(
                    kind, state, fvm, proxy, attached, func_id, pack_ok, proxy_ok,
                )
            },
        );
        report.bytes
    }

    /// Ship the code of `class` to `func` (a missing-code fallback). Returns
    /// the class-file size.
    pub fn fetch_class_for(&mut self, func: &mut FunctionRuntime, class: ClassId) -> u64 {
        func.vm.load_class(class);
        self.program.class_bytes(class) as u64
    }

    /// Install the current value of a static on `func` (a data fallback).
    /// Returns the transferred byte count.
    pub fn fetch_static_for(
        &mut self,
        func: &mut FunctionRuntime,
        slot: beehive_vm::StaticSlot,
    ) -> u64 {
        let v = self.vm.static_value(slot);
        let mapping = self.mappings.entry(func.id).or_default();
        let tv = translate_value_to_function(v, mapping);
        func.vm.install_static(slot, tv);
        8
    }

    /// Pull `func`'s dirty objects into the server (a synchronization,
    /// §4.2). Returns the canonical addresses of the updated objects and the
    /// apply report.
    pub fn pull_dirty_from(&mut self, func: &mut FunctionRuntime) -> (Vec<Addr>, ApplyReport) {
        let dirty = func.vm.take_dirty();
        let ServerRuntime {
            program,
            vm,
            mappings,
            ..
        } = self;
        let program = Arc::clone(program);
        let mapping = mappings.entry(func.id).or_default();
        let report = apply_dirty_to_server(&func.vm, vm, mapping, &program, &dirty);
        let canonical = dirty.iter().filter_map(|&l| mapping.server_of(l)).collect();
        (canonical, report)
    }

    /// Refresh `func`'s view of recently written server objects plus
    /// `extra` (the lock object at a hand-off). Returns how many objects
    /// were refreshed (the "synchronized objects" of Table 5).
    pub fn push_recent_writes_to(&mut self, func: &mut FunctionRuntime, extra: &[Addr]) -> u64 {
        const MAX_SYNC_OBJECTS: usize = 256;
        let ServerRuntime {
            program,
            vm,
            mappings,
            ..
        } = self;
        let program = Arc::clone(program);
        let mapping = mappings.entry(func.id).or_default();
        let mut objs: Vec<Addr> = extra.to_vec();
        objs.extend(vm.dirty_peek().iter().take(MAX_SYNC_OBJECTS).copied());
        objs.sort_unstable();
        objs.dedup();
        refresh_mapped_objects(vm, &mut func.vm, mapping, &program, &objs)
    }

    /// Execute a fallen-back native on behalf of function `func_id`,
    /// translating its function-local arguments (§3.2's fallback path —
    /// only taken for non-offloadable natives or under the no-packaging
    /// ablation).
    ///
    /// # Panics
    ///
    /// Panics if a reference argument has no server counterpart.
    pub fn execute_native_fallback(
        &mut self,
        func_id: u32,
        native: NativeId,
        args: &[Value],
    ) -> Value {
        let def = self.program.native(native);
        match def.effect {
            NativeEffect::ReflectInvoke => {
                let local = args[0].as_ref().expect("ReflectInvoke takes an object");
                let mapping = self.mappings.entry(func_id).or_default();
                let server_obj = mapping
                    .server_of(local)
                    .expect("fallback argument must be a shared object");
                let class = self.vm.heap.class_of(server_obj);
                let spec: PackSpec = self
                    .program
                    .class(class)
                    .packageable
                    .expect("reflective object class has a pack spec");
                let handle = self
                    .vm
                    .heap
                    .get(server_obj, spec.handle_slot as u32)
                    .as_i64()
                    .expect("handle field");
                match self.vm.native_state(handle as u64) {
                    Some(NativeState::MethodMeta { method }) => Value::I64(method.0 as i64),
                    _ => Value::I64(0),
                }
            }
            NativeEffect::SocketIo => Value::Null,
            NativeEffect::FileAccess => Value::I64(0),
            NativeEffect::PushToken(t) => Value::I64(t),
            NativeEffect::Nop | NativeEffect::ArrayCopy => Value::Null,
        }
    }

    /// Record a completed candidate invocation in the profiler.
    pub fn record_profile(&mut self, root: MethodId, elapsed: beehive_sim::Duration) {
        if self.program.method(root).is_candidate() {
            self.profiler.record(root, elapsed);
        }
    }

    /// Total server-side memory devoted to mapping tables (§5.6 reports
    /// hundreds of KBs per function).
    pub fn mapping_footprint_bytes(&self) -> u64 {
        self.mappings
            .values()
            .map(MappingTable::footprint_bytes)
            .sum()
    }
}

/// Marshal/unmarshal one native state across endpoints (the `packageable`
/// interface of §3.2). Returns the new function-side handle, or `None` when
/// packing is disabled (the COMET-style ablation) so the raw handle is
/// copied and later invocations fall back.
#[allow(clippy::too_many_arguments)]
fn pack_native_state(
    kind: PackKind,
    state: Option<NativeState>,
    func_vm: &mut VmInstance,
    proxy: &mut Proxy,
    attached: &mut HashMap<u64, ConnId>,
    func_id: u32,
    packageable_enabled: bool,
    proxy_enabled: bool,
) -> Option<i64> {
    if !packageable_enabled {
        return None;
    }
    match (kind, state) {
        (PackKind::MethodMeta, Some(NativeState::MethodMeta { method })) => {
            let h = func_vm.register_native_state(NativeState::MethodMeta { method });
            Some(h as i64)
        }
        (PackKind::Socket, Some(NativeState::Socket { proxy_conn_id })) => {
            if !proxy_enabled {
                return None;
            }
            let conn = ConnId(proxy_conn_id);
            let offload = proxy.prepare(conn).ok()?;
            let conn2 = proxy.attach_function(offload, func_id).ok()?;
            attached.insert(offload.0, conn2);
            let h = func_vm.register_native_state(NativeState::Socket {
                proxy_conn_id: offload.0,
            });
            Some(h as i64)
        }
        // Dangling or mismatched server state: copy raw (will fall back).
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_db::Database;
    use beehive_vm::program::ProgramBuilder;
    use beehive_vm::Op;

    fn world() -> (ServerRuntime, FunctionRuntime, MethodId, ClassId, ClassId) {
        let mut pb = ProgramBuilder::new();
        let app = pb.user_class("App", 2, None);
        let sock = pb.jdk_class("SocketImpl", 1);
        pb.make_packageable(
            sock,
            PackSpec {
                handle_slot: 0,
                kind: PackKind::Socket,
                marshalled_bytes: 64,
            },
        );
        let root = pb.method_annotated(app, "handle", 0, 0, vec![Op::Return], Some("@Post"));
        let program = Arc::new(pb.finish());
        let server = ServerRuntime::new(
            Arc::clone(&program),
            BeeHiveConfig::default(),
            Proxy::new(Database::new()),
            CostModel::default(),
        );
        let func = FunctionRuntime::new(0, &program, CostModel::default());
        (server, func, root, app, sock)
    }

    #[test]
    fn create_connection_installs_socket_state() {
        let (mut server, _, _, _, sock) = world();
        let conn = server.create_connection(sock);
        let handle = server.vm.heap.get(conn, 0).as_i64().unwrap() as u64;
        assert!(matches!(
            server.vm.native_state(handle),
            Some(NativeState::Socket { .. })
        ));
    }

    #[test]
    fn minimal_closure_ships_root_class_only() {
        let (mut server, mut func, root, app, _) = world();
        let stats = server.instantiate_closure(&mut func, root);
        assert_eq!(stats.classes, 1);
        assert_eq!(stats.objects, 0);
        assert!(func.vm.is_loaded(app));
        assert_eq!(func.instantiated_for, Some(root));
        assert!(stats.compute > beehive_sim::Duration::ZERO);
    }

    #[test]
    fn refined_plan_ships_objects_and_packs_sockets() {
        let (mut server, mut func, root, app, sock) = world();
        let conn = server.create_connection(sock);
        let shared = server.vm.heap.alloc_object(app, 2, Space::Closure).unwrap();
        server.vm.heap.set(shared, 0, Value::I64(5));
        server.plan_mut(root).note_object(conn);
        server.plan_mut(root).note_object(shared);
        server.plan_mut(root).note_class(sock);

        let stats = server.instantiate_closure(&mut func, root);
        assert_eq!(stats.objects, 2);
        assert_eq!(func.attached.len(), 1, "socket attached through the proxy");
        let mapping = server.mapping(func.id).unwrap();
        let local_conn = mapping.local_of(conn).unwrap();
        let h = func.vm.heap.get(local_conn, 0).as_i64().unwrap() as u64;
        assert!(matches!(
            func.vm.native_state(h),
            Some(NativeState::Socket { .. })
        ));
    }

    #[test]
    fn packaging_disabled_copies_dangling_handles() {
        let (mut server, mut func, root, _, sock) = world();
        server.config = server.config.without_packageable();
        let conn = server.create_connection(sock);
        server.plan_mut(root).note_object(conn);
        server.instantiate_closure(&mut func, root);
        let mapping = server.mapping(func.id).unwrap();
        let local_conn = mapping.local_of(conn).unwrap();
        let h = func.vm.heap.get(local_conn, 0).as_i64().unwrap() as u64;
        assert_eq!(func.vm.native_state(h), None, "handle dangles on purpose");
        assert!(func.attached.is_empty());
    }

    #[test]
    fn fetch_object_maps_and_transfers() {
        let (mut server, mut func, root, app, _) = world();
        server.instantiate_closure(&mut func, root);
        let obj = server.vm.heap.alloc_object(app, 2, Space::Closure).unwrap();
        server.vm.heap.set(obj, 1, Value::I64(11));
        let bytes = server.fetch_object_for(&mut func, obj);
        assert!(bytes >= 24);
        let local = server.mapping(func.id).unwrap().local_of(obj).unwrap();
        assert_eq!(func.vm.heap.get(local, 1), Value::I64(11));
    }

    #[test]
    fn monitor_ownership_round_trip() {
        let (mut server, _, _, app, _) = world();
        let obj = server.vm.heap.alloc_object(app, 2, Space::Closure).unwrap();
        assert_eq!(server.monitor_owner(obj), EndpointId::Server);
        server.set_monitor_owner(obj, EndpointId::Function(2));
        assert_eq!(server.monitor_owner(obj), EndpointId::Function(2));
        assert!(!server.vm.owns_monitor(obj), "server must sync to re-enter");
        server.set_monitor_owner(obj, EndpointId::Server);
        assert_eq!(server.monitor_owner(obj), EndpointId::Server);
        assert!(server.vm.owns_monitor(obj));
    }

    #[test]
    fn pull_dirty_updates_server_state() {
        let (mut server, mut func, root, app, _) = world();
        let shared = server.vm.heap.alloc_object(app, 2, Space::Closure).unwrap();
        server.plan_mut(root).note_object(shared);
        server.instantiate_closure(&mut func, root);
        let local = server.mapping(func.id).unwrap().local_of(shared).unwrap();
        func.vm.heap.set(local, 0, Value::I64(77));
        func.vm.note_write(local);
        let (canonical, report) = server.pull_dirty_from(&mut func);
        assert_eq!(canonical, vec![shared]);
        assert_eq!(report.updated, 1);
        assert_eq!(server.vm.heap.get(shared, 0), Value::I64(77));
    }

    #[test]
    fn push_recent_writes_refreshes_function_view() {
        let (mut server, mut func, root, app, _) = world();
        let shared = server.vm.heap.alloc_object(app, 2, Space::Closure).unwrap();
        server.plan_mut(root).note_object(shared);
        server.instantiate_closure(&mut func, root);
        server.vm.heap.set(shared, 0, Value::I64(123));
        let n = server.push_recent_writes_to(&mut func, &[shared]);
        assert_eq!(n, 1);
        let local = server.mapping(func.id).unwrap().local_of(shared).unwrap();
        assert_eq!(func.vm.heap.get(local, 0), Value::I64(123));
    }

    #[test]
    fn request_ids_are_unique() {
        let (mut server, ..) = world();
        let a = server.next_request_id();
        let b = server.next_request_id();
        assert_ne!(a, b);
    }
}
