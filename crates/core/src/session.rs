//! Request sessions: the fallback protocol as driver-steppable state
//! machines.
//!
//! A session wraps one request's [`Execution`] and translates every
//! interpreter [`Block`] into (a) a sequence of *resource needs* the
//! embedding discrete-event simulation must schedule (server CPU, function
//! CPU, network legs, database service) and (b) a *fix* — the state mutation
//! that services the fallback — applied when those needs drain:
//!
//! * missing class → ship the class file, refine the closure plan (§3.1),
//! * remote reference → ship the object, clear bit 63 at the provenance
//!   (§4.1),
//! * monitor acquire → coordinate through the server, ship dirty objects,
//!   transfer ownership (§4.2, Fig. 6),
//! * database call → direct to the proxy over the packaged connection, or
//!   fall back to the server (§3.3),
//! * native fallback → execute on the server, return the result (§3.2),
//! * GC → collect and charge the pause (§4.4).
//!
//! The driver loop is:
//!
//! ```text
//! loop {
//!     match session.next(&mut server, &mut func) {
//!         SessionStep::Need(n)            => schedule n, come back when done
//!         SessionStep::SyncFromPeer{peer} => pull peer's dirty, deliver, loop
//!         SessionStep::ServerGc           => collect server heap, gc_done(pause)
//!         SessionStep::Finished(v)        => request complete
//!     }
//! }
//! ```

use std::collections::VecDeque;

use beehive_db::WriteKey;
use beehive_profiler as prof;
use beehive_proxy::{ConnId, Origin};
use beehive_sim::Duration;
use beehive_telemetry as tele;
use beehive_vm::interp::{Block, Execution, Outcome, Provenance};
use beehive_vm::natives::NativeState;
use beehive_vm::{Addr, ClassId, EndpointId, MethodId, NativeId, StaticSlot, Value};

use crate::config::NetProfile;
use crate::function::FunctionRuntime;
use crate::recovery::Snapshot;
use crate::server::ServerRuntime;
use crate::stats::SessionStats;

/// Which simulated resource a need occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resource {
    /// The server's CPU pool (contended across requests).
    ServerCpu,
    /// The function instance's CPU (dedicated; the driver scales the
    /// duration by the platform's vCPU share).
    FunctionCpu,
    /// Pure network delay.
    Net,
    /// The database machine.
    Db,
}

/// One resource requirement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Need {
    /// The resource.
    pub resource: Resource,
    /// How long it is occupied.
    pub amount: Duration,
    /// `true` when the need is part of servicing a fallback (Table 5's
    /// fallback overhead).
    pub fallback: bool,
    /// `true` when the need is part of a remote code/data fetch.
    pub fetch: bool,
}

impl Need {
    fn new(resource: Resource, amount: Duration) -> Self {
        Need {
            resource,
            amount,
            fallback: false,
            fetch: false,
        }
    }

    fn fb(mut self) -> Self {
        self.fallback = true;
        self
    }

    fn fetching(mut self) -> Self {
        self.fetch = true;
        self.fallback = true;
        self
    }

    /// The residence-span name of this need: one static string per
    /// (resource, fallback-flag) pair, so tracing the wait allocates nothing
    /// on the hot path.
    pub fn span_name(&self) -> &'static str {
        match (self.resource, self.fallback) {
            (Resource::ServerCpu, false) => "wait:server_cpu",
            (Resource::ServerCpu, true) => "wait:server_cpu:fb",
            (Resource::FunctionCpu, false) => "wait:function_cpu",
            (Resource::FunctionCpu, true) => "wait:function_cpu:fb",
            (Resource::Net, false) => "wait:net",
            (Resource::Net, true) => "wait:net:fb",
            (Resource::Db, false) => "wait:db",
            (Resource::Db, true) => "wait:db:fb",
        }
    }
}

/// What the driver must do next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionStep {
    /// Occupy a resource for a duration, then call `next` again.
    Need(Need),
    /// Pull the dirty set of function `peer` into the server
    /// ([`ServerRuntime::pull_dirty_from`]) and deliver the returned object
    /// list via [`OffloadSession::deliver_peer_objects`], then call `next`.
    /// When `monitor` is set, the hand-off takes that lock away from the
    /// peer: revoke the peer's cached ownership
    /// ([`ServerRuntime::revoke_peer_monitor`]).
    SyncFromPeer {
        /// The previous lock owner.
        peer: u32,
        /// The lock being taken away (server canonical address), if any.
        monitor: Option<Addr>,
    },
    /// Collect the server heap (roots: every live server execution), then
    /// call [`ServerSession::gc_done`] with the pause, then `next`.
    ServerGc,
    /// The lock at this server address has a hand-off in flight (the server
    /// serializes them, Fig. 6). Park the session; when
    /// [`ServerRuntime::take_freed_locks`] reports the lock freed, wake it
    /// by calling `next` again (plus a notification round trip).
    AwaitLock {
        /// The contended lock (server canonical address).
        canonical: Addr,
    },
    /// The request completed with this value. Terminal.
    Finished(Value),
}

#[derive(Clone, Debug)]
enum Pending {
    Need(Need),
    Peer(u32, Option<Addr>),
    Gc,
}

/// The telemetry track of a request (sessions emit on their server-issued
/// request id; the driver uses [`ServerSession::request_id`] /
/// [`OffloadSession::request_id`] to land resource spans on the same track).
fn treq(request: u64) -> tele::Track {
    tele::Track::Request(request)
}

// ---------------------------------------------------------------------------
// Server-side session
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum ServerFix {
    MonitorBegin {
        obj: Addr,
    },
    Db {
        conn: ConnId,
        query: u16,
        arg: i64,
        write: bool,
    },
    Monitor {
        obj: Addr,
    },
    AfterGc,
}

/// A request executing on the server (the non-offloaded path; also the
/// vanilla baseline).
#[derive(Debug)]
pub struct ServerSession {
    exec: Execution,
    root: MethodId,
    request: u64,
    write_seq: u32,
    queue: VecDeque<Pending>,
    fix: Option<ServerFix>,
    done: Option<Value>,
    finished: bool,
    /// Profile-tree position of the bytecode site that last blocked this
    /// request; synthetic cost frames (`[db]`, `[gc]`, `[sync:monitor]`)
    /// attach here. Captured right after each run segment because other
    /// requests interleave on the thread before the fix applies.
    prof_mark: Option<prof::ProfMark>,
    /// Per-request statistics.
    pub stats: SessionStats,
}

impl ServerSession {
    /// Begin a server-side request.
    pub fn start(server: &mut ServerRuntime, root: MethodId, args: Vec<Value>) -> Self {
        let request = server.next_request_id();
        server.stats.requests_local += 1;
        tele::begin(treq(request), "req:server", &[]);
        ServerSession {
            exec: Execution::call(root, args, &server.program),
            root,
            request,
            write_seq: 0,
            queue: VecDeque::new(),
            fix: None,
            done: None,
            finished: false,
            prof_mark: None,
            stats: SessionStats::default(),
        }
    }

    /// The wrapped execution (server GC roots).
    pub fn execution_mut(&mut self) -> &mut Execution {
        &mut self.exec
    }

    /// The server-issued request id (also this request's telemetry track).
    pub fn request_id(&self) -> u64 {
        self.request
    }

    /// Total interpreter CPU time the request consumed (excludes GC pauses
    /// and network/database waiting).
    pub fn total_cpu(&self) -> Duration {
        self.exec.total_cpu()
    }

    /// Deliver the GC pause after a [`SessionStep::ServerGc`].
    pub fn gc_done(&mut self, pause: Duration) {
        self.prof_synth("[gc]", pause);
        self.queue
            .push_front(Pending::Need(Need::new(Resource::ServerCpu, pause)));
    }

    /// Attach a synthetic cost frame at the site that last blocked us.
    fn prof_synth(&mut self, name: &'static str, d: Duration) {
        if let Some(m) = self.prof_mark {
            prof::synthetic(m, name, d);
        }
    }

    /// Advance the session.
    ///
    /// # Panics
    ///
    /// Panics if called after [`SessionStep::Finished`] was returned, or on
    /// blocks that cannot occur on the server (missing code/data).
    pub fn next(&mut self, server: &mut ServerRuntime) -> SessionStep {
        assert!(!self.finished, "session already finished");
        loop {
            if let Some(p) = self.queue.pop_front() {
                match p {
                    Pending::Need(n) => {
                        self.account(n);
                        return SessionStep::Need(n);
                    }
                    Pending::Peer(peer, monitor) => {
                        return SessionStep::SyncFromPeer { peer, monitor }
                    }
                    Pending::Gc => return SessionStep::ServerGc,
                }
            }
            if let Some(fix) = self.fix.take() {
                if let Some(step) = self.apply_fix(server, fix) {
                    return step;
                }
                continue;
            }
            if let Some(v) = self.done {
                self.finished = true;
                server.stats.sessions.absorb(&self.stats);
                server.record_profile(self.root, self.exec.total_cpu());
                tele::end(treq(self.request), "req:server", &[]);
                return SessionStep::Finished(v);
            }

            let program = std::sync::Arc::clone(&server.program);
            let r = self.exec.run(&mut server.vm, &program);
            self.prof_mark = prof::mark();
            if !r.cpu.is_zero() {
                self.queue
                    .push_back(Pending::Need(Need::new(Resource::ServerCpu, r.cpu)));
            }
            match r.outcome {
                Outcome::Done(v) => {
                    self.done = Some(v);
                }
                Outcome::Blocked(Block::Db {
                    query,
                    arg,
                    proxy_conn_id,
                    ..
                }) => {
                    self.stats.db_rounds += 1;
                    let conn = ConnId(
                        proxy_conn_id.expect("server connections always carry native state"),
                    );
                    let def = server.proxy.db().query_def(query);
                    let svc = def.service_time();
                    let write = def.kind.is_write();
                    let net = server.config.net.server_db;
                    self.prof_synth("[db]", net + svc + net);
                    self.queue
                        .push_back(Pending::Need(Need::new(Resource::Net, net)));
                    self.queue
                        .push_back(Pending::Need(Need::new(Resource::Db, svc)));
                    self.queue
                        .push_back(Pending::Need(Need::new(Resource::Net, net)));
                    self.fix = Some(ServerFix::Db {
                        conn,
                        query,
                        arg,
                        write,
                    });
                }
                Outcome::Blocked(Block::GcNeeded { .. }) => {
                    self.queue.push_back(Pending::Gc);
                    self.fix = Some(ServerFix::AfterGc);
                }
                Outcome::Blocked(Block::MonitorAcquire { obj }) => {
                    self.fix = Some(ServerFix::MonitorBegin { obj });
                }
                Outcome::Blocked(other) => {
                    unreachable!("impossible server-side block: {other:?}")
                }
            }
        }
    }

    fn apply_fix(&mut self, server: &mut ServerRuntime, fix: ServerFix) -> Option<SessionStep> {
        match fix {
            ServerFix::MonitorBegin { obj } => {
                // The server blocks only when a function holds the lock.
                let owner = server.monitor_owner(obj);
                let peer = match owner {
                    EndpointId::Function(f) => f,
                    EndpointId::Server => {
                        // Ownership returned while we waited: proceed.
                        server.set_monitor_owner(obj, EndpointId::Server);
                        self.exec.resume();
                        return None;
                    }
                };
                if !server.begin_lock_transfer(obj) {
                    self.fix = Some(ServerFix::MonitorBegin { obj });
                    tele::instant(treq(self.request), "sync:lock_wait", &[]);
                    return Some(SessionStep::AwaitLock { canonical: obj });
                }
                self.stats.fallbacks_sync += 1;
                if tele::enabled() {
                    tele::begin(
                        treq(self.request),
                        "sync:monitor",
                        &[("prev_owner", tele::Arg::UInt(peer as u64))],
                    );
                }
                let net = server.config.net.function_server;
                self.prof_synth("[sync:monitor]", net + server.config.sync_base_cost + net);
                self.queue
                    .push_back(Pending::Need(Need::new(Resource::Net, net).fb()));
                self.queue.push_back(Pending::Peer(peer, Some(obj)));
                self.queue.push_back(Pending::Need(
                    Need::new(Resource::ServerCpu, server.config.sync_base_cost).fb(),
                ));
                self.queue
                    .push_back(Pending::Need(Need::new(Resource::Net, net).fb()));
                self.fix = Some(ServerFix::Monitor { obj });
            }
            ServerFix::Db {
                conn,
                query,
                arg,
                write,
            } => {
                let key = if write {
                    let k = WriteKey {
                        request: self.request,
                        seq: self.write_seq,
                    };
                    self.write_seq += 1;
                    Some(k)
                } else {
                    None
                };
                let out = server
                    .proxy
                    .execute(conn, Origin::Server, query, arg, key)
                    .expect("server connection is registered");
                self.exec.resume_with(Value::I64(out.result));
            }
            ServerFix::Monitor { obj } => {
                server.set_monitor_owner(obj, EndpointId::Server);
                server.end_lock_transfer(obj);
                tele::end(treq(self.request), "sync:monitor", &[]);
                self.exec.resume();
            }
            ServerFix::AfterGc => {
                self.exec.resume();
            }
        }
        None
    }

    fn account(&mut self, n: Need) {
        if n.fallback {
            self.stats.fallback_overhead += n.amount;
        }
        if n.fetch {
            self.stats.fetch_overhead += n.amount;
        }
    }
}

// ---------------------------------------------------------------------------
// Offloaded session
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum DbRoute {
    Proxy(ConnId),
    ServerFallback(ConnId),
}

#[derive(Debug)]
enum OffloadFix {
    Resume,
    /// Phase 1 of a monitor hand-off: claim the per-lock transfer slot once
    /// all preceding work drained (claiming at block time would hold the
    /// slot hostage to the holder's own queued CPU segments).
    MonitorBegin {
        obj: Addr,
        canonical: Addr,
    },
    FetchClass(ClassId),
    FetchObject {
        canonical: Addr,
        prov: Provenance,
    },
    FetchStatic(StaticSlot),
    Monitor {
        obj: Addr,
        canonical: Addr,
        prev: EndpointId,
    },
    Volatile(StaticSlot),
    Db {
        query: u16,
        arg: i64,
        write: bool,
        route: DbRoute,
    },
    Native {
        native: NativeId,
        args: Vec<Value>,
    },
    Complete,
}

/// A request offloaded to a FaaS function (§3.1), including shadow mode
/// (§3.4).
#[derive(Debug)]
pub struct OffloadSession {
    exec: Execution,
    root: MethodId,
    args: Vec<Value>,
    /// The function instance currently executing this session.
    pub function_id: u32,
    request: u64,
    write_seq: u32,
    shadow: bool,
    net: NetProfile,
    queue: VecDeque<Pending>,
    fix: Option<OffloadFix>,
    done: Option<Value>,
    pending_result: Option<Value>,
    finished: bool,
    peer_objects: Vec<Addr>,
    /// Monitors acquired while shadowing, released (and returned to the
    /// server) at completion so the shadow leaves no ownership traces.
    shadow_monitors: Vec<(Addr, Addr)>,
    /// Profile-tree position of the bytecode site that last blocked this
    /// request (see [`ServerSession`]'s field of the same name).
    prof_mark: Option<prof::ProfMark>,
    snapshot: Option<Box<Snapshot>>,
    /// Per-request statistics.
    pub stats: SessionStats,
}

impl OffloadSession {
    /// Dispatch `root(args)` to `func`.
    ///
    /// If the instance has no closure for `root` yet, the initial closure is
    /// instantiated and its transfer queued; `overlap_boot` skips charging
    /// the server-side closure computation (it overlaps the platform cold
    /// boot, §5.6). `shadow` runs the request as a shadow execution: proxy
    /// writes suppressed, no memory side effects shipped back (§3.4).
    pub fn start(
        server: &mut ServerRuntime,
        func: &mut FunctionRuntime,
        root: MethodId,
        args: Vec<Value>,
        shadow: bool,
        net: NetProfile,
        overlap_boot: bool,
    ) -> Self {
        Self::start_with_dispatch(
            server,
            func,
            root,
            args,
            shadow,
            net,
            overlap_boot,
            Duration::ZERO,
        )
    }

    /// Like [`OffloadSession::start`], but also charges `dispatch_cost` of
    /// server CPU for accepting the user request, forwarding it and relaying
    /// the result. This per-request server work is what ultimately caps
    /// BeeHive's throughput at "the centralized server" (§5.3).
    #[allow(clippy::too_many_arguments)]
    pub fn start_with_dispatch(
        server: &mut ServerRuntime,
        func: &mut FunctionRuntime,
        root: MethodId,
        args: Vec<Value>,
        shadow: bool,
        net: NetProfile,
        overlap_boot: bool,
        dispatch_cost: Duration,
    ) -> Self {
        let request = server.next_request_id();
        server.stats.requests_offloaded += 1;
        // Tag the instance's lane (`faas:primary` vs `faas:shadow`) for the
        // call-tree profiler before any interpreter segment runs.
        func.vm.set_shadow(shadow);
        let warm = func.instantiated_for == Some(root);
        let mut queue = VecDeque::new();
        let mut stats = SessionStats::default();
        if !dispatch_cost.is_zero() {
            queue.push_back(Pending::Need(Need::new(Resource::ServerCpu, dispatch_cost)));
        }
        if !net.dispatch_latency.is_zero() {
            // The platform's per-invocation path (controller/invoker on
            // OpenWhisk, the invoke API on Lambda).
            queue.push_back(Pending::Need(Need::new(
                Resource::Net,
                net.dispatch_latency,
            )));
        }
        if func.instantiated_for != Some(root) {
            let cs = server.instantiate_closure(func, root);
            stats.closure_bytes = cs.bytes;
            stats.closure_objects = cs.objects;
            stats.closure_classes = cs.classes;
            stats.closure_compute = cs.compute;
            if !overlap_boot {
                queue.push_back(Pending::Need(Need::new(Resource::ServerCpu, cs.compute)));
            }
            queue.push_back(Pending::Need(Need::new(
                Resource::Net,
                net.function_server + net.transfer(cs.bytes),
            )));
        } else {
            // Warm dispatch: forward the arguments only.
            queue.push_back(Pending::Need(Need::new(
                Resource::Net,
                net.function_server + net.transfer(128),
            )));
        }
        if shadow {
            server.proxy.shadow_begin(func.id);
            server.stats.shadows += 1;
        }
        if tele::enabled() {
            tele::begin(
                treq(request),
                if shadow { "req:shadow" } else { "req:offload" },
                &[
                    ("instance", tele::Arg::UInt(func.id as u64)),
                    ("warm", tele::Arg::Bool(warm)),
                ],
            );
        }
        OffloadSession {
            exec: Execution::call(root, args.clone(), &server.program),
            root,
            args,
            function_id: func.id,
            request,
            write_seq: 0,
            shadow,
            net,
            queue,
            fix: None,
            done: None,
            pending_result: None,
            finished: false,
            peer_objects: Vec::new(),
            shadow_monitors: Vec::new(),
            prof_mark: None,
            snapshot: None,
            stats,
        }
    }

    /// `true` while this is a shadow execution.
    pub fn is_shadow(&self) -> bool {
        self.shadow
    }

    /// The server-issued request id (also this request's telemetry track).
    pub fn request_id(&self) -> u64 {
        self.request
    }

    /// `true` once this request has issued database write-journal keys.
    ///
    /// Gates graceful degradation after a crash (§4.5): re-running such a
    /// request on the server under a fresh request id would escape the
    /// exactly-once journal, so the driver must keep retrying instead.
    pub fn committed_writes(&self) -> bool {
        self.write_seq > 0
    }

    /// The request's entry method.
    pub fn root(&self) -> MethodId {
        self.root
    }

    /// The request's original arguments (for re-dispatch on degradation).
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// Abandon the session after its instance died *without* recovering it
    /// (shadow warm-ups, or degradation to server execution): release any
    /// in-flight lock transfer and drop the dead instance's mapping-table
    /// entry so later acquirers don't park on it forever.
    pub fn abandon(&mut self, server: &mut ServerRuntime) {
        self.queue.clear();
        self.peer_objects.clear();
        if let Some(OffloadFix::Monitor { canonical, .. }) = self.fix.take() {
            server.end_lock_transfer(canonical);
        }
        if self.shadow {
            server.proxy.shadow_end(self.function_id);
        }
        server.remove_mapping(self.function_id);
    }

    fn span_name(&self) -> &'static str {
        if self.shadow {
            "req:shadow"
        } else {
            "req:offload"
        }
    }

    /// Deliver the object list returned by
    /// [`ServerRuntime::pull_dirty_from`] after a
    /// [`SessionStep::SyncFromPeer`].
    pub fn deliver_peer_objects(&mut self, objects: Vec<Addr>) {
        self.peer_objects = objects;
    }

    /// Advance the session.
    ///
    /// # Panics
    ///
    /// Panics if called after [`SessionStep::Finished`], or if `func` is not
    /// the instance this session was started (or recovered) on.
    pub fn next(&mut self, server: &mut ServerRuntime, func: &mut FunctionRuntime) -> SessionStep {
        assert!(!self.finished, "session already finished");
        assert_eq!(
            func.id, self.function_id,
            "session stepped on wrong instance"
        );
        loop {
            if let Some(p) = self.queue.pop_front() {
                match p {
                    Pending::Need(n) => {
                        self.account(n);
                        return SessionStep::Need(n);
                    }
                    Pending::Peer(peer, monitor) => {
                        return SessionStep::SyncFromPeer { peer, monitor }
                    }
                    Pending::Gc => unreachable!("function GC is handled inline"),
                }
            }
            if let Some(fix) = self.fix.take() {
                if let Some(step) = self.apply_fix(server, func, fix) {
                    return step;
                }
                continue;
            }
            if let Some(v) = self.done {
                self.finished = true;
                server.stats.sessions.absorb(&self.stats);
                tele::end(treq(self.request), self.span_name(), &[]);
                return SessionStep::Finished(v);
            }

            let program = std::sync::Arc::clone(&server.program);
            let r = self.exec.run(&mut func.vm, &program);
            self.prof_mark = prof::mark();
            if !r.cpu.is_zero() {
                self.queue
                    .push_back(Pending::Need(Need::new(Resource::FunctionCpu, r.cpu)));
            }
            let f_s = self.net.function_server;
            match r.outcome {
                Outcome::Done(v) => {
                    let dirty_estimate = 256 + 64 * func.vm.dirty_len() as u64;
                    self.queue.push_back(Pending::Need(Need::new(
                        Resource::Net,
                        f_s + self.net.transfer(dirty_estimate),
                    )));
                    // `done` is only set once the Complete fix has applied
                    // (shipping the dirty set / ending shadow mode).
                    self.pending_result = Some(v);
                    self.fix = Some(OffloadFix::Complete);
                }
                Outcome::Blocked(Block::MissingClass { class }) => {
                    self.stats.fallbacks_code += 1;
                    if tele::enabled() {
                        tele::begin(
                            treq(self.request),
                            "fallback:code",
                            &[("class", tele::Arg::UInt(class.0 as u64))],
                        );
                    }
                    let bytes = program.class_bytes(class) as u64;
                    self.fallback_round_trip(server, self.net.transfer(bytes), "[fallback:code]");
                    self.fix = Some(OffloadFix::FetchClass(class));
                }
                Outcome::Blocked(Block::RemoteRef { addr, prov }) => {
                    self.stats.fallbacks_data += 1;
                    tele::begin(treq(self.request), "fallback:data", &[]);
                    self.fallback_round_trip(server, self.net.transfer(256), "[fallback:data]");
                    self.fix = Some(OffloadFix::FetchObject {
                        canonical: addr.to_local(),
                        prov,
                    });
                }
                Outcome::Blocked(Block::RemoteStatic { slot }) => {
                    self.stats.fallbacks_data += 1;
                    tele::begin(treq(self.request), "fallback:static", &[]);
                    self.fallback_round_trip(server, Duration::ZERO, "[fallback:static]");
                    self.fix = Some(OffloadFix::FetchStatic(slot));
                }
                Outcome::Blocked(Block::MonitorAcquire { obj }) => {
                    let canonical = server.mapping(func.id).and_then(|m| m.server_of(obj));
                    let Some(canonical) = canonical else {
                        // Function-private object: grant locally, no sync.
                        func.vm.grant_monitor(obj);
                        self.exec.resume();
                        continue;
                    };
                    self.fix = Some(OffloadFix::MonitorBegin { obj, canonical });
                }
                Outcome::Blocked(Block::VolatileSync { slot, .. }) => {
                    self.stats.fallbacks_sync += 1;
                    tele::begin(treq(self.request), "sync:volatile", &[]);
                    self.prof_synth("[sync:volatile]", f_s + server.config.sync_base_cost + f_s);
                    self.queue
                        .push_back(Pending::Need(Need::new(Resource::Net, f_s).fb()));
                    self.queue.push_back(Pending::Need(
                        Need::new(Resource::ServerCpu, server.config.sync_base_cost).fb(),
                    ));
                    self.queue
                        .push_back(Pending::Need(Need::new(Resource::Net, f_s).fb()));
                    self.fix = Some(OffloadFix::Volatile(slot));
                }
                Outcome::Blocked(Block::Db {
                    query,
                    arg,
                    proxy_conn_id,
                    conn,
                }) => {
                    self.stats.db_rounds += 1;
                    let def = server.proxy.db().query_def(query);
                    let svc = def.service_time();
                    let write = def.kind.is_write();
                    let direct = server.config.proxy_enabled;
                    match proxy_conn_id.filter(|_| direct) {
                        Some(offload_id) => {
                            let conn_id = func
                                .connection(offload_id)
                                .expect("packaged socket was attached at closure time");
                            let f_db = self.net.function_db;
                            self.prof_synth("[db:proxy]", f_db + svc + f_db);
                            self.queue
                                .push_back(Pending::Need(Need::new(Resource::Net, f_db)));
                            self.queue
                                .push_back(Pending::Need(Need::new(Resource::Db, svc)));
                            self.queue
                                .push_back(Pending::Need(Need::new(Resource::Net, f_db)));
                            self.fix = Some(OffloadFix::Db {
                                query,
                                arg,
                                write,
                                route: DbRoute::Proxy(conn_id),
                            });
                        }
                        None => {
                            // Connection not packaged (or proxy disabled):
                            // fall back through the server.
                            self.stats.fallbacks_db += 1;
                            if tele::enabled() {
                                tele::begin(
                                    treq(self.request),
                                    "fallback:db",
                                    &[("query", tele::Arg::UInt(query as u64))],
                                );
                            }
                            let server_conn = server
                                .mapping(func.id)
                                .and_then(|m| m.server_of(conn))
                                .expect("connection object is shared");
                            let handle = server
                                .vm
                                .heap
                                .get(
                                    server_conn,
                                    server
                                        .program
                                        .class(server.vm.heap.class_of(server_conn))
                                        .packageable
                                        .expect("socket class")
                                        .handle_slot as u32,
                                )
                                .as_i64()
                                .expect("handle");
                            let conn_id = match server.vm.native_state(handle as u64) {
                                Some(NativeState::Socket { proxy_conn_id }) => {
                                    ConnId(*proxy_conn_id)
                                }
                                other => panic!("server socket state missing: {other:?}"),
                            };
                            let s_db = self.net.server_db;
                            self.prof_synth(
                                "[db:fallback]",
                                f_s + server.config.fallback_handle_cost + s_db + svc + s_db + f_s,
                            );
                            self.queue
                                .push_back(Pending::Need(Need::new(Resource::Net, f_s).fb()));
                            self.queue.push_back(Pending::Need(
                                Need::new(Resource::ServerCpu, server.config.fallback_handle_cost)
                                    .fb(),
                            ));
                            self.queue
                                .push_back(Pending::Need(Need::new(Resource::Net, s_db).fb()));
                            self.queue
                                .push_back(Pending::Need(Need::new(Resource::Db, svc)));
                            self.queue
                                .push_back(Pending::Need(Need::new(Resource::Net, s_db).fb()));
                            self.queue
                                .push_back(Pending::Need(Need::new(Resource::Net, f_s).fb()));
                            self.fix = Some(OffloadFix::Db {
                                query,
                                arg,
                                write,
                                route: DbRoute::ServerFallback(conn_id),
                            });
                        }
                    }
                }
                Outcome::Blocked(Block::NativeFallback { native, args }) => {
                    self.stats.fallbacks_native += 1;
                    if tele::enabled() {
                        tele::begin(
                            treq(self.request),
                            "fallback:native",
                            &[("native", tele::Arg::UInt(native.0 as u64))],
                        );
                    }
                    let cost = server.program.native(native).cost;
                    self.prof_synth(
                        "[fallback:native]",
                        f_s + server.config.fallback_handle_cost + cost + f_s,
                    );
                    self.queue
                        .push_back(Pending::Need(Need::new(Resource::Net, f_s).fb()));
                    self.queue.push_back(Pending::Need(
                        Need::new(
                            Resource::ServerCpu,
                            server.config.fallback_handle_cost + cost,
                        )
                        .fb(),
                    ));
                    self.queue
                        .push_back(Pending::Need(Need::new(Resource::Net, f_s).fb()));
                    self.fix = Some(OffloadFix::Native { native, args });
                }
                Outcome::Blocked(Block::GcNeeded { .. }) => {
                    let pause = func.vm.collect(&mut [&mut self.exec], &mut []).pause;
                    self.prof_synth("[gc]", pause);
                    self.queue
                        .push_back(Pending::Need(Need::new(Resource::FunctionCpu, pause)));
                    self.fix = Some(OffloadFix::Resume);
                }
            }
        }
    }

    fn fallback_round_trip(
        &mut self,
        server: &ServerRuntime,
        extra_transfer: Duration,
        synth: &'static str,
    ) {
        let f_s = self.net.function_server;
        self.prof_synth(
            synth,
            f_s + server.config.fallback_handle_cost + f_s + extra_transfer,
        );
        self.queue
            .push_back(Pending::Need(Need::new(Resource::Net, f_s).fetching()));
        self.queue.push_back(Pending::Need(
            Need::new(Resource::ServerCpu, server.config.fallback_handle_cost).fetching(),
        ));
        self.queue.push_back(Pending::Need(
            Need::new(Resource::Net, f_s + extra_transfer).fetching(),
        ));
    }

    /// Attach a synthetic cost frame at the site that last blocked us.
    fn prof_synth(&mut self, name: &'static str, d: Duration) {
        if let Some(m) = self.prof_mark {
            prof::synthetic(m, name, d);
        }
    }

    fn apply_fix(
        &mut self,
        server: &mut ServerRuntime,
        func: &mut FunctionRuntime,
        fix: OffloadFix,
    ) -> Option<SessionStep> {
        match fix {
            OffloadFix::Resume => self.exec.resume(),
            OffloadFix::MonitorBegin { obj, canonical } => {
                if !server.begin_lock_transfer(canonical) {
                    // Hand-off in flight: park until the driver wakes us.
                    self.fix = Some(OffloadFix::MonitorBegin { obj, canonical });
                    tele::instant(treq(self.request), "sync:lock_wait", &[]);
                    return Some(SessionStep::AwaitLock { canonical });
                }
                let prev = server.monitor_owner(canonical);
                self.stats.fallbacks_sync += 1;
                if tele::enabled() {
                    let prev_arg = match prev {
                        EndpointId::Server => -1i64,
                        EndpointId::Function(f) => f as i64,
                    };
                    tele::begin(
                        treq(self.request),
                        "sync:monitor",
                        &[("prev_owner", tele::Arg::Int(prev_arg))],
                    );
                }
                let f_s = self.net.function_server;
                let mut sync_cost = f_s + server.config.sync_base_cost + f_s;
                self.queue
                    .push_back(Pending::Need(Need::new(Resource::Net, f_s).fb()));
                if let EndpointId::Function(p) = prev {
                    if p != func.id {
                        sync_cost += f_s;
                        self.queue.push_back(Pending::Peer(p, Some(canonical)));
                        self.queue
                            .push_back(Pending::Need(Need::new(Resource::Net, f_s).fb()));
                    }
                }
                self.prof_synth("[sync:monitor]", sync_cost);
                self.queue.push_back(Pending::Need(
                    Need::new(Resource::ServerCpu, server.config.sync_base_cost).fb(),
                ));
                self.queue
                    .push_back(Pending::Need(Need::new(Resource::Net, f_s).fb()));
                self.fix = Some(OffloadFix::Monitor {
                    obj,
                    canonical,
                    prev,
                });
            }
            OffloadFix::FetchClass(class) => {
                server.fetch_class_for(func, class);
                server.plan_mut(self.root).note_class(class);
                if tele::enabled() {
                    tele::end(treq(self.request), "fallback:code", &[]);
                    tele::instant(
                        treq(self.request),
                        "closure:refine",
                        &[("kind", tele::Arg::Str("class"))],
                    );
                }
                self.exec.resume();
            }
            OffloadFix::FetchObject { canonical, prov } => {
                server.fetch_object_for(func, canonical);
                server.plan_mut(self.root).note_object(canonical);
                let local = server
                    .mapping(func.id)
                    .and_then(|m| m.local_of(canonical))
                    .expect("object was just fetched");
                match prov {
                    Provenance::Field { obj, slot } => {
                        func.vm.heap.set(obj, slot, Value::Ref(local));
                    }
                    Provenance::ArrayElem { obj, idx } => {
                        func.vm.heap.set(obj, idx, Value::Ref(local));
                    }
                    Provenance::Local { frame, slot } => {
                        *self.exec.local_mut(frame, slot) = Value::Ref(local);
                    }
                    Provenance::Static { slot } => {
                        func.vm.install_static(slot, Value::Ref(local));
                    }
                }
                if tele::enabled() {
                    tele::end(treq(self.request), "fallback:data", &[]);
                    tele::instant(
                        treq(self.request),
                        "closure:refine",
                        &[("kind", tele::Arg::Str("object"))],
                    );
                }
                self.exec.resume();
            }
            OffloadFix::FetchStatic(slot) => {
                server.fetch_static_for(func, slot);
                server.plan_mut(self.root).note_static(slot);
                if tele::enabled() {
                    tele::end(treq(self.request), "fallback:static", &[]);
                    tele::instant(
                        treq(self.request),
                        "closure:refine",
                        &[("kind", tele::Arg::Str("static"))],
                    );
                }
                self.exec.resume();
            }
            OffloadFix::Monitor {
                obj,
                canonical,
                prev,
            } => {
                // Bring the acquirer up to date: the lock object itself plus
                // whatever the previous owner published.
                let mut extra = vec![canonical];
                if matches!(prev, EndpointId::Function(_)) {
                    extra.extend(std::mem::take(&mut self.peer_objects));
                }
                let n = server.push_recent_writes_to(func, &extra);
                self.stats.synchronized_objects += n;
                if tele::enabled() {
                    // The monitor hand-off is complete; `dirty` is the size
                    // of the synchronized dirty set shipped with the lock.
                    tele::end(
                        treq(self.request),
                        "sync:monitor",
                        &[("dirty", tele::Arg::UInt(n))],
                    );
                }
                server.set_monitor_owner(canonical, EndpointId::Function(func.id));
                server.end_lock_transfer(canonical);
                func.vm.grant_monitor(obj);
                if self.shadow {
                    self.shadow_monitors.push((obj, canonical));
                }
                self.exec.resume();
                self.maybe_snapshot(server, func);
            }
            OffloadFix::Volatile(slot) => {
                let (objs, _) = server.pull_dirty_from(func);
                self.stats.synchronized_objects += objs.len() as u64;
                if tele::enabled() {
                    tele::end(
                        treq(self.request),
                        "sync:volatile",
                        &[("dirty", tele::Arg::UInt(objs.len() as u64))],
                    );
                }
                server.fetch_static_for(func, slot);
                self.exec.grant_sync_permit();
                self.exec.resume();
                self.maybe_snapshot(server, func);
            }
            OffloadFix::Db {
                query,
                arg,
                write,
                route,
            } => {
                let key = if write && !self.shadow {
                    let k = WriteKey {
                        request: self.request,
                        seq: self.write_seq,
                    };
                    self.write_seq += 1;
                    Some(k)
                } else {
                    None
                };
                let fell_back = matches!(route, DbRoute::ServerFallback(_));
                let conn = match route {
                    DbRoute::Proxy(c) | DbRoute::ServerFallback(c) => c,
                };
                let out = server
                    .proxy
                    .execute(conn, Origin::Function(func.id), query, arg, key)
                    .expect("connection is registered with the proxy");
                if fell_back && tele::enabled() {
                    tele::end(treq(self.request), "fallback:db", &[]);
                }
                self.exec.resume_with(Value::I64(out.result));
            }
            OffloadFix::Native { native, args } => {
                let v = server.execute_native_fallback(func.id, native, &args);
                tele::end(treq(self.request), "fallback:native", &[]);
                self.exec.resume_with(v);
            }
            OffloadFix::Complete => {
                if self.shadow {
                    server.proxy.shadow_end(func.id);
                    // "When the shadow execution finishes, the warm-up phase
                    // is passed" (§3.4): the instance's JIT state is hot for
                    // the real requests that follow.
                    let program = std::sync::Arc::clone(&server.program);
                    func.vm.prewarm_all_methods(&program);
                    // Shadow executions leave no memory side effects (§3.4):
                    // the dirty list is dropped rather than shipped, the
                    // shadow's local mutations of *shared* objects are rolled
                    // back from the server's values, and any monitors it
                    // acquired return to the server.
                    let dirty = func.vm.take_dirty();
                    let canon: Vec<Addr> = {
                        let mapping = server.mapping(func.id);
                        dirty
                            .iter()
                            .filter_map(|&l| mapping.and_then(|m| m.server_of(l)))
                            .collect()
                    };
                    server.push_recent_writes_to(func, &canon);
                    for (obj, canonical) in std::mem::take(&mut self.shadow_monitors) {
                        func.vm.revoke_monitor(obj);
                        // Return the lock to the server only if this shadow
                        // still holds it — it may have been handed onward to
                        // a real request already, and clobbering that record
                        // would leave the current owner's cached ownership
                        // dangling.
                        if server.monitor_owner(canonical) == EndpointId::Function(func.id) {
                            server.set_monitor_owner(canonical, EndpointId::Server);
                        }
                    }
                } else {
                    let (_, report) = server.pull_dirty_from(func);
                    self.stats.completion_dirty = report.updated;
                }
                self.done = self.pending_result.take();
                assert!(self.done.is_some(), "completion without a result");
            }
        }
        None
    }

    fn maybe_snapshot(&mut self, server: &ServerRuntime, func: &FunctionRuntime) {
        if !server.config.recovery_enabled {
            return;
        }
        let mapping = server.mapping(func.id).cloned().unwrap_or_default();
        self.snapshot = Some(Box::new(Snapshot::capture(
            &self.exec,
            func,
            self.root,
            self.write_seq,
            mapping,
        )));
        self.stats.snapshots += 1;
        // The wire cost of the snapshot: stack + referenced objects
        // ("several KBs", §4.5).
        let bytes = self.exec.stack_bytes() + 64 * func.vm.dirty_len() as u64;
        tele::instant(
            treq(self.request),
            "snapshot",
            &[("bytes", tele::Arg::UInt(bytes))],
        );
        self.queue.push_back(Pending::Need(
            Need::new(
                Resource::Net,
                self.net.function_server + self.net.transfer(bytes),
            )
            .fb(),
        ));
    }

    /// Recover after the executing instance died (§4.5): resume from the
    /// last synchronization snapshot on `replacement`, or re-dispatch from
    /// scratch when no synchronization had happened yet.
    ///
    /// The driver must have acquired `replacement` from the platform; the
    /// proxy attachments and mapping table follow the session.
    pub fn recover(
        &mut self,
        server: &mut ServerRuntime,
        replacement: &mut FunctionRuntime,
    ) -> SessionStep {
        self.stats.recoveries += 1;
        if tele::enabled() {
            tele::instant(
                treq(self.request),
                "recovery",
                &[
                    ("from", tele::Arg::UInt(self.function_id as u64)),
                    ("to", tele::Arg::UInt(replacement.id as u64)),
                    ("snapshot", tele::Arg::Bool(self.snapshot.is_some())),
                ],
            );
        }
        self.queue.clear();
        self.peer_objects.clear();
        if let Some(OffloadFix::Monitor { canonical, .. }) = self.fix.take() {
            server.end_lock_transfer(canonical);
        }
        self.fix = None;
        let old_id = self.function_id;
        let f_s = self.net.function_server;
        match self.snapshot.take() {
            Some(snap) => {
                let bytes = snap.exec.stack_bytes();
                let seq = snap.write_seq;
                snap.restore_into(replacement);
                self.exec = snap.exec.clone();
                self.write_seq = seq;
                // Roll the mapping table back to the sync point alongside
                // the heap.
                server.remove_mapping(old_id);
                server.install_mapping(replacement.id, snap.mapping.clone());
                server.retarget_monitors(old_id, replacement.id);
                // Re-attach proxied connections under the new identity.
                for (&offload, _) in replacement.attached.clone().iter() {
                    if let Ok(c) = server
                        .proxy
                        .attach_function(beehive_proxy::OffloadId(offload), replacement.id)
                    {
                        replacement.attached.insert(offload, c);
                    }
                }
                let mapping = server.mapping(replacement.id).cloned().unwrap_or_default();
                self.snapshot = Some(Box::new(Snapshot::capture(
                    &self.exec,
                    replacement,
                    self.root,
                    self.write_seq,
                    mapping,
                )));
                self.prof_synth("[recovery]", f_s + self.net.transfer(bytes));
                self.queue.push_back(Pending::Need(
                    Need::new(Resource::Net, f_s + self.net.transfer(bytes)).fb(),
                ));
            }
            None => {
                // Nothing was visible yet: re-dispatch the whole request.
                let cs = server.instantiate_closure(replacement, self.root);
                self.exec = Execution::call(self.root, self.args.clone(), &server.program);
                self.write_seq = 0;
                self.prof_synth("[recovery]", cs.compute + f_s + self.net.transfer(cs.bytes));
                self.queue.push_back(Pending::Need(
                    Need::new(Resource::ServerCpu, cs.compute).fb(),
                ));
                self.queue.push_back(Pending::Need(
                    Need::new(Resource::Net, f_s + self.net.transfer(cs.bytes)).fb(),
                ));
            }
        }
        self.function_id = replacement.id;
        SessionStep::Need(match self.queue.pop_front() {
            Some(Pending::Need(n)) => {
                self.account(n);
                n
            }
            _ => unreachable!("recovery queues at least one need"),
        })
    }

    fn account(&mut self, n: Need) {
        if n.fallback {
            self.stats.fallback_overhead += n.amount;
        }
        if n.fetch {
            self.stats.fetch_overhead += n.amount;
        }
    }
}
