//! Fallback and session statistics (the raw material of Table 5 and §5.6).

use beehive_sim::Duration;

/// Per-request (per-session) statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Missing-code fallbacks (class fetches).
    pub fallbacks_code: u64,
    /// Missing-data fallbacks (object fetches, including statics).
    pub fallbacks_data: u64,
    /// Synchronization fallbacks (monitor hand-offs, volatile syncs).
    pub fallbacks_sync: u64,
    /// Native-method fallbacks.
    pub fallbacks_native: u64,
    /// Database round trips that had to fall back to the server (connection
    /// not packaged / proxy disabled).
    pub fallbacks_db: u64,
    /// Wall time spent on fallback round trips (network + server handling).
    pub fallback_overhead: Duration,
    /// Wall time spent fetching remote code/data specifically.
    pub fetch_overhead: Duration,
    /// Objects shipped at synchronization points.
    pub synchronized_objects: u64,
    /// Database round trips executed (either directly via the proxy or by
    /// fallback).
    pub db_rounds: u64,
    /// Closure transfer size (first dispatch on a fresh instance).
    pub closure_bytes: u64,
    /// Objects in the initial closure.
    pub closure_objects: u64,
    /// Classes in the initial closure.
    pub closure_classes: u64,
    /// Server CPU time spent computing the initial closure.
    pub closure_compute: Duration,
    /// Dirty objects shipped back at completion.
    pub completion_dirty: u64,
    /// Recovery snapshots taken (§4.5).
    pub snapshots: u64,
    /// Re-executions after an injected failure.
    pub recoveries: u64,
}

impl SessionStats {
    /// Total fallbacks of all kinds.
    pub fn total_fallbacks(&self) -> u64 {
        self.fallbacks_code
            + self.fallbacks_data
            + self.fallbacks_sync
            + self.fallbacks_native
            + self.fallbacks_db
    }

    /// Remote code+data fetches (the "Remote fetching" row of Table 5).
    pub fn remote_fetches(&self) -> u64 {
        self.fallbacks_code + self.fallbacks_data
    }

    /// Accumulate another session's counters (for averaging).
    pub fn absorb(&mut self, other: &SessionStats) {
        self.fallbacks_code += other.fallbacks_code;
        self.fallbacks_data += other.fallbacks_data;
        self.fallbacks_sync += other.fallbacks_sync;
        self.fallbacks_native += other.fallbacks_native;
        self.fallbacks_db += other.fallbacks_db;
        self.fallback_overhead += other.fallback_overhead;
        self.fetch_overhead += other.fetch_overhead;
        self.synchronized_objects += other.synchronized_objects;
        self.db_rounds += other.db_rounds;
        self.closure_bytes += other.closure_bytes;
        self.closure_objects += other.closure_objects;
        self.closure_classes += other.closure_classes;
        self.closure_compute += other.closure_compute;
        self.completion_dirty += other.completion_dirty;
        self.snapshots += other.snapshots;
        self.recoveries += other.recoveries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = SessionStats {
            fallbacks_code: 1,
            fallbacks_data: 2,
            fallbacks_sync: 3,
            fallbacks_native: 4,
            fallbacks_db: 5,
            ..Default::default()
        };
        assert_eq!(s.total_fallbacks(), 15);
        assert_eq!(s.remote_fetches(), 3);
    }

    #[test]
    fn absorb_sums() {
        let mut a = SessionStats {
            fallbacks_sync: 1,
            synchronized_objects: 10,
            ..Default::default()
        };
        let b = SessionStats {
            fallbacks_sync: 2,
            synchronized_objects: 20,
            fallback_overhead: Duration::from_millis(1),
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.fallbacks_sync, 3);
        assert_eq!(a.synchronized_objects, 30);
        assert_eq!(a.fallback_overhead, Duration::from_millis(1));
    }
}
