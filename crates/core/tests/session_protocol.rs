//! End-to-end tests of the fallback protocol: a miniature web application is
//! offloaded to function instances and driven through every fallback type —
//! missing code, remote data, statics, monitor synchronization, proxied and
//! fallen-back database rounds, shadow execution, and failure recovery.

use std::collections::HashMap;
use std::sync::Arc;

use beehive_core::config::BeeHiveConfig;
use beehive_core::{FunctionRuntime, OffloadSession, ServerRuntime, ServerSession, SessionStep};
use beehive_db::{Database, QueryDef, QueryKind};
use beehive_proxy::Proxy;
use beehive_sim::Duration;
use beehive_vm::class::{PackKind, PackSpec};
use beehive_vm::program::{Program, ProgramBuilder};
use beehive_vm::{Asm, ClassId, CostModel, MethodId, StaticSlot, Value};

/// The mini application: a root handler that
/// 1. calls a framework helper (separate class → missing-code fallback),
/// 2. reads a shared config object through a static (data fallbacks),
/// 3. increments a synchronized counter (monitor sync),
/// 4. runs two DB reads and one insert over a pooled connection,
/// 5. returns a value derived from all of the above.
struct MiniApp {
    program: Arc<Program>,
    root: MethodId,
    conn_static: StaticSlot,
    config_static: StaticSlot,
    counter_static: StaticSlot,
    node: ClassId,
    read_q: u16,
    insert_q: u16,
}

fn build_app() -> (MiniApp, Database) {
    let mut pb = ProgramBuilder::new();
    let app = pb.user_class("CommentController", 0, Some("@RestController"));
    let helper = pb.framework_class("SpringDispatcher", 0);
    let node = pb.user_class("Config", 2, None);
    let _counter_class = pb.user_class("Counter", 1, None);
    let sock = pb.jdk_class("SocketImpl", 1);
    pb.make_packageable(
        sock,
        PackSpec {
            handle_slot: 0,
            kind: PackKind::Socket,
            marshalled_bytes: 64,
        },
    );

    let conn_static = pb.static_slot("CONNECTION_POOL");
    let config_static = pb.static_slot("APP_CONFIG");
    let counter_static = pb.static_slot("COMMENT_COUNTER");

    // helper: returns its argument doubled (framework-side work).
    let mut h = Asm::new();
    h.load(0).const_i(2).mul().return_val();
    let helper_m = pb.method(helper, "dispatch", 1, 0, h.finish());

    // root(topic_id):
    //   base = Dispatcher.dispatch(topic_id)
    //   cfg  = APP_CONFIG.f0   (remote object on first access)
    //   synchronized(COMMENT_COUNTER) { COMMENT_COUNTER.f0 += 1 }
    //   conn = CONNECTION_POOL
    //   v1 = read(topic_id); insert(v1);
    //   return base + cfg + v1 + counter
    let mut a = Asm::new();
    a.load(0).call(helper_m).store(1); // base in local 1
    a.get_static(config_static).get_field(0).store(2); // cfg value in local 2
                                                       // synchronized counter increment
    a.get_static(counter_static).store(3);
    a.load(3).monitor_enter();
    a.load(3).load(3).get_field(0).const_i(1).add().put_field(0);
    a.load(3).monitor_exit();
    // db rounds over the pooled connection (local 4)
    a.get_static(conn_static).store(4);
    a.load(0).db_call(4, 0).store(5); // read(topic) -> v1
    a.load(5).db_call(4, 1).pop(); // insert(v1)
                                   // result
    a.load(1).load(2).add().load(5).add();
    a.load(3).get_field(0).add().return_val();
    let root = pb.method_annotated(app, "comment", 1, 6, a.finish(), Some("@PostMapping"));

    let program = Arc::new(pb.finish());

    let mut db = Database::new();
    db.seed(0, 100, |k| k * 10);
    let read_q = db.prepare(QueryDef {
        name: "read_topic".into(),
        kind: QueryKind::PointRead { table: 0 },
        base_cost: Duration::from_micros(60),
        per_row: Duration::from_micros(5),
    });
    let insert_q = db.prepare(QueryDef {
        name: "insert_comment".into(),
        kind: QueryKind::Insert { table: 1 },
        base_cost: Duration::from_micros(90),
        per_row: Duration::from_micros(5),
    });

    (
        MiniApp {
            program,
            root,
            conn_static,
            config_static,
            counter_static,
            node,
            read_q,
            insert_q,
        },
        db,
    )
}

fn setup(config: BeeHiveConfig) -> (MiniApp, ServerRuntime) {
    let (app, db) = build_app();
    let mut server = ServerRuntime::new(
        Arc::clone(&app.program),
        config,
        Proxy::new(db),
        CostModel::default(),
    );
    // Application init: shared state in stable space.
    let sock_class = app.program.method_by_name("SocketImpl.init").map(|_| ());
    let _ = sock_class;
    let sock = find_class(&app.program, "SocketImpl");
    let conn = server.create_connection(sock);
    server.vm.set_static(app.conn_static, Value::Ref(conn));

    let cfg = server
        .vm
        .heap
        .alloc_object(app.node, 2, beehive_vm::heap::Space::Closure)
        .unwrap();
    server.vm.heap.set(cfg, 0, Value::I64(1000));
    server.vm.set_static(app.config_static, Value::Ref(cfg));

    let counter_class = find_class(&app.program, "Counter");
    let counter = server
        .vm
        .heap
        .alloc_object(counter_class, 1, beehive_vm::heap::Space::Closure)
        .unwrap();
    server.vm.heap.set(counter, 0, Value::I64(0));
    server
        .vm
        .set_static(app.counter_static, Value::Ref(counter));

    let _ = (app.read_q, app.insert_q);
    (app, server)
}

fn find_class(program: &Program, name: &str) -> ClassId {
    (0..program.class_count() as u32)
        .map(ClassId)
        .find(|&c| program.class(c).name == name)
        .expect("class exists")
}

/// Drive a server session to completion, returning (value, total time).
fn drive_server(server: &mut ServerRuntime, session: &mut ServerSession) -> (Value, Duration) {
    let mut total = Duration::ZERO;
    loop {
        match session.next(server) {
            SessionStep::Need(n) => total += n.amount,
            SessionStep::ServerGc => {
                let pause = server
                    .vm
                    .collect(&mut [session.execution_mut()], &mut [])
                    .pause;
                session.gc_done(pause);
            }
            SessionStep::SyncFromPeer { .. } => {
                panic!("single-endpoint test has no peers")
            }
            SessionStep::AwaitLock { .. } => {
                unreachable!("no concurrent lock hand-offs in this driver")
            }
            SessionStep::Finished(v) => return (v, total),
        }
    }
}

/// Drive an offload session to completion against a set of function
/// instances (the session's own instance plus possible sync peers).
fn drive_offload(
    server: &mut ServerRuntime,
    session: &mut OffloadSession,
    funcs: &mut HashMap<u32, FunctionRuntime>,
) -> (Value, Duration) {
    let mut total = Duration::ZERO;
    loop {
        let id = session.function_id;
        let mut func = funcs.remove(&id).expect("instance exists");
        let step = session.next(server, &mut func);
        funcs.insert(id, func);
        match step {
            SessionStep::Need(n) => total += n.amount,
            SessionStep::SyncFromPeer { peer, monitor } => {
                let p = funcs.get_mut(&peer).expect("peer exists");
                let (objs, _) = server.pull_dirty_from(p);
                if let Some(canonical) = monitor {
                    server.revoke_peer_monitor(p, canonical);
                }
                session.deliver_peer_objects(objs);
            }
            SessionStep::ServerGc => unreachable!("offload sessions collect inline"),
            SessionStep::AwaitLock { .. } => {
                unreachable!("no concurrent lock hand-offs in this driver")
            }
            SessionStep::Finished(v) => return (v, total),
        }
    }
}

fn expected_result(topic: i64, invocation: i64) -> i64 {
    // base = 2*topic, cfg = 1000, v1 = topic*10, counter = invocation count
    2 * topic + 1000 + topic * 10 + invocation
}

#[test]
fn server_execution_computes_the_reference_result() {
    let (app, mut server) = setup(BeeHiveConfig::default());
    let mut s = ServerSession::start(&mut server, app.root, vec![Value::I64(7)]);
    let (v, total) = drive_server(&mut server, &mut s);
    assert_eq!(v, Value::I64(expected_result(7, 1)));
    assert!(total > Duration::ZERO);
    assert_eq!(s.stats.db_rounds, 2);
    assert_eq!(s.stats.total_fallbacks(), 0, "no fallbacks on the server");
    // The insert landed.
    assert_eq!(server.proxy.db().table_len(1), 1);
}

#[test]
fn offloaded_execution_matches_server_result_via_fallbacks() {
    let (app, mut server) = setup(BeeHiveConfig::default());
    let mut funcs = HashMap::new();
    funcs.insert(
        0,
        FunctionRuntime::new(0, &app.program, CostModel::default()),
    );

    let net = server.config.net;
    let mut s = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(7)],
        false,
        net,
        false,
    );
    let (v, _) = drive_offload(&mut server, &mut s, &mut funcs);
    assert_eq!(v, Value::I64(expected_result(7, 1)));

    // The first offloaded run needed fallbacks of several kinds.
    assert!(s.stats.fallbacks_code >= 1, "framework class fetched");
    assert!(s.stats.fallbacks_data >= 2, "statics/objects fetched");
    assert_eq!(s.stats.fallbacks_sync, 1, "one monitor hand-off");
    assert_eq!(s.stats.db_rounds, 2);
    assert_eq!(
        s.stats.fallbacks_db, 0,
        "proxied connection, no DB fallback"
    );
    assert!(s.stats.fallback_overhead > Duration::ZERO);

    // Side effects reached the server: counter incremented, insert landed.
    let counter = server.vm.static_value(app.counter_static).as_ref().unwrap();
    assert_eq!(server.vm.heap.get(counter, 0), Value::I64(1));
    assert_eq!(server.proxy.db().table_len(1), 1);
}

#[test]
fn warm_instance_has_no_fetch_fallbacks() {
    let (app, mut server) = setup(BeeHiveConfig::default());
    let mut funcs = HashMap::new();
    funcs.insert(
        0,
        FunctionRuntime::new(0, &app.program, CostModel::default()),
    );

    let net = server.config.net;
    let mut first = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(1)],
        false,
        net,
        false,
    );
    drive_offload(&mut server, &mut first, &mut funcs);
    let first_fetches = first.stats.remote_fetches();
    assert!(first_fetches > 0);

    // Second request on the same warm instance: the closure is complete.
    let net = server.config.net;
    let mut second = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(2)],
        false,
        net,
        false,
    );
    let (v, _) = drive_offload(&mut server, &mut second, &mut funcs);
    assert_eq!(v, Value::I64(expected_result(2, 2)));
    assert_eq!(second.stats.remote_fetches(), 0, "closure fully refined");
    // The instance retained monitor ownership from the first request (JMM:
    // no hand-off needed when the same endpoint re-acquires), so steady
    // state on one warm instance is fallback-free.
    assert_eq!(second.stats.total_fallbacks(), 0);
}

#[test]
fn refined_plan_makes_fresh_instances_fetch_free() {
    let (app, mut server) = setup(BeeHiveConfig::default());
    let mut funcs = HashMap::new();
    funcs.insert(
        0,
        FunctionRuntime::new(0, &app.program, CostModel::default()),
    );
    let net = server.config.net;
    let mut first = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(1)],
        false,
        net,
        false,
    );
    drive_offload(&mut server, &mut first, &mut funcs);

    // A brand-new instance benefits from the refined plan (Table 5: steady
    // state fallbacks are sync-only).
    funcs.insert(
        1,
        FunctionRuntime::new(1, &app.program, CostModel::default()),
    );
    let net = server.config.net;
    let mut fresh = OffloadSession::start(
        &mut server,
        funcs.get_mut(&1).unwrap(),
        app.root,
        vec![Value::I64(3)],
        false,
        net,
        false,
    );
    let (v, _) = drive_offload(&mut server, &mut fresh, &mut funcs);
    assert_eq!(v, Value::I64(expected_result(3, 2)));
    assert_eq!(fresh.stats.remote_fetches(), 0);
    assert!(
        fresh.stats.closure_objects >= 3,
        "closure carries the data now"
    );
    assert!(fresh.stats.closure_bytes > 0);
}

#[test]
fn shadow_execution_suppresses_all_side_effects() {
    let (app, mut server) = setup(BeeHiveConfig::default());
    let mut funcs = HashMap::new();
    funcs.insert(
        0,
        FunctionRuntime::new(0, &app.program, CostModel::default()),
    );

    let net = server.config.net;
    let mut shadow = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(5)],
        true,
        net,
        true,
    );
    assert!(shadow.is_shadow());
    let (v, _) = drive_offload(&mut server, &mut shadow, &mut funcs);
    // The shadow computes a plausible result...
    assert_eq!(v, Value::I64(expected_result(5, 1)));
    // ...but neither the database nor server memory changed.
    assert_eq!(server.proxy.db().table_len(1), 0, "insert suppressed");
    let counter = server.vm.static_value(app.counter_static).as_ref().unwrap();
    assert_eq!(
        server.vm.heap.get(counter, 0),
        Value::I64(0),
        "memory side effects not shipped"
    );
    assert_eq!(server.stats.shadows, 1);

    // And it refined the closure: the next real request on this instance is
    // fetch-free.
    let net = server.config.net;
    let mut real = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(5)],
        false,
        net,
        false,
    );
    let (v, _) = drive_offload(&mut server, &mut real, &mut funcs);
    assert_eq!(v, Value::I64(expected_result(5, 1)));
    assert_eq!(real.stats.remote_fetches(), 0);
    assert_eq!(server.proxy.db().table_len(1), 1);
}

#[test]
fn db_fallback_when_proxy_disabled() {
    let (app, mut server) = setup(BeeHiveConfig::default().without_proxy());
    let mut funcs = HashMap::new();
    funcs.insert(
        0,
        FunctionRuntime::new(0, &app.program, CostModel::default()),
    );
    let net = server.config.net;
    let mut s = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(7)],
        false,
        net,
        false,
    );
    let (v, _) = drive_offload(&mut server, &mut s, &mut funcs);
    assert_eq!(v, Value::I64(expected_result(7, 1)));
    assert_eq!(s.stats.fallbacks_db, 2, "every DB round fell back");
    assert_eq!(
        server.proxy.db().table_len(1),
        1,
        "fallback writes still land"
    );
}

#[test]
fn cross_function_monitor_sync_ships_peer_state() {
    let (app, mut server) = setup(BeeHiveConfig::default());
    let mut funcs = HashMap::new();
    funcs.insert(
        0,
        FunctionRuntime::new(0, &app.program, CostModel::default()),
    );
    funcs.insert(
        1,
        FunctionRuntime::new(1, &app.program, CostModel::default()),
    );

    // Function 0 runs first and ends up owning the counter's monitor.
    let net = server.config.net;
    let mut s0 = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(1)],
        false,
        net,
        false,
    );
    drive_offload(&mut server, &mut s0, &mut funcs);

    // Function 1 must now sync through the server, pulling f0's state.
    let net = server.config.net;
    let mut s1 = OffloadSession::start(
        &mut server,
        funcs.get_mut(&1).unwrap(),
        app.root,
        vec![Value::I64(2)],
        false,
        net,
        false,
    );
    let (v, _) = drive_offload(&mut server, &mut s1, &mut funcs);
    assert_eq!(v, Value::I64(expected_result(2, 2)), "sees f0's increment");
    assert!(s1.stats.synchronized_objects >= 1);

    // And the server sees both increments after f1 completes.
    let counter = server.vm.static_value(app.counter_static).as_ref().unwrap();
    assert_eq!(server.vm.heap.get(counter, 0), Value::I64(2));
}

#[test]
fn server_reacquires_monitor_from_function() {
    let (app, mut server) = setup(BeeHiveConfig::default());
    let mut funcs = HashMap::new();
    funcs.insert(
        0,
        FunctionRuntime::new(0, &app.program, CostModel::default()),
    );
    let net = server.config.net;
    let mut s0 = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(1)],
        false,
        net,
        false,
    );
    drive_offload(&mut server, &mut s0, &mut funcs);

    // Now a server-side request needs the same monitor.
    let mut s = ServerSession::start(&mut server, app.root, vec![Value::I64(3)]);
    let mut total = Duration::ZERO;
    let v = loop {
        match s.next(&mut server) {
            SessionStep::Need(n) => total += n.amount,
            SessionStep::SyncFromPeer { peer, monitor } => {
                let p = funcs.get_mut(&peer).expect("peer");
                let _ = server.pull_dirty_from(p);
                if let Some(canonical) = monitor {
                    server.revoke_peer_monitor(p, canonical);
                }
            }
            SessionStep::ServerGc => {
                let pause = server.vm.collect(&mut [s.execution_mut()], &mut []).pause;
                s.gc_done(pause);
            }
            SessionStep::AwaitLock { .. } => {
                unreachable!("no concurrent lock hand-offs in this driver")
            }
            SessionStep::Finished(v) => break v,
        }
    };
    assert_eq!(v, Value::I64(expected_result(3, 2)));
    assert_eq!(s.stats.fallbacks_sync, 1, "server synced back once");
}

#[test]
fn failure_recovery_resumes_from_snapshot_exactly_once() {
    let (app, mut server) = setup(BeeHiveConfig::default().with_recovery());
    let mut funcs = HashMap::new();
    funcs.insert(
        0,
        FunctionRuntime::new(0, &app.program, CostModel::default()),
    );

    let net = server.config.net;
    let mut s = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(7)],
        false,
        net,
        false,
    );

    // Drive until the first synchronization snapshot exists, then a bit
    // further (through the first DB round), then kill the instance.
    let mut total = Duration::ZERO;
    let mut db_rounds_seen = 0;
    loop {
        let id = s.function_id;
        let mut func = funcs.remove(&id).unwrap();
        let step = s.next(&mut server, &mut func);
        funcs.insert(id, func);
        match step {
            SessionStep::Need(n) => {
                total += n.amount;
                if n.resource == beehive_core::Resource::Db {
                    db_rounds_seen += 1;
                    if db_rounds_seen == 2 {
                        break; // kill mid-insert
                    }
                }
            }
            SessionStep::SyncFromPeer { .. } => unreachable!(),
            SessionStep::ServerGc => unreachable!(),
            SessionStep::AwaitLock { .. } => {
                unreachable!("no concurrent lock hand-offs in this driver")
            }
            SessionStep::Finished(_) => panic!("should not finish before the kill"),
        }
    }
    assert!(s.stats.snapshots >= 1, "sync point snapshotted");

    // The instance dies; a replacement is provisioned.
    funcs.remove(&0);
    let mut replacement = FunctionRuntime::new(9, &app.program, CostModel::default());
    let step = s.recover(&mut server, &mut replacement);
    assert!(matches!(step, SessionStep::Need(_)));
    funcs.insert(9, replacement);

    let (v, _) = drive_offload(&mut server, &mut s, &mut funcs);
    assert_eq!(
        v,
        Value::I64(expected_result(7, 1)),
        "same result after recovery"
    );
    assert_eq!(s.stats.recoveries, 1);

    // Exactly-once: the insert is in the table exactly once even though the
    // request re-executed it.
    assert_eq!(server.proxy.db().table_len(1), 1);
    let counter = server.vm.static_value(app.counter_static).as_ref().unwrap();
    assert_eq!(
        server.vm.heap.get(counter, 0),
        Value::I64(1),
        "counter incremented once"
    );
}

#[test]
fn recovery_without_snapshot_restarts_from_scratch() {
    let (app, mut server) = setup(BeeHiveConfig::default().with_recovery());
    let mut funcs = HashMap::new();
    funcs.insert(
        0,
        FunctionRuntime::new(0, &app.program, CostModel::default()),
    );

    let net = server.config.net;
    let mut s = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(4)],
        false,
        net,
        false,
    );
    // Kill before anything ran (no snapshot yet).
    let mut replacement = FunctionRuntime::new(5, &app.program, CostModel::default());
    s.recover(&mut server, &mut replacement);
    funcs.clear();
    funcs.insert(5, replacement);
    let (v, _) = drive_offload(&mut server, &mut s, &mut funcs);
    assert_eq!(v, Value::I64(expected_result(4, 1)));
    assert_eq!(server.proxy.db().table_len(1), 1);
}

#[test]
fn fallback_overhead_is_attributed() {
    let (app, mut server) = setup(BeeHiveConfig::default());
    let mut funcs = HashMap::new();
    funcs.insert(
        0,
        FunctionRuntime::new(0, &app.program, CostModel::default()),
    );
    let net = server.config.net;
    let mut s = OffloadSession::start(
        &mut server,
        funcs.get_mut(&0).unwrap(),
        app.root,
        vec![Value::I64(1)],
        false,
        net,
        false,
    );
    let (_, total) = drive_offload(&mut server, &mut s, &mut funcs);
    assert!(s.stats.fallback_overhead > Duration::ZERO);
    assert!(s.stats.fetch_overhead > Duration::ZERO);
    assert!(s.stats.fallback_overhead <= total);
    assert!(s.stats.fetch_overhead <= s.stats.fallback_overhead);
}
