//! # beehive-db — the storage service
//!
//! Web applications keep their persistent state in databases and talk to
//! them over stateful connections (§3.3: a pybbs comment request makes 80+
//! rounds). This crate is the storage substrate of the reproduction: a small
//! key-value/table store with a per-query service-time model and an
//! idempotent write journal used to verify the exactly-once property of the
//! failure-recovery path (§4.5, following Beldi's exactly-once discipline).
//!
//! Queueing at the database machine (an `m4.10xlarge` in the paper, sized so
//! it never bottlenecks) is handled by the embedding experiment with a
//! [`beehive_sim::pool::FifoPool`]; this crate only computes per-query
//! service demand.

#![warn(missing_docs)]

use std::collections::HashMap;

use beehive_sim::Duration;

/// Identifies a table.
pub type TableId = u16;
/// Identifies a prepared query.
pub type QueryId = u16;

/// A dedup key making writes idempotent across request re-execution:
/// request id plus the write's sequence number within the request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WriteKey {
    /// The request this write belongs to.
    pub request: u64,
    /// The write's ordinal within the request.
    pub seq: u32,
}

/// What a prepared query does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Read one row by key; returns its value (0 when absent).
    PointRead {
        /// Target table.
        table: TableId,
    },
    /// Scan `rows` rows; returns their sum (stands in for a result set).
    Scan {
        /// Target table.
        table: TableId,
        /// Rows touched.
        rows: u32,
    },
    /// Insert a row keyed by a fresh id with the argument value; returns the
    /// new row id.
    Insert {
        /// Target table.
        table: TableId,
    },
    /// Increment the row at the argument key; returns the new value.
    Update {
        /// Target table.
        table: TableId,
    },
}

impl QueryKind {
    /// `true` for queries that modify state.
    pub fn is_write(self) -> bool {
        matches!(self, QueryKind::Insert { .. } | QueryKind::Update { .. })
    }
}

/// A prepared query with its service-time model.
#[derive(Clone, Debug)]
pub struct QueryDef {
    /// Diagnostic name.
    pub name: String,
    /// Behaviour.
    pub kind: QueryKind,
    /// Fixed service cost.
    pub base_cost: Duration,
    /// Additional cost per row touched (scans).
    pub per_row: Duration,
}

impl QueryDef {
    /// Total service demand of one execution.
    pub fn service_time(&self) -> Duration {
        let rows = match self.kind {
            QueryKind::Scan { rows, .. } => rows as u64,
            _ => 1,
        };
        self.base_cost + self.per_row * rows
    }
}

/// The outcome of executing a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The result value handed back to the application.
    pub result: i64,
    /// CPU time the database spends serving it.
    pub service: Duration,
    /// Whether the query wrote state.
    pub wrote: bool,
}

/// The store: tables plus prepared queries plus the idempotent write journal.
#[derive(Debug, Default)]
pub struct Database {
    tables: HashMap<TableId, HashMap<i64, i64>>,
    next_row: HashMap<TableId, i64>,
    queries: Vec<QueryDef>,
    journal: HashMap<WriteKey, i64>,
    executed: u64,
    writes: u64,
    suppressed: u64,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a prepared query, returning its id.
    pub fn prepare(&mut self, def: QueryDef) -> QueryId {
        let id = self.queries.len() as QueryId;
        self.queries.push(def);
        id
    }

    /// The definition of a prepared query.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn query_def(&self, id: QueryId) -> &QueryDef {
        &self.queries[id as usize]
    }

    /// Seed `rows` rows into `table` with values `f(key)`.
    pub fn seed(&mut self, table: TableId, rows: i64, f: impl Fn(i64) -> i64) {
        let t = self.tables.entry(table).or_default();
        for k in 0..rows {
            t.insert(k, f(k));
        }
        self.next_row.insert(table, rows);
    }

    /// Execute a prepared query.
    ///
    /// `write_key` must be `Some` for writes (requests are the unit of
    /// idempotence); a repeated key makes the write a no-op that returns the
    /// original result — this is how re-executed requests after a FaaS
    /// failure stay exactly-once (§4.5).
    ///
    /// `suppress_writes` is the shadow-execution mode (§3.4): the proxy
    /// intercepts writes from a shadow function and drops them; reads execute
    /// normally.
    ///
    /// # Panics
    ///
    /// Panics on an unknown query id, or a write without a `write_key`.
    pub fn execute(
        &mut self,
        query: QueryId,
        arg: i64,
        write_key: Option<WriteKey>,
        suppress_writes: bool,
    ) -> QueryOutcome {
        let def = self.queries[query as usize].clone();
        let service = def.service_time();
        self.executed += 1;
        let wrote = def.kind.is_write() && !suppress_writes;
        let result = match def.kind {
            QueryKind::PointRead { table } => self
                .tables
                .get(&table)
                .and_then(|t| t.get(&arg))
                .copied()
                .unwrap_or(0),
            QueryKind::Scan { table, rows } => {
                let t = self.tables.entry(table).or_default();
                (0..rows as i64)
                    .map(|i| {
                        t.get(&((arg + i) % (t.len().max(1) as i64)))
                            .copied()
                            .unwrap_or(0)
                    })
                    .sum()
            }
            QueryKind::Insert { table } => {
                if suppress_writes {
                    // Shadow mode: pretend-insert, no state change.
                    self.suppressed += 1;
                    *self.next_row.get(&table).unwrap_or(&0)
                } else {
                    let key = write_key.expect("insert without write key");
                    if let Some(&prev) = self.journal.get(&key) {
                        prev
                    } else {
                        let id = self.next_row.entry(table).or_insert(0);
                        let row = *id;
                        *id += 1;
                        self.tables.entry(table).or_default().insert(row, arg);
                        self.journal.insert(key, row);
                        self.writes += 1;
                        row
                    }
                }
            }
            QueryKind::Update { table } => {
                if suppress_writes {
                    self.suppressed += 1;
                    self.tables
                        .get(&table)
                        .and_then(|t| t.get(&arg))
                        .copied()
                        .unwrap_or(0)
                } else {
                    let key = write_key.expect("update without write key");
                    if let Some(&prev) = self.journal.get(&key) {
                        prev
                    } else {
                        let t = self.tables.entry(table).or_default();
                        let v = t.entry(arg).or_insert(0);
                        *v += 1;
                        let result = *v;
                        self.journal.insert(key, result);
                        self.writes += 1;
                        result
                    }
                }
            }
        };
        QueryOutcome {
            result,
            service,
            wrote,
        }
    }

    /// Direct read of a row (test/verification helper).
    pub fn row(&self, table: TableId, key: i64) -> Option<i64> {
        self.tables.get(&table).and_then(|t| t.get(&key)).copied()
    }

    /// Number of rows in a table.
    pub fn table_len(&self, table: TableId) -> usize {
        self.tables.get(&table).map_or(0, HashMap::len)
    }

    /// (queries executed, committed writes, suppressed shadow writes).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.executed, self.writes, self.suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_queries() -> (Database, QueryId, QueryId, QueryId, QueryId) {
        let mut db = Database::new();
        db.seed(0, 100, |k| k * 10);
        let read = db.prepare(QueryDef {
            name: "SELECT".into(),
            kind: QueryKind::PointRead { table: 0 },
            base_cost: Duration::from_micros(60),
            per_row: Duration::from_micros(5),
        });
        let scan = db.prepare(QueryDef {
            name: "SCAN".into(),
            kind: QueryKind::Scan { table: 0, rows: 10 },
            base_cost: Duration::from_micros(80),
            per_row: Duration::from_micros(4),
        });
        let insert = db.prepare(QueryDef {
            name: "INSERT".into(),
            kind: QueryKind::Insert { table: 1 },
            base_cost: Duration::from_micros(90),
            per_row: Duration::from_micros(5),
        });
        let update = db.prepare(QueryDef {
            name: "UPDATE".into(),
            kind: QueryKind::Update { table: 0 },
            base_cost: Duration::from_micros(90),
            per_row: Duration::from_micros(5),
        });
        (db, read, scan, insert, update)
    }

    #[test]
    fn point_read() {
        let (mut db, read, ..) = db_with_queries();
        let out = db.execute(read, 7, None, false);
        assert_eq!(out.result, 70);
        assert!(!out.wrote);
        assert_eq!(out.service, Duration::from_micros(65));
    }

    #[test]
    fn scan_sums_rows_and_costs_per_row() {
        let (mut db, _, scan, ..) = db_with_queries();
        let out = db.execute(scan, 0, None, false);
        assert_eq!(out.result, (0..10).map(|k| k * 10).sum::<i64>());
        assert_eq!(out.service, Duration::from_micros(80 + 40));
    }

    #[test]
    fn insert_allocates_rows() {
        let (mut db, _, _, insert, _) = db_with_queries();
        let k1 = WriteKey { request: 1, seq: 0 };
        let k2 = WriteKey { request: 2, seq: 0 };
        let r1 = db.execute(insert, 500, Some(k1), false);
        let r2 = db.execute(insert, 600, Some(k2), false);
        assert_ne!(r1.result, r2.result);
        assert_eq!(db.table_len(1), 2);
        assert_eq!(db.row(1, r1.result), Some(500));
    }

    #[test]
    fn duplicate_write_key_is_idempotent() {
        let (mut db, _, _, insert, _) = db_with_queries();
        let k = WriteKey { request: 9, seq: 0 };
        let r1 = db.execute(insert, 500, Some(k), false);
        let r2 = db.execute(insert, 500, Some(k), false);
        assert_eq!(r1.result, r2.result, "retried write returns original row");
        assert_eq!(db.table_len(1), 1, "no duplicate row");
        assert_eq!(db.stats().1, 1, "only one committed write");
    }

    #[test]
    fn update_increments() {
        let (mut db, _, _, _, update) = db_with_queries();
        let before = db.row(0, 3).unwrap();
        let out = db.execute(update, 3, Some(WriteKey { request: 1, seq: 0 }), false);
        assert_eq!(out.result, before + 1);
        assert!(out.wrote);
    }

    #[test]
    fn shadow_mode_suppresses_writes() {
        let (mut db, _, _, insert, update) = db_with_queries();
        let len_before = db.table_len(1);
        let out = db.execute(insert, 42, None, true);
        assert!(!out.wrote);
        assert_eq!(db.table_len(1), len_before, "no row inserted");
        let row_before = db.row(0, 5).unwrap();
        db.execute(update, 5, None, true);
        assert_eq!(db.row(0, 5).unwrap(), row_before, "no update applied");
        assert_eq!(db.stats().2, 2, "two suppressed writes");
    }

    #[test]
    fn shadow_reads_still_work() {
        let (mut db, read, ..) = db_with_queries();
        let out = db.execute(read, 7, None, true);
        assert_eq!(out.result, 70);
    }

    #[test]
    #[should_panic(expected = "without write key")]
    fn write_without_key_panics() {
        let (mut db, _, _, insert, _) = db_with_queries();
        db.execute(insert, 1, None, false);
    }
}
