//! Billing models (Table 1's billing-granularity column, §5.4 cost analysis).

use beehive_sim::json::{Json, ToJson};
use beehive_sim::Duration;

/// How a platform charges for compute.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Billing {
    /// Charged per instance-hour while the instance exists (EC2-style; the
    /// paper bills OpenWhisk workers this way).
    PerInstanceHour {
        /// Dollars per instance-hour.
        rate: f64,
    },
    /// Charged per GB-second of execution plus per request (Lambda-style;
    /// millisecond billing granularity).
    PerUse {
        /// Dollars per GB-second of execution.
        per_gb_second: f64,
        /// Dollars per invocation.
        per_request: f64,
    },
}

impl ToJson for Billing {
    fn to_json(&self) -> Json {
        match *self {
            Billing::PerInstanceHour { rate } => Json::obj([(
                "per_instance_hour".into(),
                Json::obj([("rate".into(), Json::from(rate))]),
            )]),
            Billing::PerUse {
                per_gb_second,
                per_request,
            } => Json::obj([(
                "per_use".into(),
                Json::obj([
                    ("per_gb_second".into(), Json::from(per_gb_second)),
                    ("per_request".into(), Json::from(per_request)),
                ]),
            )]),
        }
    }
}

/// Accumulates usage for [`Billing::PerUse`] accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostLedger {
    gb_seconds: f64,
    requests: u64,
}

impl CostLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `busy` of execution on an instance with `memory_gb`, covering
    /// `requests` invocations.
    pub fn record_use(&mut self, busy: Duration, memory_gb: f64, requests: u64) {
        self.gb_seconds += busy.as_secs_f64() * memory_gb;
        self.requests += requests;
    }

    /// GB-seconds accumulated.
    pub fn gb_seconds(&self) -> f64 {
        self.gb_seconds
    }

    /// Requests accumulated.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Dollars under a per-use billing model.
    ///
    /// # Panics
    ///
    /// Panics if called with [`Billing::PerInstanceHour`] (instance-time
    /// billing needs instance lifetimes, not usage).
    pub fn cost(&self, billing: &Billing) -> f64 {
        match billing {
            Billing::PerUse {
                per_gb_second,
                per_request,
            } => self.gb_seconds * per_gb_second + self.requests as f64 * per_request,
            Billing::PerInstanceHour { .. } => {
                panic!("per-instance-hour cost requires instance lifetimes")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let mut l = CostLedger::new();
        l.record_use(Duration::from_millis(500), 2.0, 1);
        l.record_use(Duration::from_millis(500), 2.0, 1);
        assert!((l.gb_seconds() - 2.0).abs() < 1e-12);
        assert_eq!(l.requests(), 2);
    }

    #[test]
    fn per_use_cost() {
        let mut l = CostLedger::new();
        l.record_use(Duration::from_secs(10), 1.0, 1000);
        let billing = Billing::PerUse {
            per_gb_second: 0.00001,
            per_request: 0.0000002,
        };
        let c = l.cost(&billing);
        assert!((c - (10.0 * 0.00001 + 1000.0 * 0.0000002)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "instance lifetimes")]
    fn instance_hour_cost_needs_lifetimes() {
        CostLedger::new().cost(&Billing::PerInstanceHour { rate: 0.1 });
    }
}
