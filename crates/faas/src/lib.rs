//! # beehive-faas — simulated FaaS platforms
//!
//! Models the two platforms the paper deploys BeeHive on (§5.1):
//!
//! * **OpenWhisk** — open-source platform on EC2 `m4.large` instances
//!   (2 vCPU / 2.3 GHz, 8 GB), one request per instance at a time; billed
//!   like EC2 on-demand instance-time in the paper's cost analysis (§5.4).
//! * **AWS Lambda** — commercial platform; CPU share scales with memory
//!   (0.6 vCPU at 1 GB, 1.2 vCPU at 2 GB), per-GB-second + per-request
//!   billing, higher network latency to EC2 servers even within one VPC
//!   (which the paper measures as the main source of BeeHiveL's extra
//!   overhead, §5.2).
//!
//! The platform hands out *instances* with cold-boot delays on first use and
//! a warm cache afterwards ("the life span of a cached instance is usually
//! hours", §2.2); the embedding experiment drives it on virtual time.

#![warn(missing_docs)]
// Every platform entry point — including `kill`, the §4.5 failure-injection
// seam driven by `beehive-chaos` — must stay reachable from a driver path.
#![deny(dead_code)]

pub mod billing;
pub mod platform;

pub use billing::{Billing, CostLedger};
pub use platform::{BootKind, FaasPlatform, InstanceId, PlatformConfig};
