//! Instance lifecycle: provisioning (cold boot), warm cache, expiry.

use beehive_sim::{Duration, Rng, SimTime};
use beehive_telemetry as tele;

use crate::billing::{Billing, CostLedger};

/// Identifier of a platform instance.
pub type InstanceId = u32;

/// Whether an instance acquisition hit the warm cache or provisioned fresh.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BootKind {
    /// A new instance was provisioned: container + runtime launch (§3.4).
    Cold,
    /// A cached instance was reused; ready immediately.
    Warm,
}

/// Static description of a FaaS platform deployment.
#[derive(Clone, Debug)]
pub struct PlatformConfig {
    /// Display name.
    pub name: &'static str,
    /// Median time to provision an instance and launch the Semi-FaaS
    /// template's JVM in it (cold boot, ~1 s in §5.6).
    pub cold_boot_median: Duration,
    /// Log-normal shape of cold-boot jitter.
    pub cold_boot_sigma: f64,
    /// vCPU share of one instance (1.0 = one full 2.5 GHz core).
    pub cpu: f64,
    /// Instance memory in GB (billing input).
    pub memory_gb: f64,
    /// One-way network latency between a function instance and the server.
    pub server_latency: Duration,
    /// One-way network latency between a function instance and the database
    /// proxy.
    pub db_latency: Duration,
    /// Per-invocation platform overhead: OpenWhisk's controller/invoker
    /// activation path is several milliseconds; Lambda's invoke API is
    /// faster.
    pub invoke_overhead: Duration,
    /// How long an idle instance stays cached before the platform reclaims
    /// it.
    pub keep_alive: Duration,
    /// The billing model.
    pub billing: Billing,
}

impl PlatformConfig {
    /// The paper's OpenWhisk deployment: `m4.large` workers (2 vCPU, 8 GB;
    /// one request at a time), sub-millisecond intra-AZ latency, billed as
    /// EC2 on-demand instance-time (§5.4 "we assume the price of each
    /// instance is equal to EC2 on-demand ones").
    pub fn openwhisk() -> Self {
        PlatformConfig {
            name: "OpenWhisk",
            cold_boot_median: Duration::from_millis(950),
            cold_boot_sigma: 0.10,
            cpu: 1.0,
            memory_gb: 8.0,
            server_latency: Duration::from_micros(120),
            db_latency: Duration::from_micros(120),
            invoke_overhead: Duration::from_millis(5),
            keep_alive: Duration::from_secs(600),
            // m4.large on-demand: $0.10/h.
            billing: Billing::PerInstanceHour { rate: 0.10 },
        }
    }

    /// The paper's OpenWhisk deployment spread across AWS availability
    /// zones — the sensitivity configuration of §5.2 where the overhead
    /// rises to 23.2% due to network latency.
    pub fn openwhisk_cross_az() -> Self {
        PlatformConfig {
            name: "OpenWhisk (cross-AZ)",
            server_latency: Duration::from_micros(600),
            db_latency: Duration::from_micros(600),
            ..Self::openwhisk()
        }
    }

    /// AWS Lambda with `memory_gb` of memory: CPU scales with memory
    /// (0.6 vCPU/GB as measured in §5.1), higher latency to EC2 even inside
    /// one VPC, per-GB-second billing.
    ///
    /// # Panics
    ///
    /// Panics if `memory_gb` is not positive.
    pub fn lambda(memory_gb: f64) -> Self {
        assert!(memory_gb > 0.0, "memory must be positive");
        PlatformConfig {
            name: "Lambda",
            cold_boot_median: Duration::from_millis(1050),
            cold_boot_sigma: 0.15,
            cpu: 0.6 * memory_gb,
            memory_gb,
            server_latency: Duration::from_micros(450),
            db_latency: Duration::from_micros(450),
            invoke_overhead: Duration::from_millis(2),
            keep_alive: Duration::from_secs(600),
            billing: Billing::PerUse {
                per_gb_second: 0.0000166667,
                per_request: 0.0000002,
            },
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum InstanceState {
    /// Provisioning; becomes warm at the stored time.
    Booting(SimTime),
    /// Idle and cached since the stored time.
    Warm(SimTime),
    /// Executing a request.
    Busy,
    /// Reclaimed.
    Dead,
}

#[derive(Clone, Debug)]
struct Instance {
    state: InstanceState,
    created_at: SimTime,
    retired_at: Option<SimTime>,
}

/// A FaaS platform: provisions instances with cold boots, caches warm ones,
/// reclaims idle ones, and accounts cost.
#[derive(Debug)]
pub struct FaasPlatform {
    config: PlatformConfig,
    instances: Vec<Instance>,
    rng: Rng,
    ledger: CostLedger,
    cold_boots: u64,
    warm_starts: u64,
}

impl FaasPlatform {
    /// A platform with the given configuration and RNG seed (cold-boot
    /// jitter).
    pub fn new(config: PlatformConfig, rng: Rng) -> Self {
        FaasPlatform {
            config,
            instances: Vec::new(),
            rng,
            ledger: CostLedger::new(),
            cold_boots: 0,
            warm_starts: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Acquire an instance for a request at `now`. Returns the instance, the
    /// time it becomes ready to execute, and whether this was a cold or warm
    /// start. The instance is `Busy` from the ready time until
    /// [`FaasPlatform::release`].
    pub fn acquire(&mut self, now: SimTime) -> (InstanceId, SimTime, BootKind) {
        // Prefer the most recently used warm instance (LIFO keeps the cache
        // small and matches platform schedulers).
        let warm = self
            .instances
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i.state, InstanceState::Warm(_)))
            .max_by_key(|(idx, i)| match i.state {
                InstanceState::Warm(since) => (since, *idx),
                _ => unreachable!(),
            });
        if let Some((idx, _)) = warm {
            self.instances[idx].state = InstanceState::Busy;
            self.warm_starts += 1;
            tele::instant(
                tele::Track::Instance(idx as u32),
                "instance:warm_start",
                &[],
            );
            return (idx as InstanceId, now, BootKind::Warm);
        }
        let boot = self
            .rng
            .lognormal(self.config.cold_boot_median, self.config.cold_boot_sigma);
        let ready = now + boot;
        let id = self.instances.len() as InstanceId;
        self.instances.push(Instance {
            state: InstanceState::Booting(ready),
            created_at: now,
            retired_at: None,
        });
        self.cold_boots += 1;
        if tele::enabled() {
            tele::instant(
                tele::Track::Instance(id),
                "instance:cold_boot",
                &[("boot_us", tele::Arg::UInt(boot.as_nanos() / 1000))],
            );
        }
        (id, ready, BootKind::Cold)
    }

    /// Acquire a *specific* warm instance (the embedding driver tracks
    /// which warm instances already hold an instantiated closure and prefers
    /// them). Returns `false` if the instance is not warm.
    pub fn acquire_warm_specific(&mut self, id: InstanceId) -> bool {
        let inst = &mut self.instances[id as usize];
        if matches!(inst.state, InstanceState::Warm(_)) {
            inst.state = InstanceState::Busy;
            self.warm_starts += 1;
            tele::instant(tele::Track::Instance(id), "instance:warm_start", &[]);
            true
        } else {
            false
        }
    }

    /// Mark a booting instance as busy once its ready time arrives.
    ///
    /// # Panics
    ///
    /// Panics if the instance is not booting or `now` precedes its ready
    /// time.
    pub fn boot_complete(&mut self, now: SimTime, id: InstanceId) {
        let inst = &mut self.instances[id as usize];
        match inst.state {
            InstanceState::Booting(ready) => {
                assert!(now >= ready, "boot_complete before ready time");
                inst.state = InstanceState::Busy;
                tele::instant(tele::Track::Instance(id), "instance:ready", &[]);
            }
            ref s => panic!("boot_complete on instance in state {s:?}"),
        }
    }

    /// Release a busy instance back to the warm cache, recording `busy_time`
    /// of execution for billing.
    ///
    /// # Panics
    ///
    /// Panics if the instance is not busy.
    pub fn release(&mut self, now: SimTime, id: InstanceId, busy_time: Duration) {
        let inst = &mut self.instances[id as usize];
        assert_eq!(
            inst.state,
            InstanceState::Busy,
            "release of non-busy instance"
        );
        inst.state = InstanceState::Warm(now);
        if tele::enabled() {
            tele::instant(
                tele::Track::Instance(id),
                "instance:release",
                &[("busy_us", tele::Arg::UInt(busy_time.as_nanos() / 1000))],
            );
        }
        self.ledger.record_use(busy_time, self.config.memory_gb, 1);
    }

    /// Reclaim warm instances idle longer than the keep-alive; returns how
    /// many were reclaimed.
    pub fn expire_idle(&mut self, now: SimTime) -> usize {
        let mut n = 0;
        for inst in &mut self.instances {
            if let InstanceState::Warm(since) = inst.state {
                if now.saturating_since(since) >= self.config.keep_alive {
                    inst.state = InstanceState::Dead;
                    inst.retired_at = Some(now);
                    n += 1;
                }
            }
        }
        if n > 0 {
            tele::instant(
                tele::Track::Platform,
                "instance:expire",
                &[("count", tele::Arg::UInt(n as u64))],
            );
        }
        n
    }

    /// Forcibly kill an instance (failure injection, §4.5).
    ///
    /// Driven by `beehive-chaos` fault plans: the workload driver expands a
    /// plan's `InstanceCrash` faults into kills here, then recovers the
    /// victim's request on a replacement instance from its last
    /// synchronization snapshot. See the `beehive-chaos` crate for the
    /// injector vocabulary and the retry/backoff policy.
    pub fn kill(&mut self, now: SimTime, id: InstanceId) {
        let inst = &mut self.instances[id as usize];
        inst.state = InstanceState::Dead;
        inst.retired_at = Some(now);
        tele::instant(tele::Track::Instance(id), "instance:kill", &[]);
    }

    /// `true` if the instance is alive (booting, warm or busy).
    pub fn is_alive(&self, id: InstanceId) -> bool {
        !matches!(self.instances[id as usize].state, InstanceState::Dead)
    }

    /// `true` if the instance is warm (cached, idle) — i.e. eligible for
    /// fault injection as an idle-cache victim without disturbing a boot or
    /// a reserved replacement.
    pub fn is_warm(&self, id: InstanceId) -> bool {
        matches!(self.instances[id as usize].state, InstanceState::Warm(_))
    }

    /// Number of instances ever created.
    pub fn instances_created(&self) -> usize {
        self.instances.len()
    }

    /// Number of currently warm (cached, idle) instances.
    pub fn warm_count(&self) -> usize {
        self.instances
            .iter()
            .filter(|i| matches!(i.state, InstanceState::Warm(_)))
            .count()
    }

    /// Cold and warm start counts so far.
    pub fn boot_stats(&self) -> (u64, u64) {
        (self.cold_boots, self.warm_starts)
    }

    /// Pre-provision `n` warm instances at `now` (used to model platform
    /// caches that already hold instances, the "warm boot" case of §5.2).
    pub fn prewarm(&mut self, now: SimTime, n: usize) {
        if n > 0 {
            tele::instant(
                tele::Track::Platform,
                "instance:prewarm",
                &[("count", tele::Arg::UInt(n as u64))],
            );
        }
        for _ in 0..n {
            self.instances.push(Instance {
                state: InstanceState::Warm(now),
                created_at: now,
                retired_at: None,
            });
        }
    }

    /// The usage ledger (GB-seconds and request counts billed so far).
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Total dollars billed up to `now`.
    pub fn cost(&self, now: SimTime) -> f64 {
        match self.config.billing {
            Billing::PerUse { .. } => self.ledger.cost(&self.config.billing),
            Billing::PerInstanceHour { rate } => {
                // Instance-time billing: every instance is billed from
                // creation until retirement (or `now`).
                let mut hours = 0.0;
                for inst in &self.instances {
                    let end = inst.retired_at.unwrap_or(now);
                    hours += end.saturating_since(inst.created_at).as_secs_f64() / 3600.0;
                }
                hours * rate
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> FaasPlatform {
        FaasPlatform::new(PlatformConfig::openwhisk(), Rng::new(1))
    }

    #[test]
    fn first_acquire_is_cold() {
        let mut p = platform();
        let (id, ready, kind) = p.acquire(SimTime::ZERO);
        assert_eq!(kind, BootKind::Cold);
        assert!(ready > SimTime::ZERO);
        // Cold boot should be around the configured median.
        let ms = (ready - SimTime::ZERO).as_millis();
        assert!((500..2500).contains(&ms), "cold boot {ms}ms");
        p.boot_complete(ready, id);
        assert_eq!(p.boot_stats(), (1, 0));
    }

    #[test]
    fn released_instance_is_reused_warm() {
        let mut p = platform();
        let (id, ready, _) = p.acquire(SimTime::ZERO);
        p.boot_complete(ready, id);
        let done = ready + Duration::from_millis(50);
        p.release(done, id, Duration::from_millis(50));
        assert_eq!(p.warm_count(), 1);
        let (id2, ready2, kind2) = p.acquire(done + Duration::from_millis(1));
        assert_eq!(id2, id);
        assert_eq!(kind2, BootKind::Warm);
        assert_eq!(ready2, done + Duration::from_millis(1));
        assert_eq!(p.boot_stats(), (1, 1));
    }

    #[test]
    fn parallel_requests_get_distinct_instances() {
        let mut p = platform();
        let (a, _, _) = p.acquire(SimTime::ZERO);
        let (b, _, _) = p.acquire(SimTime::ZERO);
        assert_ne!(a, b);
        assert_eq!(p.instances_created(), 2);
    }

    #[test]
    fn keep_alive_expiry() {
        let mut p = platform();
        let (id, ready, _) = p.acquire(SimTime::ZERO);
        p.boot_complete(ready, id);
        p.release(ready, id, Duration::from_millis(10));
        assert_eq!(p.expire_idle(ready + Duration::from_secs(1)), 0);
        let late = ready + p.config().keep_alive + Duration::from_secs(1);
        assert_eq!(p.expire_idle(late), 1);
        assert!(!p.is_alive(id));
        // Next acquire is cold again.
        let (_, _, kind) = p.acquire(late);
        assert_eq!(kind, BootKind::Cold);
    }

    #[test]
    fn prewarm_gives_instant_instances() {
        let mut p = platform();
        p.prewarm(SimTime::ZERO, 2);
        let (_, ready, kind) = p.acquire(SimTime::from_secs(1));
        assert_eq!(kind, BootKind::Warm);
        assert_eq!(ready, SimTime::from_secs(1));
    }

    #[test]
    fn kill_removes_instance() {
        let mut p = platform();
        let (id, ready, _) = p.acquire(SimTime::ZERO);
        p.boot_complete(ready, id);
        p.kill(ready, id);
        assert!(!p.is_alive(id));
    }

    #[test]
    fn lambda_cpu_scales_with_memory() {
        let one = PlatformConfig::lambda(1.0);
        let two = PlatformConfig::lambda(2.0);
        assert!((one.cpu - 0.6).abs() < 1e-9);
        assert!((two.cpu - 1.2).abs() < 1e-9);
        assert!(one.server_latency > PlatformConfig::openwhisk().server_latency);
    }

    #[test]
    fn openwhisk_cost_is_instance_time() {
        let mut p = platform();
        let (id, ready, _) = p.acquire(SimTime::ZERO);
        p.boot_complete(ready, id);
        let one_hour = SimTime::from_secs(3600);
        let cost = p.cost(one_hour);
        // One m4.large for ~1h at $0.10/h.
        assert!((cost - 0.10).abs() < 0.01, "cost {cost}");
    }

    #[test]
    fn lambda_cost_is_usage_based() {
        let mut p = FaasPlatform::new(PlatformConfig::lambda(1.0), Rng::new(2));
        let (id, ready, _) = p.acquire(SimTime::ZERO);
        p.boot_complete(ready, id);
        // 100 requests x 100ms on 1GB = 10 GB-s.
        for _ in 0..100 {
            p.instances[id as usize].state = InstanceState::Busy;
            p.release(ready, id, Duration::from_millis(100));
        }
        let cost = p.cost(SimTime::from_secs(3600));
        let expected = 10.0 * 0.0000166667 + 100.0 * 0.0000002;
        assert!((cost - expected).abs() < 1e-9, "cost {cost} vs {expected}");
        // Idle time costs nothing on Lambda.
    }

    #[test]
    fn cross_az_has_higher_latency() {
        assert!(
            PlatformConfig::openwhisk_cross_az().server_latency
                > PlatformConfig::openwhisk().server_latency
        );
    }
}
