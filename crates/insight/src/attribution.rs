//! The attribution engine: every nanosecond of a request's latency, named.
//!
//! [`attribute`] folds one recorded [`Trace`] into an [`AttributionReport`]:
//! each completed request's end-to-end latency decomposed into the
//! non-overlapping [`Component`]s of the Semi-FaaS execution model —
//! server/function execution, server-side assist work, cold-boot wait,
//! the fallback round trips by kind, monitor synchronization, lock wait,
//! database and network waits, and failure recovery. The decomposition is exhaustive by construction: the
//! session span is cut at every boundary of every classified sub-span, each
//! elementary segment is charged to the highest-priority span covering it
//! (uncovered segments are execution on the session's endpoint), and the
//! pre-session boot wait is added on top. The components of a request
//! therefore sum *exactly* to its measured latency — [`RequestAttribution::
//! residual_ns`] is zero, and the property test in `beehive-workload`
//! asserts the aggregate equals the live `request_latency` histogram sum.
//!
//! GC pauses never land on request tracks (the VM charges them to the
//! session's CPU budget, so they surface as execution time); the report
//! carries the scenario-level pause total separately.

use std::collections::BTreeMap;

use beehive_sim::json::Json;
use beehive_sim::SimTime;
use beehive_telemetry::summary::{request_timelines, RequestTimeline};
use beehive_telemetry::{EventKind, Trace};

/// One typed latency component. The discriminant order is the canonical
/// rendering order of every report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Component {
    /// Server-side time inside an *offloaded* session: residence (queue +
    /// service) on a server worker pool while the server computes closures
    /// or coordinates synchronization on the function's behalf
    /// (`wait:server_cpu`).
    ServerAssist,
    /// The server path end to end: uncovered time of a `req:server`
    /// session. Plain server requests deliberately do not trace their
    /// ~100s of pool parks, so this lumps pool queueing with execution.
    ServerExec,
    /// Function-side execution: the instance's vCPU-scaled CPU time
    /// (`wait:function_cpu` — a dedicated grant, never contended) plus the
    /// uncovered dispatch bookkeeping of a `req:offload` session. Grows
    /// when a cold, un-JITted instance runs the first invocation itself.
    FaasExec,
    /// Waiting for an instance to boot before the session could start
    /// (arrival → session start, the `boot:wait` complete).
    BootWait,
    /// Code-shipping fallback round trips (§3.2).
    FallbackCode,
    /// Data-object fallback round trips.
    FallbackData,
    /// Static-field fallback round trips.
    FallbackStatic,
    /// Database-proxy fallback round trips.
    FallbackDb,
    /// Native-method fallback round trips.
    FallbackNative,
    /// Monitor / volatile synchronization shipping (§3.3).
    MonitorSync,
    /// Parked on a contended server lock.
    LockWait,
    /// Database service time outside any fallback.
    DbWait,
    /// Network transfer time outside any fallback.
    NetWait,
    /// §4.5 failure recovery: crash detection through resume.
    Recovery,
}

/// Number of components (the length of [`Component::ALL`]).
pub const COMPONENTS: usize = 14;

impl Component {
    /// Every component, in canonical order.
    pub const ALL: [Component; COMPONENTS] = [
        Component::ServerAssist,
        Component::ServerExec,
        Component::FaasExec,
        Component::BootWait,
        Component::FallbackCode,
        Component::FallbackData,
        Component::FallbackStatic,
        Component::FallbackDb,
        Component::FallbackNative,
        Component::MonitorSync,
        Component::LockWait,
        Component::DbWait,
        Component::NetWait,
        Component::Recovery,
    ];

    /// Stable snake/colon name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Component::ServerAssist => "server_assist",
            Component::ServerExec => "exec:server",
            Component::FaasExec => "exec:faas",
            Component::BootWait => "boot_wait",
            Component::FallbackCode => "fallback:code",
            Component::FallbackData => "fallback:data",
            Component::FallbackStatic => "fallback:static",
            Component::FallbackDb => "fallback:db",
            Component::FallbackNative => "fallback:native",
            Component::MonitorSync => "monitor_sync",
            Component::LockWait => "lock_wait",
            Component::DbWait => "db_wait",
            Component::NetWait => "net_wait",
            Component::Recovery => "recovery",
        }
    }

    /// Inverse of [`Component::name`].
    pub fn from_name(name: &str) -> Option<Component> {
        Component::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// Classify a request-track span name into `(component, priority)`.
///
/// Priorities resolve nesting: an elementary segment covered by several
/// spans is charged to the highest-priority one, so e.g. the `wait:net:fb`
/// inside a `fallback:data` round trip stays part of the fallback, and
/// everything under a `recovery` span is recovery. `None` means the span
/// does not claim time (unknown names, and the `req:*` session spans
/// themselves).
fn classify(name: &'static str) -> Option<(Component, u8)> {
    Some(match name {
        "recovery" => (Component::Recovery, 100),
        "fallback:code" => (Component::FallbackCode, 90),
        "fallback:data" => (Component::FallbackData, 90),
        "fallback:static" => (Component::FallbackStatic, 90),
        "fallback:db" => (Component::FallbackDb, 90),
        "fallback:native" => (Component::FallbackNative, 90),
        "sync:monitor" | "sync:volatile" => (Component::MonitorSync, 80),
        "wait:lock" => (Component::LockWait, 70),
        // Fallback-flagged waits outside a fallback/sync span (there are
        // none today, but the classification stays exhaustive) charge their
        // underlying resource.
        "wait:server_cpu:fb" => (Component::ServerAssist, 50),
        "wait:function_cpu:fb" => (Component::FaasExec, 50),
        "wait:net:fb" => (Component::NetWait, 50),
        "wait:db:fb" => (Component::DbWait, 50),
        "wait:db" => (Component::DbWait, 40),
        "wait:net" => (Component::NetWait, 30),
        "wait:server_cpu" => (Component::ServerAssist, 20),
        "wait:function_cpu" => (Component::FaasExec, 10),
        _ => return None,
    })
}

/// One request's exhaustive latency decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestAttribution {
    /// Server-issued request id (what metric exemplars point at).
    pub rid: u64,
    /// Session kind: `"req:server"` or `"req:offload"`.
    pub kind: String,
    /// Measured end-to-end latency in nanoseconds (boot wait included) —
    /// identical to what the driver's `request_latency` histogram recorded.
    pub total_ns: u64,
    /// Nanoseconds per component, indexed by [`Component::ALL`] order.
    pub components: [u64; COMPONENTS],
}

impl RequestAttribution {
    /// `total_ns` minus the component sum. Zero by construction; kept as a
    /// checked quantity so reports and tests can assert exhaustiveness.
    pub fn residual_ns(&self) -> i64 {
        self.total_ns as i64 - self.components.iter().sum::<u64>() as i64
    }

    /// `(name, nanos)` for every non-zero component, canonical order.
    pub fn nonzero(&self) -> Vec<(&'static str, u64)> {
        Component::ALL
            .into_iter()
            .zip(self.components)
            .filter(|&(_, ns)| ns > 0)
            .map(|(c, ns)| (c.name(), ns))
            .collect()
    }
}

/// Attribute one completed request timeline.
///
/// The session span `[start, end]` is cut at every boundary of every
/// classified sub-span; each elementary segment goes to the covering span
/// with the highest priority (lowest [`Component`] index on ties), or to
/// the endpoint's execution component when uncovered. `boot:wait`
/// completes — recorded before the session span opens — are added on top,
/// so the total matches the driver's arrival-to-completion latency.
fn attribute_request(t: &RequestTimeline) -> Option<RequestAttribution> {
    let (Some(kind), Some(end)) = (t.kind, t.end) else {
        return None;
    };
    if kind != "req:server" && kind != "req:offload" {
        return None;
    }
    let exec = if kind == "req:server" {
        Component::ServerExec
    } else {
        Component::FaasExec
    };
    let start = t.start;
    let mut components = [0u64; COMPONENTS];

    // Classified sub-spans, clipped to the session window.
    let mut claimed: Vec<(SimTime, SimTime, Component, u8)> = Vec::new();
    let mut cuts: Vec<SimTime> = vec![start, end];
    for s in &t.spans {
        let Some((comp, prio)) = classify(s.name) else {
            continue;
        };
        let (b, e) = (s.begin.max(start), s.end.min(end));
        if b >= e {
            continue;
        }
        claimed.push((b, e, comp, prio));
        cuts.push(b);
        cuts.push(e);
    }
    cuts.sort();
    cuts.dedup();
    for w in cuts.windows(2) {
        let (b, e) = (w[0], w[1]);
        let mut winner = exec;
        let mut best = 0u8;
        for &(cb, ce, comp, prio) in &claimed {
            if cb <= b && ce >= e && (prio > best || (prio == best && comp < winner)) {
                winner = comp;
                best = prio;
            }
        }
        components[winner as usize] += e.saturating_since(b).as_nanos();
    }

    // Pre-session boot wait (arrival → session start) is disjoint from the
    // span by construction: additive.
    for (name, _, d) in &t.completes {
        if *name == "boot:wait" {
            components[Component::BootWait as usize] += d.as_nanos();
        }
    }

    let total_ns =
        end.saturating_since(start).as_nanos() + components[Component::BootWait as usize];
    Some(RequestAttribution {
        rid: t.rid,
        kind: kind.to_string(),
        total_ns,
        components,
    })
}

/// The per-scenario attribution report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributionReport {
    /// Scenario label (matches the metrics snapshot's scenario label).
    pub label: String,
    /// Completed requests attributed (`req:server` + `req:offload`).
    pub requests: u64,
    /// Completed shadow executions (warm-up machinery, not request latency;
    /// excluded from the component sums).
    pub shadows: u64,
    /// Sum of all attributed request latencies in nanoseconds.
    pub total_ns: u64,
    /// Summed nanoseconds per component, [`Component::ALL`] order.
    pub components: [u64; COMPONENTS],
    /// Scenario-level GC pause total (charged to execution budgets, never
    /// to the request clock — reported beside the decomposition).
    pub gc_pause_ns: u64,
    /// The slowest-K requests with their full decompositions, slowest
    /// first, ties broken by ascending request id — the same order the
    /// metrics registry keeps its `request_latency` exemplars in.
    pub slowest: Vec<RequestAttribution>,
}

impl AttributionReport {
    /// Aggregate residual: `total_ns` minus the component sum (zero).
    pub fn residual_ns(&self) -> i64 {
        self.total_ns as i64 - self.components.iter().sum::<u64>() as i64
    }

    /// Mean nanoseconds per request of one component (0 when no requests).
    pub fn mean_ns(&self, c: Component) -> u64 {
        self.components[c as usize]
            .checked_div(self.requests)
            .unwrap_or(0)
    }

    /// JSON shape (round-trips through [`AttributionReport::from_json`]):
    ///
    /// ```text
    /// {"label", "requests", "shadows", "total_ns", "gc_pause_ns",
    ///  "components": {name: ns, ...},            // all 15, canonical order
    ///  "slowest": [{"request", "kind", "total_ns",
    ///               "components": {name: ns}}]}  // non-zero only
    /// ```
    pub fn to_json(&self) -> Json {
        let comp_obj = |full: bool, components: &[u64; COMPONENTS]| {
            Json::Obj(
                Component::ALL
                    .into_iter()
                    .zip(components)
                    .filter(|&(_, ns)| full || *ns > 0)
                    .map(|(c, ns)| (c.name().to_string(), Json::Int(*ns as i128)))
                    .collect(),
            )
        };
        Json::obj([
            ("label".into(), Json::from(self.label.clone())),
            ("requests".into(), Json::Int(self.requests as i128)),
            ("shadows".into(), Json::Int(self.shadows as i128)),
            ("total_ns".into(), Json::Int(self.total_ns as i128)),
            ("gc_pause_ns".into(), Json::Int(self.gc_pause_ns as i128)),
            ("components".into(), comp_obj(true, &self.components)),
            (
                "slowest".into(),
                Json::Arr(
                    self.slowest
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("request".into(), Json::Int(r.rid as i128)),
                                ("kind".into(), Json::from(r.kind.clone())),
                                ("total_ns".into(), Json::Int(r.total_ns as i128)),
                                ("components".into(), comp_obj(false, &r.components)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Strict inverse of [`AttributionReport::to_json`].
    pub fn from_json(j: &Json) -> Result<AttributionReport, String> {
        fn u64_field(j: &Json, key: &str) -> Result<u64, String> {
            match j.get(key) {
                Some(Json::Int(v)) if *v >= 0 => Ok(*v as u64),
                _ => Err(format!("missing or invalid {key:?}")),
            }
        }
        fn components_of(j: &Json) -> Result<[u64; COMPONENTS], String> {
            let Some(Json::Obj(pairs)) = j.get("components") else {
                return Err("missing components object".into());
            };
            let mut out = [0u64; COMPONENTS];
            for (k, v) in pairs {
                let c =
                    Component::from_name(k).ok_or_else(|| format!("unknown component {k:?}"))?;
                match v {
                    Json::Int(ns) if *ns >= 0 => out[c as usize] = *ns as u64,
                    _ => return Err(format!("invalid nanos for component {k:?}")),
                }
            }
            Ok(out)
        }
        let label = match j.get("label") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err("missing label".into()),
        };
        let mut slowest = Vec::new();
        if let Some(Json::Arr(items)) = j.get("slowest") {
            for item in items {
                let kind = match item.get("kind") {
                    Some(Json::Str(s)) => s.clone(),
                    _ => return Err("slowest entry missing kind".into()),
                };
                slowest.push(RequestAttribution {
                    rid: u64_field(item, "request")?,
                    kind,
                    total_ns: u64_field(item, "total_ns")?,
                    components: components_of(item)?,
                });
            }
        } else {
            return Err("missing slowest array".into());
        }
        Ok(AttributionReport {
            label,
            requests: u64_field(j, "requests")?,
            shadows: u64_field(j, "shadows")?,
            total_ns: u64_field(j, "total_ns")?,
            components: components_of(j)?,
            gc_pause_ns: u64_field(j, "gc_pause_ns")?,
            slowest,
        })
    }
}

/// Attribute every completed request of one labelled trace, keeping the
/// `k` slowest decompositions as exemplars.
pub fn attribute(label: &str, trace: &Trace, k: usize) -> AttributionReport {
    let timelines = request_timelines(trace);
    let mut requests = 0u64;
    let mut shadows = 0u64;
    let mut total_ns = 0u64;
    let mut components = [0u64; COMPONENTS];
    let mut attributed: Vec<RequestAttribution> = Vec::new();
    for t in &timelines {
        if t.kind == Some("req:shadow") {
            if t.end.is_some() {
                shadows += 1;
            }
            continue;
        }
        let Some(r) = attribute_request(t) else {
            continue;
        };
        requests += 1;
        total_ns += r.total_ns;
        for (slot, ns) in components.iter_mut().zip(r.components) {
            *slot += ns;
        }
        attributed.push(r);
    }
    attributed.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.rid.cmp(&b.rid)));
    attributed.truncate(k);

    let gc_pause_ns = trace
        .events
        .iter()
        .filter(|e| e.name == "gc")
        .filter_map(|e| match e.kind {
            EventKind::Complete(d) => Some(d.as_nanos()),
            _ => None,
        })
        .sum();

    AttributionReport {
        label: label.to_string(),
        requests,
        shadows,
        total_ns,
        components,
        gc_pause_ns,
        slowest: attributed,
    }
}

/// Attribute every labelled trace of a run, in input order.
pub fn attribute_all(traces: &[(String, Trace)], k: usize) -> Vec<AttributionReport> {
    traces
        .iter()
        .map(|(label, t)| attribute(label, t, k))
        .collect()
}

/// Component means per request as a `name → mean-ns` table (reporting aid).
pub fn mean_table(r: &AttributionReport) -> BTreeMap<&'static str, u64> {
    Component::ALL
        .into_iter()
        .map(|c| (c.name(), r.mean_ns(c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_sim::Duration;
    use beehive_telemetry::{TraceEvent, Track};

    fn at(us: u64) -> SimTime {
        SimTime::ZERO + Duration::from_micros(us)
    }

    fn ev(t: u64, track: Track, name: &'static str, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: at(t),
            track,
            name,
            kind,
            args: vec![],
        }
    }

    /// An offload request: 2 µs boot wait, then [0,20] µs of session time
    /// with a function CPU grant [0,3], a fallback [5,9] whose inner net
    /// wait [6,8] must *not* double-count, and a monitor sync [12,15].
    fn offload_trace() -> Trace {
        Trace {
            events: vec![
                ev(
                    2,
                    Track::Request(7),
                    "boot:wait",
                    EventKind::Complete(Duration::from_micros(2)),
                ),
                ev(2, Track::Request(7), "req:offload", EventKind::Begin),
                ev(2, Track::Request(7), "wait:function_cpu", EventKind::Begin),
                ev(5, Track::Request(7), "wait:function_cpu", EventKind::End),
                ev(7, Track::Request(7), "fallback:data", EventKind::Begin),
                ev(8, Track::Request(7), "wait:net:fb", EventKind::Begin),
                ev(10, Track::Request(7), "wait:net:fb", EventKind::End),
                ev(11, Track::Request(7), "fallback:data", EventKind::End),
                ev(14, Track::Request(7), "sync:monitor", EventKind::Begin),
                ev(17, Track::Request(7), "sync:monitor", EventKind::End),
                ev(22, Track::Request(7), "req:offload", EventKind::End),
                ev(
                    30,
                    Track::Instance(0),
                    "gc",
                    EventKind::Complete(Duration::from_micros(4)),
                ),
            ],
        }
    }

    #[test]
    fn components_sum_exactly_to_measured_latency() {
        let rep = attribute("s", &offload_trace(), 8);
        assert_eq!(rep.requests, 1);
        let r = &rep.slowest[0];
        assert_eq!(r.rid, 7);
        // 20 µs of session + 2 µs boot wait.
        assert_eq!(r.total_ns, 22_000);
        assert_eq!(r.residual_ns(), 0);
        assert_eq!(rep.residual_ns(), 0);
        let ns = |c: Component| r.components[c as usize];
        assert_eq!(ns(Component::BootWait), 2_000);
        // The whole [7,11] fallback including its nested net wait.
        assert_eq!(ns(Component::FallbackData), 4_000);
        assert_eq!(ns(Component::NetWait), 0);
        assert_eq!(ns(Component::MonitorSync), 3_000);
        // The [2,5] CPU grant plus uncovered session time
        // [5,7] + [11,14] + [17,22] = 13 µs of function-side execution.
        assert_eq!(ns(Component::FaasExec), 13_000);
        assert_eq!(rep.gc_pause_ns, 4_000, "GC stays scenario-level");
    }

    #[test]
    fn priority_resolves_overlap_to_the_outer_machinery() {
        // A recovery span covering a fallback: all recovery.
        let t = Trace {
            events: vec![
                ev(0, Track::Request(1), "req:offload", EventKind::Begin),
                ev(2, Track::Request(1), "recovery", EventKind::Begin),
                ev(3, Track::Request(1), "fallback:code", EventKind::Begin),
                ev(5, Track::Request(1), "fallback:code", EventKind::End),
                ev(8, Track::Request(1), "recovery", EventKind::End),
                ev(10, Track::Request(1), "req:offload", EventKind::End),
            ],
        };
        let rep = attribute("s", &t, 8);
        let r = &rep.slowest[0];
        assert_eq!(r.components[Component::Recovery as usize], 6_000);
        assert_eq!(r.components[Component::FallbackCode as usize], 0);
        assert_eq!(r.components[Component::FaasExec as usize], 4_000);
        assert_eq!(r.residual_ns(), 0);
    }

    #[test]
    fn server_requests_and_shadows_are_separated() {
        let t = Trace {
            events: vec![
                ev(0, Track::Request(1), "req:server", EventKind::Begin),
                ev(1, Track::Request(1), "wait:server_cpu", EventKind::Begin),
                ev(3, Track::Request(1), "wait:server_cpu", EventKind::End),
                ev(6, Track::Request(1), "req:server", EventKind::End),
                ev(0, Track::Request(2), "req:shadow", EventKind::Begin),
                ev(9, Track::Request(2), "req:shadow", EventKind::End),
                // In flight at the horizon: not attributed.
                ev(4, Track::Request(3), "req:offload", EventKind::Begin),
            ],
        };
        let rep = attribute("s", &t, 8);
        assert_eq!((rep.requests, rep.shadows), (1, 1));
        let r = &rep.slowest[0];
        assert_eq!(r.kind, "req:server");
        assert_eq!(r.components[Component::ServerAssist as usize], 2_000);
        assert_eq!(r.components[Component::ServerExec as usize], 4_000);
        assert_eq!(rep.total_ns, 6_000);
    }

    #[test]
    fn slowest_k_orders_by_latency_then_rid_and_report_round_trips() {
        let mut events = Vec::new();
        for rid in 0..4u64 {
            events.push(ev(0, Track::Request(rid), "req:server", EventKind::Begin));
            events.push(ev(5, Track::Request(rid), "req:server", EventKind::End));
        }
        events.push(ev(0, Track::Request(9), "req:server", EventKind::Begin));
        events.push(ev(8, Track::Request(9), "req:server", EventKind::End));
        let rep = attribute("s", &Trace { events }, 3);
        let order: Vec<u64> = rep.slowest.iter().map(|r| r.rid).collect();
        assert_eq!(order, vec![9, 0, 1]);

        let rendered = rep.to_json().render();
        let back = AttributionReport::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, rep);
        assert_eq!(back.to_json().render(), rendered);
    }

    #[test]
    fn component_names_round_trip() {
        for c in Component::ALL {
            assert_eq!(Component::from_name(c.name()), Some(c));
        }
        assert_eq!(Component::from_name("nope"), None);
    }
}
