//! Regression root-cause diagnosis: turn a watched-metric delta into a
//! named cause.
//!
//! `repro diff BASELINE CURRENT` compares two artifact directories with the
//! ordinary watched-metric gate, then calls [`diagnose`] for every
//! regressed *latency* metric: the dominant attribution-component growth
//! between the two runs' [`AttributionReport`]s, the watched counters that
//! moved with it, and (when folded profiles are available) the profiler
//! frame whose self time grew the most. The output reads like
//! `p99 +12.3% — 83% of component growth from boot_wait (+1.2ms/req);
//! boots_cold +9; hottest growth [fallback:data] (+456µs)`.

use std::collections::BTreeMap;

use beehive_metrics::{Delta, ScenarioMetrics};

use crate::attribution::{AttributionReport, Component};

/// Counters worth naming next to a latency regression, in report order.
const DIAGNOSTIC_COUNTERS: [&str; 9] = [
    "boots_cold",
    "boots_warm",
    "fallbacks",
    "crashes",
    "retries",
    "degraded_to_server",
    "recoveries",
    "requests_offloaded",
    "gc_pause_ns",
];

/// The diagnosis attached to one regressed latency delta.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnosis {
    /// Scenario label.
    pub scenario: String,
    /// The regressed metric, e.g. `"request_latency.p99_ns"`.
    pub metric: String,
    /// Component with the largest per-request mean growth.
    pub dominant: Component,
    /// Its per-request mean growth in nanoseconds.
    pub dominant_delta_ns: i64,
    /// Its share of all positive per-request component growth, in percent
    /// (0–100).
    pub share_pct: u8,
    /// Watched counters that changed, `(name, current − baseline)`.
    pub counters: Vec<(String, i64)>,
    /// Profiler frame with the largest self-time growth, when folded
    /// profiles were available: `(frame, nanos grown)`.
    pub hottest_frame: Option<(String, u64)>,
}

impl Diagnosis {
    /// The one-line human rendering `repro diff` prints.
    pub fn render(&self) -> String {
        let mut out = if self.dominant_delta_ns > 0 {
            format!(
                "{}% of component growth from {} ({:+}us/req)",
                self.share_pct,
                self.dominant.name(),
                self.dominant_delta_ns / 1_000,
            )
        } else {
            // A quantile regressed while no per-request mean component grew:
            // the tail redistributed without the average moving.
            "no mean component growth (tail-only shift)".to_string()
        };
        for (name, delta) in &self.counters {
            out.push_str(&format!("; {name} {delta:+}"));
        }
        if let Some((frame, grown)) = &self.hottest_frame {
            out.push_str(&format!("; hottest growth {frame} (+{}us)", grown / 1_000));
        }
        out
    }
}

/// Per-request mean of every component, in nanoseconds.
fn means(r: &AttributionReport) -> [i64; crate::attribution::COMPONENTS] {
    let mut out = [0i64; crate::attribution::COMPONENTS];
    for c in Component::ALL {
        out[c as usize] = r.mean_ns(c) as i64;
    }
    out
}

/// Diagnose one regressed latency delta from the two runs' attribution
/// reports (matched by scenario label), metrics, and optional folded
/// profiles. `None` when either side lacks an attribution report for the
/// scenario or attributed no requests.
pub fn diagnose(
    delta: &Delta,
    base: Option<&AttributionReport>,
    cur: Option<&AttributionReport>,
    base_metrics: Option<&ScenarioMetrics>,
    cur_metrics: Option<&ScenarioMetrics>,
    folded: Option<(&str, &str)>,
) -> Option<Diagnosis> {
    let (base, cur) = (base?, cur?);
    if base.requests == 0 || cur.requests == 0 {
        return None;
    }
    let (bm, cm) = (means(base), means(cur));
    // Dominant growth: largest positive per-request mean delta; canonical
    // component order breaks ties.
    let mut dominant = Component::ServerAssist;
    let mut dominant_delta = i64::MIN;
    let mut positive_sum = 0i64;
    for c in Component::ALL {
        let d = cm[c as usize] - bm[c as usize];
        if d > 0 {
            positive_sum += d;
        }
        if d > dominant_delta {
            dominant = c;
            dominant_delta = d;
        }
    }
    let share_pct = if positive_sum > 0 && dominant_delta > 0 {
        ((dominant_delta * 100 + positive_sum / 2) / positive_sum).clamp(0, 100) as u8
    } else {
        0
    };

    let counters = match (base_metrics, cur_metrics) {
        (Some(b), Some(c)) => counter_deltas(b, c),
        _ => Vec::new(),
    };

    let hottest_frame = folded.and_then(|(b, c)| hottest_frame_growth(b, c, &delta.scenario));

    Some(Diagnosis {
        scenario: delta.scenario.clone(),
        metric: delta.metric.clone(),
        dominant,
        dominant_delta_ns: dominant_delta,
        share_pct,
        counters,
        hottest_frame,
    })
}

/// Changed diagnostic counters, `(name, current − baseline)`, fixed order.
pub fn counter_deltas(base: &ScenarioMetrics, cur: &ScenarioMetrics) -> Vec<(String, i64)> {
    DIAGNOSTIC_COUNTERS
        .iter()
        .filter_map(|&name| {
            let b = base.counter(name).map_or(0, |c| c.total) as i64;
            let c = cur.counter(name).map_or(0, |c| c.total) as i64;
            (b != c).then(|| (name.to_string(), c - b))
        })
        .collect()
}

/// Leaf-frame self time per scenario from a `repro --profile` folded file:
/// lines are `label;frame;...;leaf count`, label sanitized the way the
/// bench writer does (spaces and `;` become `_`).
fn leaf_self_times(folded: &str, label: &str) -> Option<BTreeMap<String, u64>> {
    let sanitized: String = label
        .chars()
        .map(|c| if c == ' ' || c == ';' { '_' } else { c })
        .collect();
    let stacks = beehive_profiler::parse_folded(folded).ok()?;
    let mut out = BTreeMap::new();
    for (frames, count) in stacks {
        if frames.first().map(String::as_str) != Some(sanitized.as_str()) {
            continue;
        }
        let Some(leaf) = frames.last() else { continue };
        *out.entry(leaf.clone()).or_insert(0) += count;
    }
    Some(out)
}

/// The frame whose self time grew the most between two folded profiles,
/// restricted to `label`'s stacks. `None` when nothing grew or either
/// profile is missing/unparseable. Ties break on the lexicographically
/// smaller frame so the answer is deterministic.
pub fn hottest_frame_growth(
    base_folded: &str,
    cur_folded: &str,
    label: &str,
) -> Option<(String, u64)> {
    let base = leaf_self_times(base_folded, label)?;
    let cur = leaf_self_times(cur_folded, label)?;
    let mut best: Option<(String, u64)> = None;
    for (frame, &ns) in &cur {
        let grown = ns.saturating_sub(base.get(frame).copied().unwrap_or(0));
        if grown == 0 {
            continue;
        }
        let better = match &best {
            None => true,
            Some((bf, bg)) => grown > *bg || (grown == *bg && frame < bf),
        };
        if better {
            best = Some((frame.clone(), grown));
        }
    }
    best
}

/// `true` when a watched-metric delta is a latency quantile worth
/// diagnosing (as opposed to an exact-count gate).
pub fn is_latency_metric(metric: &str) -> bool {
    metric.ends_with(".p50_ns") || metric.ends_with(".p99_ns") || metric.ends_with(".max_ns")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::COMPONENTS;
    use beehive_metrics::registry::Registry;
    use beehive_metrics::DEFAULT_WINDOW;
    use beehive_sim::SimTime;

    fn report(requests: u64, fill: &[(Component, u64)]) -> AttributionReport {
        let mut components = [0u64; COMPONENTS];
        let mut total = 0;
        for &(c, ns) in fill {
            components[c as usize] = ns;
            total += ns;
        }
        AttributionReport {
            label: "s".into(),
            requests,
            shadows: 0,
            total_ns: total,
            components,
            gc_pause_ns: 0,
            slowest: vec![],
        }
    }

    fn delta() -> Delta {
        Delta {
            scenario: "s".into(),
            metric: "request_latency.p99_ns".into(),
            baseline: Some(100),
            current: Some(200),
            tolerance: 0.10,
            regressed: true,
            improved: false,
        }
    }

    #[test]
    fn names_the_dominant_component_and_its_share() {
        // Per request: boot_wait grows 0 → 5µs, exec grows 1µs; boot wait
        // explains 5/6 ≈ 83% of the growth.
        let base = report(10, &[(Component::FaasExec, 10_000 * 10)]);
        let cur = report(
            10,
            &[
                (Component::FaasExec, 11_000 * 10),
                (Component::BootWait, 5_000 * 10),
            ],
        );
        let d = diagnose(&delta(), Some(&base), Some(&cur), None, None, None).unwrap();
        assert_eq!(d.dominant, Component::BootWait);
        assert_eq!(d.dominant_delta_ns, 5_000);
        assert_eq!(d.share_pct, 83);
        assert!(d
            .render()
            .contains("83% of component growth from boot_wait"));
        assert!(d.render().contains("+5us/req"));
    }

    #[test]
    fn counter_deltas_name_what_moved() {
        let mut b = Registry::new(DEFAULT_WINDOW);
        b.add("boots_cold", SimTime::ZERO, 1);
        b.add("fallbacks", SimTime::ZERO, 7);
        let mut c = Registry::new(DEFAULT_WINDOW);
        c.add("boots_cold", SimTime::ZERO, 10);
        c.add("fallbacks", SimTime::ZERO, 7);
        let deltas = counter_deltas(&b.snapshot("s"), &c.snapshot("s"));
        assert_eq!(deltas, vec![("boots_cold".to_string(), 9)]);
    }

    #[test]
    fn hottest_frame_growth_is_per_label_and_deterministic() {
        let base = "s;lane;[fallback:data] 100\ns;lane;work 500\nother;lane;work 9000\n";
        let cur = "s;lane;[fallback:data] 700\ns;lane;work 600\nother;lane;work 9000\n";
        let (frame, grown) = hottest_frame_growth(base, cur, "s").unwrap();
        assert_eq!(frame, "[fallback:data]");
        assert_eq!(grown, 600);
        // The other label's stacks never contaminate; no growth → None.
        assert_eq!(hottest_frame_growth(cur, cur, "s"), None);
        // Labels with spaces are matched through the writer's sanitization.
        let spaced_base = "a_b;lane;f 10\n";
        let spaced_cur = "a_b;lane;f 30\n";
        assert_eq!(
            hottest_frame_growth(spaced_base, spaced_cur, "a b"),
            Some(("f".to_string(), 20))
        );
    }

    #[test]
    fn degenerate_inputs_yield_no_diagnosis() {
        let empty = report(0, &[]);
        let full = report(5, &[(Component::ServerExec, 5_000)]);
        assert!(diagnose(&delta(), Some(&empty), Some(&full), None, None, None).is_none());
        assert!(diagnose(&delta(), None, Some(&full), None, None, None).is_none());
        // A diff where nothing grew per request (a pure tail shift) says so
        // instead of pretending a zero-delta component is the cause.
        let d = diagnose(&delta(), Some(&full), Some(&full), None, None, None).unwrap();
        assert_eq!(d.share_pct, 0);
        assert!(d.render().contains("tail-only shift"));
    }

    #[test]
    fn latency_metric_filter() {
        assert!(is_latency_metric("request_latency.p99_ns"));
        assert!(is_latency_metric("recovery_latency.p99_ns"));
        assert!(!is_latency_metric("fallbacks.total"));
    }
}
