//! beehive-insight — latency attribution, SLO evaluation, and regression
//! root-cause diagnosis for the BeeHive reproduction.
//!
//! Three layers, all consuming artifacts the rest of the workspace already
//! produces, with zero external dependencies:
//!
//! * [`attribution`] — folds a recorded [`beehive_telemetry::Trace`] into
//!   per-request latency decompositions whose typed components sum
//!   *exactly* to the measured latency (queue wait, execution, boot wait,
//!   fallback round trips by kind, monitor sync, lock wait, DB/net waits,
//!   recovery), plus slowest-K exemplar breakdowns per scenario,
//! * [`slo`] — evaluates completed requests against a latency objective on
//!   virtual time: error-budget accounting and maximum multi-window burn
//!   rates, all in integer basis points,
//! * [`diff`] — explains a regressed watched-metric delta: the dominant
//!   component growth, the counters that moved, and the hottest grown
//!   profiler frame.
//!
//! The `repro explain` and `repro diff` subcommands are thin CLI shells
//! over this crate; everything here is deterministic, so their outputs are
//! byte-identical across worker counts and golden-diffed by
//! `scripts/verify.sh`.

#![warn(missing_docs)]

pub mod attribution;
pub mod diff;
pub mod slo;

pub use attribution::{attribute, attribute_all, AttributionReport, Component, RequestAttribution};
pub use diff::{counter_deltas, diagnose, hottest_frame_growth, is_latency_metric, Diagnosis};
pub use slo::{evaluate, evaluate_all, SloPolicy, SloReport};

use beehive_sim::json::Json;

/// The on-disk `*.insight.json` document: one attribution report and one
/// SLO report per scenario of an item, in run order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InsightDoc {
    /// Per-scenario latency attributions.
    pub attributions: Vec<AttributionReport>,
    /// Per-scenario SLO evaluations (same scenario order).
    pub slo: Vec<SloReport>,
}

impl InsightDoc {
    /// Build the document from a run's labelled traces.
    pub fn from_traces(
        traces: &[(String, beehive_telemetry::Trace)],
        policy: &SloPolicy,
        k: usize,
    ) -> InsightDoc {
        InsightDoc {
            attributions: attribute_all(traces, k),
            slo: evaluate_all(policy, traces),
        }
    }

    /// Find a scenario's attribution report by label.
    pub fn attribution(&self, label: &str) -> Option<&AttributionReport> {
        self.attributions.iter().find(|r| r.label == label)
    }

    /// Render to the `*.insight.json` shape:
    /// `{"scenarios": [...], "slo": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "scenarios".into(),
                Json::Arr(self.attributions.iter().map(|r| r.to_json()).collect()),
            ),
            (
                "slo".into(),
                Json::Arr(self.slo.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }

    /// Strict inverse of [`InsightDoc::to_json`].
    pub fn parse(text: &str) -> Result<InsightDoc, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        let Some(Json::Arr(scenarios)) = j.get("scenarios") else {
            return Err("missing scenarios array".into());
        };
        let Some(Json::Arr(slo)) = j.get("slo") else {
            return Err("missing slo array".into());
        };
        Ok(InsightDoc {
            attributions: scenarios
                .iter()
                .map(AttributionReport::from_json)
                .collect::<Result<_, _>>()?,
            slo: slo
                .iter()
                .map(SloReport::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_sim::{Duration, SimTime};
    use beehive_telemetry::{EventKind, Trace, TraceEvent, Track};

    #[test]
    fn doc_round_trips_through_json() {
        let mut events = Vec::new();
        for rid in 0..3u64 {
            events.push(TraceEvent {
                at: SimTime::ZERO + Duration::from_millis(rid),
                track: Track::Request(rid),
                name: "req:server",
                kind: EventKind::Begin,
                args: vec![],
            });
            events.push(TraceEvent {
                at: SimTime::ZERO + Duration::from_millis(rid + 2),
                track: Track::Request(rid),
                name: "req:server",
                kind: EventKind::End,
                args: vec![],
            });
        }
        let traces = vec![("s".to_string(), Trace { events })];
        let doc = InsightDoc::from_traces(&traces, &SloPolicy::default(), 5);
        assert_eq!(doc.attributions.len(), 1);
        assert_eq!(doc.attribution("s").unwrap().requests, 3);
        assert!(doc.attribution("nope").is_none());
        let rendered = doc.to_json().render();
        let back = InsightDoc::parse(&rendered).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.to_json().render(), rendered);
    }
}
