//! SLO evaluation on virtual time: error budgets and multi-window burn
//! rates.
//!
//! [`evaluate`] replays the completed requests of a trace (latency measured
//! arrival → completion, exactly like the driver's `request_latency`
//! histogram) against an [`SloPolicy`]: a latency threshold, an objective
//! (the fraction of requests that must meet it), and a set of trailing
//! windows. The report carries total/good/bad counts, the consumed error
//! budget, and — per window — the *maximum* burn rate any window-sized
//! slice of the run reached, the multi-window alerting signal of classic
//! SRE practice transplanted onto the simulation's virtual clock. All
//! rates are integer basis points, so rendered reports stay byte-stable.

use beehive_sim::json::Json;
use beehive_sim::{Duration, SimTime};
use beehive_telemetry::summary::request_timelines;
use beehive_telemetry::Trace;

/// One service-level objective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloPolicy {
    /// A request is *good* when its latency is at or under this threshold.
    pub threshold: Duration,
    /// Required good fraction, in basis points (9_900 = 99.00%). Must be
    /// below 10_000 so the error budget is non-empty.
    pub objective_bp: u32,
    /// Trailing windows to compute maximum burn rates over.
    pub windows: Vec<Duration>,
}

impl Default for SloPolicy {
    /// 500 ms p99-style objective (99% of requests under 500 ms) with
    /// 1 s / 5 s / 30 s burn windows — sized for the paper's burst
    /// scenarios, whose quick horizons are tens of seconds.
    fn default() -> SloPolicy {
        SloPolicy {
            threshold: Duration::from_millis(500),
            objective_bp: 9_900,
            windows: vec![
                Duration::from_secs(1),
                Duration::from_secs(5),
                Duration::from_secs(30),
            ],
        }
    }
}

/// Burn rate cap: rates render as `min(rate, 1000.0)`× budget, expressed
/// in basis points of the budget-burn ratio (10_000 bp = burning exactly
/// the budget). Keeps a scenario with a zero-width budget from rendering
/// astronomically.
pub const BURN_CAP_BP: u64 = 10_000_000;

/// The evaluation outcome for one scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SloReport {
    /// Scenario label.
    pub label: String,
    /// The policy's threshold in nanoseconds.
    pub threshold_ns: u64,
    /// The policy's objective in basis points.
    pub objective_bp: u32,
    /// Completed requests evaluated.
    pub total: u64,
    /// Requests at or under the threshold.
    pub good: u64,
    /// Requests over the threshold.
    pub bad: u64,
    /// Consumed error budget in basis points of the allowed bad count
    /// (10_000 = the whole budget is gone), capped at [`BURN_CAP_BP`].
    pub budget_consumed_bp: u64,
    /// `(window_ns, max_burn_bp)` per policy window: the worst
    /// window-sized slice's bad fraction over the budget fraction, in
    /// basis points, capped at [`BURN_CAP_BP`].
    pub burn: Vec<(u64, u64)>,
}

impl SloReport {
    /// `true` when the whole-run good fraction meets the objective.
    pub fn met(&self) -> bool {
        // good/total >= objective  ⇔  good * 10_000 >= objective * total,
        // kept in integers (vacuously met with no traffic).
        self.good as u128 * 10_000 >= self.objective_bp as u128 * self.total as u128
    }

    /// JSON shape (round-trips through [`SloReport::from_json`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label".into(), Json::from(self.label.clone())),
            ("threshold_ns".into(), Json::Int(self.threshold_ns as i128)),
            ("objective_bp".into(), Json::Int(self.objective_bp as i128)),
            ("total".into(), Json::Int(self.total as i128)),
            ("good".into(), Json::Int(self.good as i128)),
            ("bad".into(), Json::Int(self.bad as i128)),
            ("met".into(), Json::from(self.met())),
            (
                "budget_consumed_bp".into(),
                Json::Int(self.budget_consumed_bp as i128),
            ),
            (
                "burn".into(),
                Json::Arr(
                    self.burn
                        .iter()
                        .map(|(w, b)| {
                            Json::obj([
                                ("window_ns".into(), Json::Int(*w as i128)),
                                ("max_burn_bp".into(), Json::Int(*b as i128)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Strict inverse of [`SloReport::to_json`] (the derived `met` field is
    /// recomputed, not trusted).
    pub fn from_json(j: &Json) -> Result<SloReport, String> {
        fn u64_field(j: &Json, key: &str) -> Result<u64, String> {
            match j.get(key) {
                Some(Json::Int(v)) if *v >= 0 => Ok(*v as u64),
                _ => Err(format!("missing or invalid {key:?}")),
            }
        }
        let label = match j.get("label") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err("missing label".into()),
        };
        let mut burn = Vec::new();
        match j.get("burn") {
            Some(Json::Arr(items)) => {
                for item in items {
                    burn.push((
                        u64_field(item, "window_ns")?,
                        u64_field(item, "max_burn_bp")?,
                    ));
                }
            }
            _ => return Err("missing burn array".into()),
        }
        Ok(SloReport {
            label,
            threshold_ns: u64_field(j, "threshold_ns")?,
            objective_bp: u64_field(j, "objective_bp")? as u32,
            total: u64_field(j, "total")?,
            good: u64_field(j, "good")?,
            bad: u64_field(j, "bad")?,
            budget_consumed_bp: u64_field(j, "budget_consumed_bp")?,
            burn,
        })
    }
}

/// `bad/total` over the budget fraction `1 - objective`, in basis points,
/// capped. Integer arithmetic throughout: burn_bp =
/// `bad * 10_000² / (total * (10_000 - objective_bp))`.
fn burn_bp(bad: u64, total: u64, objective_bp: u32) -> u64 {
    if total == 0 {
        return 0;
    }
    let budget = 10_000u128.saturating_sub(objective_bp as u128);
    if budget == 0 {
        return if bad > 0 { BURN_CAP_BP } else { 0 };
    }
    let bp = (bad as u128 * 10_000 * 10_000) / (total as u128 * budget);
    (bp as u64).min(BURN_CAP_BP)
}

/// Evaluate one labelled trace against a policy.
///
/// Completions are taken from the request timelines ( `req:server` and
/// `req:offload` sessions), each charged its boot wait so the latency is
/// the same arrival-to-completion quantity the metrics histogram records.
pub fn evaluate(policy: &SloPolicy, label: &str, trace: &Trace) -> SloReport {
    // (completion time, latency_ns), in completion order.
    let mut done: Vec<(SimTime, u64)> = Vec::new();
    for t in request_timelines(trace) {
        let (Some(kind), Some(end)) = (t.kind, t.end) else {
            continue;
        };
        if kind != "req:server" && kind != "req:offload" {
            continue;
        }
        let boot: u64 = t
            .completes
            .iter()
            .filter(|(n, _, _)| *n == "boot:wait")
            .map(|(_, _, d)| d.as_nanos())
            .sum();
        done.push((end, end.saturating_since(t.start).as_nanos() + boot));
    }
    done.sort();

    let threshold_ns = policy.threshold.as_nanos();
    let total = done.len() as u64;
    let bad = done.iter().filter(|&&(_, ns)| ns > threshold_ns).count() as u64;
    let good = total - bad;

    // Whole-run budget: allowed bad = total * (1 - objective); consumed =
    // bad / allowed, in basis points.
    let budget_consumed_bp = burn_bp(bad, total, policy.objective_bp);

    // Per window, the maximum burn over every trailing window ending at a
    // completion instant (two pointers over the sorted completions).
    let burn = policy
        .windows
        .iter()
        .map(|w| {
            let w_ns = w.as_nanos();
            let mut lo = 0usize;
            let mut bad_w = 0u64;
            let mut max_bp = 0u64;
            for hi in 0..done.len() {
                if done[hi].1 > threshold_ns {
                    bad_w += 1;
                }
                // Trailing window (end - w, end]: evict completions at or
                // before the window's left edge.
                let left = done[hi].0.saturating_since(SimTime::ZERO).as_nanos();
                while done[lo].0.saturating_since(SimTime::ZERO).as_nanos() + w_ns <= left {
                    if done[lo].1 > threshold_ns {
                        bad_w -= 1;
                    }
                    lo += 1;
                }
                let in_window = (hi - lo + 1) as u64;
                max_bp = max_bp.max(burn_bp(bad_w, in_window, policy.objective_bp));
            }
            (w_ns, max_bp)
        })
        .collect();

    SloReport {
        label: label.to_string(),
        threshold_ns,
        objective_bp: policy.objective_bp,
        total,
        good,
        bad,
        budget_consumed_bp,
        burn,
    }
}

/// Evaluate every labelled trace of a run, in input order.
pub fn evaluate_all(policy: &SloPolicy, traces: &[(String, Trace)]) -> Vec<SloReport> {
    traces
        .iter()
        .map(|(label, t)| evaluate(policy, label, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_telemetry::{EventKind, TraceEvent, Track};

    fn ev(ms: u64, rid: u64, name: &'static str, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::ZERO + Duration::from_millis(ms),
            track: Track::Request(rid),
            name,
            kind,
            args: vec![],
        }
    }

    /// `n` requests completing 1 s apart; the first `slow` of them take
    /// 600 ms (over the default 500 ms threshold), the rest 100 ms.
    fn trace(n: u64, slow: u64) -> Trace {
        let mut events = Vec::new();
        for rid in 0..n {
            let latency = if rid < slow { 600 } else { 100 };
            let end = (rid + 1) * 1_000;
            events.push(ev(end - latency, rid, "req:server", EventKind::Begin));
            events.push(ev(end, rid, "req:server", EventKind::End));
        }
        Trace { events }
    }

    #[test]
    fn counts_budget_and_met_flag() {
        let policy = SloPolicy::default();
        // 100 requests, 1 slow: exactly at the 99% objective.
        let r = evaluate(&policy, "s", &trace(100, 1));
        assert_eq!((r.total, r.good, r.bad), (100, 99, 1));
        assert!(r.met());
        // Budget is 1% of 100 = 1 request; one bad request consumed it all.
        assert_eq!(r.budget_consumed_bp, 10_000);
        // 3 slow: objective missed, budget 3× overspent.
        let r = evaluate(&policy, "s", &trace(100, 3));
        assert!(!r.met());
        assert_eq!(r.budget_consumed_bp, 30_000);
        // No traffic: vacuously met, nothing burned.
        let r = evaluate(&policy, "s", &trace(0, 0));
        assert!(r.met());
        assert_eq!(r.budget_consumed_bp, 0);
    }

    #[test]
    fn boot_wait_counts_toward_the_slo_latency() {
        // 400 ms session + 200 ms boot wait: over the 500 ms threshold.
        let mut events = vec![
            ev(200, 1, "req:offload", EventKind::Begin),
            ev(600, 1, "req:offload", EventKind::End),
        ];
        events.insert(
            1,
            TraceEvent {
                at: SimTime::ZERO + Duration::from_millis(200),
                track: Track::Request(1),
                name: "boot:wait",
                kind: EventKind::Complete(Duration::from_millis(200)),
                args: vec![],
            },
        );
        let r = evaluate(&SloPolicy::default(), "s", &Trace { events });
        assert_eq!((r.total, r.bad), (1, 1));
    }

    #[test]
    fn short_windows_catch_bursts_the_full_run_hides() {
        let policy = SloPolicy {
            threshold: Duration::from_millis(500),
            objective_bp: 9_000, // 90%: budget fraction 10%
            windows: vec![Duration::from_secs(2), Duration::from_secs(3600)],
        };
        // 100 requests; the 2 slow ones complete back to back, so a 2 s
        // window sees 2 bad of 2 (burn 100%/10% = 10× = 100_000 bp) while
        // the hour window peaks right after the burst at 2 bad of 52
        // (3.846%/10% ≈ 0.38× = 3_846 bp).
        let mut events = Vec::new();
        for rid in 0..100u64 {
            let latency = if rid == 50 || rid == 51 { 600 } else { 100 };
            let end = (rid + 1) * 1_000;
            events.push(ev(end - latency, rid, "req:server", EventKind::Begin));
            events.push(ev(end, rid, "req:server", EventKind::End));
        }
        let r = evaluate(&policy, "s", &Trace { events });
        assert_eq!(r.burn[0].1, 100_000, "short window: {:?}", r.burn);
        assert_eq!(r.burn[1].1, 3_846, "long window: {:?}", r.burn);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = evaluate(&SloPolicy::default(), "s", &trace(20, 2));
        let rendered = r.to_json().render();
        let back = SloReport::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json().render(), rendered);
    }
}
