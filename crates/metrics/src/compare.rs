//! Cross-run regression comparison of metrics snapshots.
//!
//! `repro compare BASELINE CURRENT` feeds two parsed [`MetricsSnapshot`]s
//! through [`compare`]: every watched metric (the [`WATCHED`] table) is
//! diffed per scenario, and a delta beyond the metric's declared tolerance
//! marks the run regressed. `scripts/verify.sh` runs this against the
//! checked-in golden baseline, turning the perf claims of the paper
//! reproduction into a gate instead of a graph someone has to eyeball.

use crate::registry::{MetricsSnapshot, ScenarioMetrics};

/// One watched metric: a name, the statistic compared, and the tolerated
/// relative increase (0.0 = any increase regresses).
#[derive(Clone, Copy, Debug)]
pub struct Watched {
    /// Metric name in the snapshot.
    pub metric: &'static str,
    /// `"total"` for counters, a quantile field for histograms.
    pub stat: &'static str,
    /// Tolerated relative increase over baseline (e.g. `0.10` = +10%).
    pub tolerance: f64,
}

/// The watched-metric table: request latency quantiles may grow 10%,
/// fallback and cold-boot counts not at all, total GC pause 10%. Chaos
/// runs additionally hold their fault counts exactly (the plans are
/// deterministic) and their recovery latency / re-executed time to 10%;
/// fault-free runs never record those metrics, so the entries bind
/// nothing there.
pub const WATCHED: [Watched; 10] = [
    Watched {
        metric: "request_latency",
        stat: "p50_ns",
        tolerance: 0.10,
    },
    Watched {
        metric: "request_latency",
        stat: "p99_ns",
        tolerance: 0.10,
    },
    Watched {
        metric: "fallbacks",
        stat: "total",
        tolerance: 0.0,
    },
    Watched {
        metric: "boots_cold",
        stat: "total",
        tolerance: 0.0,
    },
    Watched {
        metric: "gc_pause_ns",
        stat: "total",
        tolerance: 0.10,
    },
    Watched {
        metric: "crashes",
        stat: "total",
        tolerance: 0.0,
    },
    Watched {
        metric: "retries",
        stat: "total",
        tolerance: 0.0,
    },
    Watched {
        metric: "degraded_to_server",
        stat: "total",
        tolerance: 0.0,
    },
    Watched {
        metric: "recovery_latency",
        stat: "p99_ns",
        tolerance: 0.10,
    },
    Watched {
        metric: "re_executed_ns",
        stat: "total",
        tolerance: 0.10,
    },
];

/// One per-scenario, per-metric comparison outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct Delta {
    /// Scenario label.
    pub scenario: String,
    /// `metric.stat`, e.g. `"request_latency.p99_ns"`.
    pub metric: String,
    /// Baseline value (`None` when the baseline lacks the metric).
    pub baseline: Option<u64>,
    /// Current value (`None` when the current run lacks the metric).
    pub current: Option<u64>,
    /// Tolerated relative increase.
    pub tolerance: f64,
    /// `true` when the current value exceeds baseline × (1 + tolerance), or
    /// the metric/scenario disappeared.
    pub regressed: bool,
    /// `true` when the current value cleared the tolerance band *downward*:
    /// below baseline × (1 − tolerance), or simply below baseline for
    /// zero-tolerance metrics. Informational only — improvements never
    /// change the exit code, they just tell the reader a delta is a win
    /// rather than noise inside the band.
    pub improved: bool,
}

impl Delta {
    /// Relative change, `current / baseline - 1` (0 for 0→0).
    pub fn relative(&self) -> f64 {
        match (self.baseline, self.current) {
            (Some(0), Some(0)) => 0.0,
            (Some(0), Some(_)) => f64::INFINITY,
            (Some(b), Some(c)) => c as f64 / b as f64 - 1.0,
            _ => f64::NAN,
        }
    }
}

fn stat_of(s: &ScenarioMetrics, w: &Watched) -> Option<u64> {
    if w.stat == "total" {
        return s.counter(w.metric).map(|c| c.total);
    }
    let h = s.histogram(w.metric)?;
    match w.stat {
        "p50_ns" => Some(h.p50_ns),
        "p90_ns" => Some(h.p90_ns),
        "p99_ns" => Some(h.p99_ns),
        "max_ns" => Some(h.max_ns),
        "count" => Some(h.count),
        "sum_ns" => Some(h.sum_ns),
        _ => None,
    }
}

/// Diff every watched metric of `current` against `baseline`, scenario by
/// scenario (matched by label). A scenario present in the baseline but
/// missing from the current run yields one regressed delta; scenarios only
/// in the current run are ignored (new coverage is not a regression).
pub fn compare(baseline: &MetricsSnapshot, current: &MetricsSnapshot) -> Vec<Delta> {
    let mut out = Vec::new();
    for base in &baseline.scenarios {
        let Some(cur) = current.scenarios.iter().find(|s| s.label == base.label) else {
            out.push(Delta {
                scenario: base.label.clone(),
                metric: "(scenario)".to_string(),
                baseline: None,
                current: None,
                tolerance: 0.0,
                regressed: true,
                improved: false,
            });
            continue;
        };
        for w in &WATCHED {
            let b = stat_of(base, w);
            let c = stat_of(cur, w);
            let regressed = match (b, c) {
                (None, _) => false, // baseline never recorded it: nothing to hold
                (Some(_), None) => true,
                (Some(b), Some(c)) => c as f64 > b as f64 * (1.0 + w.tolerance),
            };
            // The mirror image of the regression rule: strictly below the
            // lower edge of the tolerance band (strictly below baseline for
            // zero-tolerance metrics, where the band has no width).
            let improved = match (b, c) {
                (Some(b), Some(c)) => (c as f64) < b as f64 * (1.0 - w.tolerance),
                _ => false,
            };
            if b.is_none() && c.is_none() {
                continue;
            }
            out.push(Delta {
                scenario: base.label.clone(),
                metric: format!("{}.{}", w.metric, w.stat),
                baseline: b,
                current: c,
                tolerance: w.tolerance,
                regressed,
                improved,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Registry, DEFAULT_WINDOW};
    use beehive_sim::{Duration, SimTime};

    fn snap(p99_ms: u64, fallbacks: u64) -> MetricsSnapshot {
        let mut r = Registry::new(DEFAULT_WINDOW);
        let at = SimTime::ZERO + Duration::from_millis(1);
        for _ in 0..90 {
            r.observe("request_latency", at, Duration::from_millis(1));
        }
        for _ in 0..10 {
            r.observe("request_latency", at, Duration::from_millis(p99_ms));
        }
        if fallbacks > 0 {
            r.add("fallbacks", at, fallbacks);
        }
        MetricsSnapshot {
            window: DEFAULT_WINDOW,
            scenarios: vec![r.snapshot("s")],
        }
    }

    #[test]
    fn identical_snapshots_do_not_regress() {
        let a = snap(50, 2);
        let deltas = compare(&a, &a.clone());
        assert!(!deltas.is_empty());
        assert!(deltas.iter().all(|d| !d.regressed), "{deltas:?}");
    }

    #[test]
    fn perturbed_p99_regresses_and_names_the_metric() {
        let deltas = compare(&snap(50, 2), &snap(100, 2));
        let bad: Vec<&Delta> = deltas.iter().filter(|d| d.regressed).collect();
        assert!(!bad.is_empty());
        assert!(bad.iter().any(|d| d.metric == "request_latency.p99_ns"));
    }

    #[test]
    fn zero_tolerance_counters_hold_exactly() {
        let deltas = compare(&snap(50, 2), &snap(50, 3));
        assert!(deltas
            .iter()
            .any(|d| d.metric == "fallbacks.total" && d.regressed));
        // Within 10% latency tolerance nothing else fires.
        assert!(deltas
            .iter()
            .all(|d| d.regressed == (d.metric == "fallbacks.total")));
    }

    #[test]
    fn exactly_at_tolerance_passes_and_one_past_it_regresses() {
        fn gc(total_ns: u64) -> MetricsSnapshot {
            let mut r = Registry::new(DEFAULT_WINDOW);
            r.add("gc_pause_ns", SimTime::ZERO, total_ns);
            MetricsSnapshot {
                window: DEFAULT_WINDOW,
                scenarios: vec![r.snapshot("s")],
            }
        }
        let base = gc(1_000_000);
        // gc_pause_ns tolerates +10%: exactly baseline × 1.1 is *within*
        // tolerance (the rule is strictly-greater-than)…
        let at = compare(&base, &gc(1_100_000));
        let d = at.iter().find(|d| d.metric == "gc_pause_ns.total").unwrap();
        assert!(!d.regressed, "exactly +10% must pass: {d:?}");
        // …and the smallest representable step past it regresses.
        let over = compare(&base, &gc(1_100_001));
        let d = over
            .iter()
            .find(|d| d.metric == "gc_pause_ns.total")
            .unwrap();
        assert!(d.regressed, "one nanosecond past +10% must fail: {d:?}");
        // Zero tolerance: equal holds, the smallest increase regresses.
        let deltas = compare(&snap(50, 2), &snap(50, 2));
        let d = deltas
            .iter()
            .find(|d| d.metric == "fallbacks.total")
            .unwrap();
        assert!(!d.regressed);
    }

    #[test]
    fn metric_missing_from_current_is_reported_by_name() {
        // Baseline recorded fallbacks; the current run lacks the counter
        // entirely. The delta must name the metric and regress.
        let deltas = compare(&snap(50, 2), &snap(50, 0));
        let d = deltas
            .iter()
            .find(|d| d.metric == "fallbacks.total")
            .expect("the vanished metric is reported by name");
        assert_eq!(d.baseline, Some(2));
        assert_eq!(d.current, None);
        assert!(d.regressed);
        // The converse direction is not a regression: a metric the baseline
        // never recorded imposes no bound on the current run.
        let deltas = compare(&snap(50, 0), &snap(50, 2));
        assert!(deltas
            .iter()
            .all(|d| d.metric != "fallbacks.total" || !d.regressed));
    }

    #[test]
    fn improvements_are_flagged_without_regressing() {
        // p99 halves: well below baseline × 0.9, so the delta is an
        // improvement — and still not a regression.
        let deltas = compare(&snap(100, 2), &snap(50, 2));
        let d = deltas
            .iter()
            .find(|d| d.metric == "request_latency.p99_ns")
            .unwrap();
        assert!(d.improved && !d.regressed, "{d:?}");
        // A zero-tolerance counter improves on any strict decrease…
        let d = deltas.iter().find(|d| d.metric == "fallbacks.total");
        assert!(d.is_none() || !d.unwrap().improved);
        let deltas = compare(&snap(50, 3), &snap(50, 2));
        let d = deltas
            .iter()
            .find(|d| d.metric == "fallbacks.total")
            .unwrap();
        assert!(d.improved && !d.regressed, "{d:?}");
        // …and an unchanged run improves nothing.
        let a = snap(50, 2);
        let deltas = compare(&a, &a.clone());
        assert!(deltas.iter().all(|d| !d.improved), "{deltas:?}");
        // Inside the tolerance band (−10% exactly is *not* strictly below
        // the lower edge) a shrink is neither regression nor improvement.
        fn gc(total_ns: u64) -> MetricsSnapshot {
            let mut r = Registry::new(DEFAULT_WINDOW);
            r.add("gc_pause_ns", SimTime::ZERO, total_ns);
            MetricsSnapshot {
                window: DEFAULT_WINDOW,
                scenarios: vec![r.snapshot("s")],
            }
        }
        let deltas = compare(&gc(1_000_000), &gc(900_000));
        let d = deltas
            .iter()
            .find(|d| d.metric == "gc_pause_ns.total")
            .unwrap();
        assert!(!d.improved && !d.regressed, "{d:?}");
        let deltas = compare(&gc(1_000_000), &gc(899_999));
        let d = deltas
            .iter()
            .find(|d| d.metric == "gc_pause_ns.total")
            .unwrap();
        assert!(d.improved, "{d:?}");
    }

    #[test]
    fn missing_scenario_is_a_regression() {
        let mut cur = snap(50, 2);
        cur.scenarios[0].label = "renamed".to_string();
        let deltas = compare(&snap(50, 2), &cur);
        assert!(deltas
            .iter()
            .any(|d| d.metric == "(scenario)" && d.regressed));
    }
}
