//! HDR-style log-linear histogram over `u64` nanoseconds.
//!
//! The bucket layout is *fixed*: every histogram, whatever it has recorded,
//! uses the same 976-bucket grid, so merged or exported output is
//! byte-stable across worker counts and runs. Values 0–15 get one exact
//! bucket each; every larger power-of-two octave is split into 16 linear
//! sub-buckets, bounding the relative quantization error at 1/16 (6.25%) —
//! a factor-of-two improvement squared over the pure log₂
//! [`beehive_telemetry::LogHistogram`], which the critical-path summary
//! keeps for its coarser per-phase tables.

/// Bits of linear resolution within one octave (16 sub-buckets).
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;

/// Total buckets in the fixed layout: 16 exact values plus 16 sub-buckets
/// for each octave `[2^4, 2^64)`.
pub const BUCKETS: usize = (SUB as usize) * 61;

/// A log-linear histogram of nanosecond values with a fixed bucket layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogLinearHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        LogLinearHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LogLinearHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index holding `v`.
    pub fn bucket_of(v: u64) -> usize {
        if v < SUB {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros() as u64; // >= SUB_BITS
        let sub = (v >> (octave - SUB_BITS as u64)) & (SUB - 1);
        (SUB * (octave - SUB_BITS as u64 + 1) + sub) as usize
    }

    /// The highest value contained in bucket `b` (inverse of
    /// [`Self::bucket_of`], up to quantization). This is the value quantiles
    /// report, so quantiles never under-state.
    pub fn bucket_value(b: usize) -> u64 {
        let b = b as u64;
        if b < SUB {
            return b;
        }
        let octave = b / SUB + SUB_BITS as u64 - 1;
        let sub = b % SUB;
        // u128 intermediate: the top bucket's exclusive upper bound is 2^64.
        ((((SUB + sub + 1) as u128) << (octave - SUB_BITS as u64)) - 1) as u64
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (nearest-rank), reported as the upper value of the
    /// bucket holding that rank; 0 when empty. Deterministic and
    /// integer-valued — the form snapshots and golden files store.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(index, count)` pairs in index order — the
    /// sparse form snapshots serialize.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64, c))
            .collect()
    }

    /// Rebuild a histogram from sparse `(index, count)` pairs plus the
    /// moments a snapshot carries (used by the JSON round-trip).
    pub fn from_parts(buckets: &[(u64, u64)], count: u64, sum: u64, max: u64) -> Option<Self> {
        let mut h = LogLinearHistogram {
            counts: vec![0; BUCKETS],
            count,
            sum,
            max,
        };
        for &(i, c) in buckets {
            *h.counts.get_mut(i as usize)? += c;
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(LogLinearHistogram::bucket_of(v), v as usize);
            assert_eq!(LogLinearHistogram::bucket_value(v as usize), v);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = 0;
        for v in [16u64, 17, 31, 32, 33, 1_000, 1_000_000, u64::MAX] {
            let b = LogLinearHistogram::bucket_of(v);
            assert!(b >= prev, "bucket_of({v}) went backwards");
            assert!(b < BUCKETS);
            assert!(LogLinearHistogram::bucket_value(b) >= v);
            prev = b;
        }
        // Every bucket's upper value maps back to the same bucket.
        for b in 0..BUCKETS {
            let v = LogLinearHistogram::bucket_value(b);
            assert_eq!(LogLinearHistogram::bucket_of(v), b, "bucket {b}");
        }
    }

    #[test]
    fn bucket_edges_are_exact() {
        // Octave boundaries: 2^o opens bucket 16*(o-3) and 2^o - 1 closes
        // the bucket just below it, for every octave above the linear range.
        for o in 5..64u32 {
            let v = 1u64 << o;
            let b = 16 * (o as usize - 3);
            assert_eq!(LogLinearHistogram::bucket_of(v), b, "2^{o}");
            assert_eq!(LogLinearHistogram::bucket_of(v - 1), b - 1, "2^{o} - 1");
        }
        // Sub-bucket lower edges: (16 + s) << (o - 4) starts sub-bucket s of
        // octave o exactly.
        for o in 4..64u32 {
            for s in 0..16u64 {
                let v = (16 + s) << (o - 4);
                assert_eq!(
                    LogLinearHistogram::bucket_of(v),
                    16 * (o as usize - 3) + s as usize,
                    "octave {o} sub {s}"
                );
            }
        }
        // The extremes: zero is the first bucket, u64::MAX the last, and the
        // last bucket's upper value is u64::MAX itself (quantiles saturate
        // instead of overflowing).
        assert_eq!(LogLinearHistogram::bucket_of(0), 0);
        assert_eq!(LogLinearHistogram::bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(LogLinearHistogram::bucket_value(BUCKETS - 1), u64::MAX);
        // One past any bucket's upper value lands in the next bucket: the
        // partition has no gaps and no overlaps.
        for b in 0..BUCKETS - 1 {
            let ub = LogLinearHistogram::bucket_value(b);
            assert_eq!(LogLinearHistogram::bucket_of(ub + 1), b + 1, "bucket {b}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 12_345, 7_777_777, 123_456_789_123] {
            let ub = LogLinearHistogram::bucket_value(LogLinearHistogram::bucket_of(v));
            assert!(ub >= v);
            assert!(
                (ub - v) as f64 / v as f64 <= 1.0 / 16.0,
                "value {v} bound {ub}"
            );
        }
    }

    #[test]
    fn quantiles_and_moments() {
        let mut h = LogLinearHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 90 + 1_000_000);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.quantile(0.5), 10); // exact small-value bucket
        let p99 = h.quantile(0.99);
        assert!((1_000_000..=1_000_000 + 1_000_000 / 16).contains(&p99));
    }

    #[test]
    fn sparse_round_trip() {
        let mut h = LogLinearHistogram::new();
        for v in [0u64, 5, 1_000, 123_456_789] {
            h.record(v);
        }
        let back =
            LogLinearHistogram::from_parts(&h.nonzero_buckets(), h.count(), h.sum(), h.max())
                .unwrap();
        assert_eq!(back, h);
    }
}
