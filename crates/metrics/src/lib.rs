//! # beehive-metrics — virtual-time time-series metrics
//!
//! A zero-dependency metrics substrate for the reproduction: counters,
//! gauges and HDR-style log-linear histograms sampled on the simulation's
//! *virtual* clock, bucketed into windowed time series (default 1 s of
//! virtual time). Everything is deterministic by construction — fixed
//! histogram bucket layout, name-sorted snapshots, integer nanoseconds —
//! so exported metrics are byte-identical for a fixed seed at any
//! `BEEHIVE_WORKERS`.
//!
//! Two producers feed the same [`Registry`] shape:
//!
//! * the workload driver instruments its call sites directly
//!   (`SimConfig::metrics`), which costs nothing when disabled, and
//! * [`mod@reduce`] replays a recorded [`beehive_telemetry`] trace through a
//!   registry, so a traced run and an untraced run of the same scenario
//!   produce the same `.metrics.json`.
//!
//! Exports: [`MetricsSnapshot`] renders through the in-tree
//! `beehive_sim::json` (and parses back via [`MetricsSnapshot::from_json`]),
//! and [`prometheus`] writes the Prometheus text exposition format.
//! [`mod@compare`] diffs two snapshots over the [`WATCHED`] metric table —
//! P50/P99 request latency, fallback count, cold-boot count, total GC
//! pause — which `repro compare` and `scripts/verify.sh` use as a
//! cross-run perf regression gate.
//!
//! # Example
//!
//! ```
//! use beehive_metrics::{MetricsSnapshot, Registry, DEFAULT_WINDOW};
//! use beehive_sim::{Duration, SimTime};
//!
//! let mut reg = Registry::new(DEFAULT_WINDOW);
//! let at = SimTime::ZERO + Duration::from_millis(250);
//! reg.add("requests_completed", at, 1);
//! reg.observe("request_latency", at, Duration::from_millis(12));
//! let snap = MetricsSnapshot { window: DEFAULT_WINDOW, scenarios: vec![reg.snapshot("demo")] };
//! let text = snap.render();
//! assert_eq!(MetricsSnapshot::parse(&text).unwrap(), snap);
//! ```

#![warn(missing_docs)]

pub mod compare;
pub mod hist;
pub mod prom;
pub mod reduce;
pub mod registry;

pub use compare::{compare, Delta, Watched, WATCHED};
pub use hist::LogLinearHistogram;
pub use prom::prometheus;
pub use reduce::{reduce, reduce_one};
pub use registry::{
    CounterSeries, GaugeSeries, HistogramSummary, MetricsSnapshot, Registry, ScenarioMetrics,
    DEFAULT_WINDOW, EXEMPLAR_K,
};
