//! Prometheus text exposition format (version 0.0.4) writer.
//!
//! Renders a [`MetricsSnapshot`] the way a scrape endpoint would expose it:
//! counters as `beehive_<name>_total`, gauges as `beehive_<name>`, and
//! histograms as `beehive_<name>_seconds` with cumulative `le` buckets
//! (bucket upper bounds of the fixed log-linear layout, converted to
//! seconds). Every sample carries `item` (the repro item that produced the
//! file) and `scenario` labels. Output is deterministic: metric names render
//! in sorted order and scenarios in snapshot order, so `.prom` files are
//! byte-stable across worker counts.

use std::collections::BTreeSet;
use std::fmt::Write;

use crate::hist::LogLinearHistogram;
use crate::registry::MetricsSnapshot;

/// One-line HELP text for the metric names the driver emits; empty for
/// ad-hoc names.
fn help(name: &str) -> &'static str {
    match name {
        "requests_completed" => "Recorded requests completed",
        "requests_rejected" => "Arrivals refused by the saturated server worker pool",
        "requests_offloaded" => "Completed non-shadow offloaded requests",
        "shadow_executions" => "Shadow executions completed (cold-boot hiding, paper section 3.4)",
        "boots_cold" => "Cold instance boots started",
        "boots_warm" => "Warm instance starts",
        "fallbacks" => "Fallback round trips (code/data/sync/native/db)",
        "db_rounds_server" => "Database rounds issued by server-resident requests",
        "db_rounds_function" => "Database rounds issued by offloaded requests",
        "handoff_dirty_objects" => "Objects shipped by monitor hand-off dirty pulls",
        "handoff_dirty_bytes" => "Bytes shipped by monitor hand-off dirty pulls",
        "gc_pause_ns" => "Total GC pause time, nanoseconds of virtual time",
        "event_queue" => "Pending simulation events at arrival sampling points",
        "server_pool" => "Server processor-sharing pool occupancy (pool load)",
        "inflight" => "Requests in flight",
        "idle_instances" => "Idle warm FaaS instances",
        "request_latency" => "End-to-end latency of recorded requests",
        "gc_pause" => "GC pause durations (server and function endpoints)",
        _ => "",
    }
}

fn escape_label(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn labels(item: &str, scenario: &str, extra: Option<(&str, String)>) -> String {
    let mut s = String::from("{item=\"");
    escape_label(item, &mut s);
    s.push_str("\",scenario=\"");
    escape_label(scenario, &mut s);
    s.push('"');
    if let Some((k, v)) = extra {
        let _ = write!(s, ",{k}=\"{v}\"");
    }
    s.push('}');
    s
}

fn header(out: &mut String, full_name: &str, base_name: &str, kind: &str) {
    let h = help(base_name);
    if !h.is_empty() {
        let _ = writeln!(out, "# HELP {full_name} {h}");
    }
    let _ = writeln!(out, "# TYPE {full_name} {kind}");
}

/// Render `snap` in the Prometheus text exposition format. `item` is the
/// repro item the snapshot belongs to (e.g. `"shadow"`).
pub fn prometheus(snap: &MetricsSnapshot, item: &str) -> String {
    let mut out = String::new();

    let counter_names: BTreeSet<&str> = snap
        .scenarios
        .iter()
        .flat_map(|s| s.counters.iter().map(|c| c.name.as_str()))
        .collect();
    for name in counter_names {
        let full = format!("beehive_{name}_total");
        header(&mut out, &full, name, "counter");
        for s in &snap.scenarios {
            if let Some(c) = s.counter(name) {
                let _ = writeln!(out, "{full}{} {}", labels(item, &s.label, None), c.total);
            }
        }
    }

    let gauge_names: BTreeSet<&str> = snap
        .scenarios
        .iter()
        .flat_map(|s| s.gauges.iter().map(|g| g.name.as_str()))
        .collect();
    for name in gauge_names {
        let full = format!("beehive_{name}");
        header(&mut out, &full, name, "gauge");
        for s in &snap.scenarios {
            if let Some(g) = s.gauge(name) {
                let _ = writeln!(out, "{full}{} {}", labels(item, &s.label, None), g.last);
            }
        }
    }

    let hist_names: BTreeSet<&str> = snap
        .scenarios
        .iter()
        .flat_map(|s| s.histograms.iter().map(|h| h.name.as_str()))
        .collect();
    for name in hist_names {
        let full = format!("beehive_{name}_seconds");
        header(&mut out, &full, name, "histogram");
        for s in &snap.scenarios {
            let Some(h) = s.histogram(name) else { continue };
            let mut cum = 0u64;
            for &(bucket, count) in &h.buckets {
                cum += count;
                // The f64 division is exact enough for a label and renders
                // deterministically (shortest round-trip Display).
                let le = LogLinearHistogram::bucket_value(bucket as usize) as f64 / 1e9;
                let _ = writeln!(
                    out,
                    "{full}_bucket{} {cum}",
                    labels(item, &s.label, Some(("le", format!("{le}"))))
                );
            }
            let _ = writeln!(
                out,
                "{full}_bucket{} {}",
                labels(item, &s.label, Some(("le", "+Inf".to_string()))),
                h.count
            );
            let _ = writeln!(
                out,
                "{full}_sum{} {}",
                labels(item, &s.label, None),
                h.sum_ns as f64 / 1e9
            );
            let _ = writeln!(
                out,
                "{full}_count{} {}",
                labels(item, &s.label, None),
                h.count
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Registry, DEFAULT_WINDOW};
    use beehive_sim::{Duration, SimTime};

    fn sample() -> MetricsSnapshot {
        let mut r = Registry::new(DEFAULT_WINDOW);
        let at = SimTime::ZERO + Duration::from_millis(500);
        r.add("boots_cold", at, 3);
        r.set_gauge("inflight", at, 12);
        r.observe("request_latency", at, Duration::from_millis(25));
        r.observe("request_latency", at, Duration::from_millis(80));
        MetricsSnapshot {
            window: DEFAULT_WINDOW,
            scenarios: vec![r.snapshot("BeeHive/OW \"q\"")],
        }
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let text = prometheus(&sample(), "shadow");
        assert!(text.contains("# TYPE beehive_boots_cold_total counter"));
        assert!(text.contains(
            "beehive_boots_cold_total{item=\"shadow\",scenario=\"BeeHive/OW \\\"q\\\"\"} 3"
        ));
        assert!(text.contains("# TYPE beehive_inflight gauge"));
        assert!(text.contains("# TYPE beehive_request_latency_seconds histogram"));
        assert!(text.contains("beehive_request_latency_seconds_count"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        // Buckets are cumulative: the +Inf bucket equals the count.
        assert!(text.contains("beehive_request_latency_seconds_sum"));
    }

    #[test]
    fn output_is_deterministic() {
        assert_eq!(prometheus(&sample(), "x"), prometheus(&sample(), "x"));
    }
}
