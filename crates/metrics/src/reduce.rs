//! `Trace → MetricsSnapshot` reducer.
//!
//! Replays a recorded [`beehive_telemetry`] event stream through a
//! [`Registry`], producing the same snapshot the driver's direct
//! instrumentation produces for a traced run: both paths observe the same
//! call sites at the same virtual times, so `reduce(traces) ==` the direct
//! snapshot (the `workload` determinism test asserts it). This keeps traced
//! and untraced runs comparable — a `.metrics.json` means the same thing
//! whether it came from live counters or from a post-hoc trace reduction.
//!
//! One documented divergence: with shadow execution *disabled* (the warmup
//! ablation), the driver charges a boot-waiting request's latency from its
//! arrival, while its `req:offload` span only begins once the instance is
//! up. The direct path is authoritative there; for shadow-enabled
//! configurations the two agree exactly.

use std::collections::HashMap;

use beehive_sim::{Duration, SimTime};
use beehive_telemetry::{Arg, EventKind, Trace, Track};

use crate::registry::{MetricsSnapshot, Registry, ScenarioMetrics};

fn arg_u64(args: &[(&'static str, Arg)], key: &str) -> Option<u64> {
    args.iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Arg::UInt(v) => Some(*v),
            Arg::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        })
}

fn arg_bool(args: &[(&'static str, Arg)], key: &str) -> Option<bool> {
    args.iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Arg::Bool(b) => Some(*b),
            _ => None,
        })
}

fn arg_str(args: &[(&'static str, Arg)], key: &str) -> Option<&'static str> {
    args.iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Arg::Str(s) => Some(*s),
            _ => None,
        })
}

/// Reduce one labelled trace to its scenario metrics.
pub fn reduce_one(label: &str, trace: &Trace, window: Duration) -> ScenarioMetrics {
    let mut reg = Registry::new(window);
    // Open request spans, for latency: (track, name) → begin-time stack.
    let mut open: HashMap<(Track, &'static str), Vec<SimTime>> = HashMap::new();
    for e in &trace.events {
        match e.kind {
            EventKind::Counter(v) => reg.set_gauge(e.name, e.at, v),
            EventKind::Complete(d) => {
                if e.name == "gc" {
                    reg.observe("gc_pause", e.at, d);
                    reg.add("gc_pause_ns", e.at, d.as_nanos());
                }
            }
            EventKind::Instant => match e.name {
                "rejected" => reg.add("requests_rejected", e.at, 1),
                "db:round" => {
                    let name = match arg_str(&e.args, "origin") {
                        Some("server") => "db_rounds_server",
                        _ => "db_rounds_function",
                    };
                    reg.add(name, e.at, 1);
                }
                "sync:pull_dirty" => {
                    reg.add(
                        "handoff_dirty_objects",
                        e.at,
                        arg_u64(&e.args, "objects").unwrap_or(0),
                    );
                    reg.add(
                        "handoff_dirty_bytes",
                        e.at,
                        arg_u64(&e.args, "bytes").unwrap_or(0),
                    );
                }
                _ => {}
            },
            EventKind::Begin => match e.name {
                "boot" => {
                    let name = if arg_bool(&e.args, "cold").unwrap_or(false) {
                        "boots_cold"
                    } else {
                        "boots_warm"
                    };
                    reg.add(name, e.at, 1);
                }
                "req:server" | "req:offload" | "req:shadow" => {
                    open.entry((e.track, e.name)).or_default().push(e.at);
                }
                n if n.starts_with("wait:") && n.ends_with(":fb") => {
                    reg.add("fallbacks", e.at, 1);
                }
                _ => {}
            },
            EventKind::End => match e.name {
                "req:server" | "req:offload" => {
                    let begun = open
                        .get_mut(&(e.track, e.name))
                        .and_then(|stack| stack.pop());
                    if let Some(start) = begun {
                        reg.add("requests_completed", e.at, 1);
                        // The track id is the server-issued request id the
                        // live path records as the latency exemplar.
                        let rid = match e.track {
                            Track::Request(rid) => rid,
                            _ => u64::MAX,
                        };
                        reg.observe_exemplar("request_latency", e.at, e.at - start, rid);
                        if e.name == "req:offload" {
                            reg.add("requests_offloaded", e.at, 1);
                        }
                    }
                }
                "req:shadow" => {
                    let begun = open
                        .get_mut(&(e.track, e.name))
                        .and_then(|stack| stack.pop());
                    if begun.is_some() {
                        reg.add("shadow_executions", e.at, 1);
                    }
                }
                _ => {}
            },
        }
    }
    reg.snapshot(label)
}

/// Reduce labelled traces (as drained from the engine) to a full snapshot.
pub fn reduce(traces: &[(String, Trace)], window: Duration) -> MetricsSnapshot {
    MetricsSnapshot {
        window,
        scenarios: traces
            .iter()
            .map(|(label, t)| reduce_one(label, t, window))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::DEFAULT_WINDOW;
    use beehive_telemetry::TraceEvent;

    fn ev(us: u64, track: Track, name: &'static str, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::ZERO + Duration::from_micros(us),
            track,
            name,
            kind,
            args: Vec::new(),
        }
    }

    #[test]
    fn spans_counters_and_instants_reduce() {
        let mut events = vec![
            ev(0, Track::Sim, "event_queue", EventKind::Counter(5)),
            ev(10, Track::Request(1), "req:server", EventKind::Begin),
            ev(
                15,
                Track::Server,
                "gc",
                EventKind::Complete(Duration::from_micros(3)),
            ),
            ev(30, Track::Request(1), "req:server", EventKind::End),
            ev(40, Track::Server, "rejected", EventKind::Instant),
            ev(50, Track::Request(2), "wait:net:fb", EventKind::Begin),
            ev(55, Track::Request(2), "wait:net:fb", EventKind::End),
            // An unmatched End must not count a completion.
            ev(60, Track::Request(9), "req:offload", EventKind::End),
        ];
        let mut boot = ev(5, Track::Instance(0), "boot", EventKind::Begin);
        boot.args.push(("cold", Arg::Bool(true)));
        events.push(boot);
        let mut round = ev(20, Track::Db, "db:round", EventKind::Instant);
        round.args.push(("origin", Arg::Str("server")));
        events.push(round);

        let s = reduce_one("x", &Trace { events }, DEFAULT_WINDOW);
        assert_eq!(s.counter("requests_completed").unwrap().total, 1);
        assert_eq!(s.counter("requests_rejected").unwrap().total, 1);
        assert_eq!(s.counter("fallbacks").unwrap().total, 1);
        assert_eq!(s.counter("boots_cold").unwrap().total, 1);
        assert_eq!(s.counter("db_rounds_server").unwrap().total, 1);
        assert!(s.counter("requests_offloaded").is_none());
        assert_eq!(s.gauge("event_queue").unwrap().last, 5);
        let lat = s.histogram("request_latency").unwrap();
        assert_eq!(lat.count, 1);
        // 20 µs latency, quantized to its log-linear bucket upper bound.
        assert!((20_000..=21_250).contains(&lat.p50_ns));
        assert_eq!(s.counter("gc_pause_ns").unwrap().total, 3_000);
    }
}
