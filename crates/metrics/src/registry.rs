//! The deterministic metric registry and its snapshot document.
//!
//! A [`Registry`] belongs to one simulation: the driver feeds it counters,
//! gauges and histogram observations stamped with the virtual clock, and
//! [`Registry::snapshot`] freezes it into a [`ScenarioMetrics`] — plain
//! owned data that renders through `beehive_sim::json` and parses back with
//! [`MetricsSnapshot::from_json`]. Metric names iterate in `BTreeMap` order
//! and window indices in ascending order, so rendering is byte-stable for a
//! fixed seed at any worker count.

use std::collections::BTreeMap;

use beehive_sim::json::{Json, ToJson};
use beehive_sim::{Duration, SimTime};

use crate::hist::LogLinearHistogram;

/// The default time-series window: one second of virtual time.
pub const DEFAULT_WINDOW: Duration = Duration::from_secs(1);

/// How many slowest-observation exemplars a histogram keeps.
pub const EXEMPLAR_K: usize = 5;

#[derive(Debug, Default)]
struct CounterState {
    total: u64,
    windows: BTreeMap<u64, u64>,
}

#[derive(Debug, Default)]
struct GaugeState {
    last: i64,
    windows: BTreeMap<u64, i64>,
}

/// A per-simulation metric registry on the virtual clock.
#[derive(Debug)]
pub struct Registry {
    window: Duration,
    counters: BTreeMap<&'static str, CounterState>,
    gauges: BTreeMap<&'static str, GaugeState>,
    hists: BTreeMap<&'static str, LogLinearHistogram>,
    /// Slowest-K `(nanos, request id)` exemplars per histogram, kept sorted
    /// by duration descending, ties by ascending id — a total order, so the
    /// list is identical however completions interleave.
    exemplars: BTreeMap<&'static str, Vec<(u64, u64)>>,
}

impl Registry {
    /// A registry bucketing its time series into `window`-sized windows.
    ///
    /// # Panics
    ///
    /// Panics on a zero window.
    pub fn new(window: Duration) -> Registry {
        assert!(!window.is_zero(), "metrics window must be non-zero");
        Registry {
            window,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            exemplars: BTreeMap::new(),
        }
    }

    /// The window size.
    pub fn window(&self) -> Duration {
        self.window
    }

    fn widx(&self, at: SimTime) -> u64 {
        at.as_nanos() / self.window.as_nanos()
    }

    /// Add `delta` to counter `name` at virtual time `at`.
    pub fn add(&mut self, name: &'static str, at: SimTime, delta: u64) {
        let w = self.widx(at);
        let c = self.counters.entry(name).or_default();
        c.total += delta;
        *c.windows.entry(w).or_insert(0) += delta;
    }

    /// Set gauge `name` to `value` at virtual time `at` (the window keeps the
    /// last sample it saw).
    pub fn set_gauge(&mut self, name: &'static str, at: SimTime, value: i64) {
        let w = self.widx(at);
        let g = self.gauges.entry(name).or_default();
        g.last = value;
        g.windows.insert(w, value);
    }

    /// Record duration `d` into histogram `name` (timestamped observations;
    /// histograms aggregate over the whole run, not per window).
    pub fn observe(&mut self, name: &'static str, _at: SimTime, d: Duration) {
        self.hists.entry(name).or_default().record(d.as_nanos());
    }

    /// [`Registry::observe`] plus exemplar capture: `request` competes for
    /// the histogram's slowest-[`EXEMPLAR_K`] list, so an alarming quantile
    /// can be traced back to concrete request ids.
    pub fn observe_exemplar(&mut self, name: &'static str, at: SimTime, d: Duration, request: u64) {
        self.observe(name, at, d);
        let ex = self.exemplars.entry(name).or_default();
        ex.push((d.as_nanos(), request));
        ex.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        ex.truncate(EXEMPLAR_K);
    }

    /// Freeze into the snapshot form under scenario `label`.
    pub fn snapshot(&self, label: &str) -> ScenarioMetrics {
        ScenarioMetrics {
            label: label.to_string(),
            counters: self
                .counters
                .iter()
                .map(|(&name, c)| CounterSeries {
                    name: name.to_string(),
                    total: c.total,
                    windows: c.windows.iter().map(|(&w, &v)| (w, v)).collect(),
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(&name, g)| GaugeSeries {
                    name: name.to_string(),
                    last: g.last,
                    windows: g.windows.iter().map(|(&w, &v)| (w, v)).collect(),
                })
                .collect(),
            histograms: self
                .hists
                .iter()
                .map(|(&name, h)| {
                    HistogramSummary::of(
                        name,
                        h,
                        self.exemplars.get(name).cloned().unwrap_or_default(),
                    )
                })
                .collect(),
        }
    }
}

/// One counter's total plus its per-window sums.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSeries {
    /// Metric name.
    pub name: String,
    /// Sum over the whole run.
    pub total: u64,
    /// `(window index, sum within that window)`, ascending, empty windows
    /// omitted.
    pub windows: Vec<(u64, u64)>,
}

/// One gauge's final value plus the last sample of each window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeSeries {
    /// Metric name.
    pub name: String,
    /// The last sample of the run.
    pub last: i64,
    /// `(window index, last sample in that window)`, ascending.
    pub windows: Vec<(u64, i64)>,
}

/// One histogram's moments, quantiles and sparse buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Metric name.
    pub name: String,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations, nanoseconds.
    pub sum_ns: u64,
    /// Largest observation, nanoseconds.
    pub max_ns: u64,
    /// Median (bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile (bucket upper bound), nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile (bucket upper bound), nanoseconds.
    pub p99_ns: u64,
    /// Sparse `(bucket index, count)` pairs in the fixed log-linear layout.
    pub buckets: Vec<(u64, u64)>,
    /// Slowest-K `(nanos, request id)` exemplars, duration descending (ties
    /// by ascending id). Empty for histograms observed without ids; omitted
    /// from the JSON form when empty, so pre-exemplar documents still parse.
    pub exemplars: Vec<(u64, u64)>,
}

impl HistogramSummary {
    fn of(name: &str, h: &LogLinearHistogram, exemplars: Vec<(u64, u64)>) -> HistogramSummary {
        HistogramSummary {
            name: name.to_string(),
            count: h.count(),
            sum_ns: h.sum(),
            max_ns: h.max(),
            p50_ns: h.quantile(0.50),
            p90_ns: h.quantile(0.90),
            p99_ns: h.quantile(0.99),
            buckets: h.nonzero_buckets(),
            exemplars,
        }
    }

    /// Rebuild the underlying histogram (for re-aggregation after parsing).
    pub fn to_histogram(&self) -> Option<LogLinearHistogram> {
        LogLinearHistogram::from_parts(&self.buckets, self.count, self.sum_ns, self.max_ns)
    }
}

/// Every metric of one scenario (one simulation run).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioMetrics {
    /// The scenario label (same label the engine attaches to traces).
    pub label: String,
    /// Counters, in name order.
    pub counters: Vec<CounterSeries>,
    /// Gauges, in name order.
    pub gauges: Vec<GaugeSeries>,
    /// Histograms, in name order.
    pub histograms: Vec<HistogramSummary>,
}

impl ScenarioMetrics {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<&CounterSeries> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSeries> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// The exported metrics document: one entry per scenario, all sharing one
/// window size. This is what `repro --metrics DIR` writes per experiment as
/// `<item>.metrics.json`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Window size shared by every time series.
    pub window: Duration,
    /// Per-scenario metrics, in engine input order.
    pub scenarios: Vec<ScenarioMetrics>,
}

fn pairs_json<A: Copy + Into<i128>, B: Copy + Into<i128>>(pairs: &[(A, B)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|&(a, b)| Json::Arr(vec![Json::Int(a.into()), Json::Int(b.into())]))
            .collect(),
    )
}

impl ToJson for CounterSeries {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name".into(), Json::from(self.name.clone())),
            ("total".into(), Json::from(self.total)),
            ("windows".into(), pairs_json(&self.windows)),
        ])
    }
}

impl ToJson for GaugeSeries {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name".into(), Json::from(self.name.clone())),
            ("last".into(), Json::from(self.last)),
            ("windows".into(), pairs_json(&self.windows)),
        ])
    }
}

impl ToJson for HistogramSummary {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".into(), Json::from(self.name.clone())),
            ("count".into(), Json::from(self.count)),
            ("sum_ns".into(), Json::from(self.sum_ns)),
            ("max_ns".into(), Json::from(self.max_ns)),
            ("p50_ns".into(), Json::from(self.p50_ns)),
            ("p90_ns".into(), Json::from(self.p90_ns)),
            ("p99_ns".into(), Json::from(self.p99_ns)),
            ("buckets".into(), pairs_json(&self.buckets)),
        ];
        if !self.exemplars.is_empty() {
            fields.push(("exemplars".into(), pairs_json(&self.exemplars)));
        }
        Json::Obj(fields)
    }
}

impl ToJson for ScenarioMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label".into(), Json::from(self.label.clone())),
            ("counters".into(), Json::arr(self.counters.iter())),
            ("gauges".into(), Json::arr(self.gauges.iter())),
            ("histograms".into(), Json::arr(self.histograms.iter())),
        ])
    }
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("window_ns".into(), Json::from(self.window.as_nanos())),
            ("scenarios".into(), Json::arr(self.scenarios.iter())),
        ])
    }
}

// --- parsing -------------------------------------------------------------

fn want_u64(j: &Json, what: &str) -> Result<u64, String> {
    match j {
        Json::Int(v) if *v >= 0 && *v <= u64::MAX as i128 => Ok(*v as u64),
        _ => Err(format!("{what}: expected a non-negative integer")),
    }
}

fn want_i64(j: &Json, what: &str) -> Result<i64, String> {
    match j {
        Json::Int(v) if *v >= i64::MIN as i128 && *v <= i64::MAX as i128 => Ok(*v as i64),
        _ => Err(format!("{what}: expected an integer")),
    }
}

fn want_str(j: &Json, what: &str) -> Result<String, String> {
    match j {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(format!("{what}: expected a string")),
    }
}

fn want_arr<'a>(j: &'a Json, what: &str) -> Result<&'a [Json], String> {
    match j {
        Json::Arr(items) => Ok(items),
        _ => Err(format!("{what}: expected an array")),
    }
}

fn field<'a>(j: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    j.get(key)
        .ok_or_else(|| format!("{what}: missing field {key:?}"))
}

fn parse_u64_pairs(j: &Json, what: &str) -> Result<Vec<(u64, u64)>, String> {
    want_arr(j, what)?
        .iter()
        .map(|p| {
            let p = want_arr(p, what)?;
            if p.len() != 2 {
                return Err(format!("{what}: expected [index, value] pairs"));
            }
            Ok((want_u64(&p[0], what)?, want_u64(&p[1], what)?))
        })
        .collect()
}

fn parse_i64_pairs(j: &Json, what: &str) -> Result<Vec<(u64, i64)>, String> {
    want_arr(j, what)?
        .iter()
        .map(|p| {
            let p = want_arr(p, what)?;
            if p.len() != 2 {
                return Err(format!("{what}: expected [index, value] pairs"));
            }
            Ok((want_u64(&p[0], what)?, want_i64(&p[1], what)?))
        })
        .collect()
}

impl MetricsSnapshot {
    /// Parse the document form emitted by [`ToJson`]. Inverse of
    /// `to_json().render()` up to exact equality (the determinism test
    /// asserts the round trip).
    pub fn from_json(j: &Json) -> Result<MetricsSnapshot, String> {
        let window =
            Duration::from_nanos(want_u64(field(j, "window_ns", "snapshot")?, "window_ns")?);
        let scenarios = want_arr(field(j, "scenarios", "snapshot")?, "scenarios")?
            .iter()
            .map(|s| {
                let label = want_str(field(s, "label", "scenario")?, "label")?;
                let counters = want_arr(field(s, "counters", &label)?, "counters")?
                    .iter()
                    .map(|c| {
                        let name = want_str(field(c, "name", "counter")?, "counter name")?;
                        Ok(CounterSeries {
                            total: want_u64(field(c, "total", &name)?, "total")?,
                            windows: parse_u64_pairs(field(c, "windows", &name)?, "windows")?,
                            name,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let gauges = want_arr(field(s, "gauges", &label)?, "gauges")?
                    .iter()
                    .map(|g| {
                        let name = want_str(field(g, "name", "gauge")?, "gauge name")?;
                        Ok(GaugeSeries {
                            last: want_i64(field(g, "last", &name)?, "last")?,
                            windows: parse_i64_pairs(field(g, "windows", &name)?, "windows")?,
                            name,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let histograms = want_arr(field(s, "histograms", &label)?, "histograms")?
                    .iter()
                    .map(|h| {
                        let name = want_str(field(h, "name", "histogram")?, "histogram name")?;
                        Ok(HistogramSummary {
                            count: want_u64(field(h, "count", &name)?, "count")?,
                            sum_ns: want_u64(field(h, "sum_ns", &name)?, "sum_ns")?,
                            max_ns: want_u64(field(h, "max_ns", &name)?, "max_ns")?,
                            p50_ns: want_u64(field(h, "p50_ns", &name)?, "p50_ns")?,
                            p90_ns: want_u64(field(h, "p90_ns", &name)?, "p90_ns")?,
                            p99_ns: want_u64(field(h, "p99_ns", &name)?, "p99_ns")?,
                            buckets: parse_u64_pairs(field(h, "buckets", &name)?, "buckets")?,
                            // Optional: pre-exemplar documents omit it, and
                            // the renderer drops it again when empty, so the
                            // round trip stays exact either way.
                            exemplars: match h.get("exemplars") {
                                Some(e) => parse_u64_pairs(e, "exemplars")?,
                                None => Vec::new(),
                            },
                            name,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(ScenarioMetrics {
                    label,
                    counters,
                    gauges,
                    histograms,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(MetricsSnapshot { window, scenarios })
    }

    /// Parse a rendered document (text → [`Json::parse`] → [`Self::from_json`]).
    pub fn parse(text: &str) -> Result<MetricsSnapshot, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&j)
    }

    /// Render the document (`to_json().render()`).
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn counters_window_and_total() {
        let mut r = Registry::new(Duration::from_secs(1));
        r.add("reqs", t(100), 1);
        r.add("reqs", t(900), 2);
        r.add("reqs", t(2_500), 1);
        let s = r.snapshot("x");
        let c = s.counter("reqs").unwrap();
        assert_eq!(c.total, 4);
        assert_eq!(c.windows, vec![(0, 3), (2, 1)]);
    }

    #[test]
    fn gauges_keep_last_sample_per_window() {
        let mut r = Registry::new(Duration::from_secs(1));
        r.set_gauge("load", t(100), 5);
        r.set_gauge("load", t(800), 9);
        r.set_gauge("load", t(1_200), 2);
        let s = r.snapshot("x");
        let g = s.gauge("load").unwrap();
        assert_eq!(g.last, 2);
        assert_eq!(g.windows, vec![(0, 9), (1, 2)]);
    }

    #[test]
    fn snapshot_orders_metrics_by_name() {
        let mut r = Registry::new(DEFAULT_WINDOW);
        r.add("zeta", t(0), 1);
        r.add("alpha", t(0), 1);
        let s = r.snapshot("x");
        let names: Vec<&str> = s.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut r = Registry::new(DEFAULT_WINDOW);
        r.add("boots_cold", t(10), 2);
        r.set_gauge("pool", t(20), -3);
        r.observe("lat", t(30), Duration::from_millis(7));
        r.observe("lat", t(40), Duration::from_micros(9));
        let snap = MetricsSnapshot {
            window: DEFAULT_WINDOW,
            scenarios: vec![r.snapshot("BeeHive/OW"), r.snapshot("Vanilla")],
        };
        let text = snap.render();
        let back = MetricsSnapshot::parse(&text).expect("parses");
        assert_eq!(back, snap);
        assert_eq!(back.render(), text);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(MetricsSnapshot::parse("{}").is_err());
        assert!(MetricsSnapshot::parse(r#"{"window_ns":0,"scenarios":0}"#).is_err());
        assert!(MetricsSnapshot::parse(
            r#"{"window_ns":1,"scenarios":[{"label":"x","counters":[{"name":"c"}],"gauges":[],"histograms":[]}]}"#
        )
        .is_err());
    }
}
