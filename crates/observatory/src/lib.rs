//! Time-resolved elasticity observability.
//!
//! Every other observability substrate in the reproduction (trace, metrics,
//! profile, insight, sentinel) reports per-request or whole-run aggregates.
//! BeeHive's headline claim, however, is *sub-second elasticity* — a
//! time-domain property: how long after a burst onset does capacity catch
//! up? This crate gives the reproduction that time axis.
//!
//! [`Observer`] is a streaming reducer that rides the telemetry recorder as
//! a second consumer (via `beehive_telemetry::visit_from`, exactly like the
//! sentinel) and folds [`TraceEvent`]s into deterministic fixed-width
//! virtual-time bins:
//!
//! * offered vs. served vs. rejected requests per bin,
//! * per-bin P50/P99 latency (arrival → completion, including hidden boot
//!   waits) on a [`LogLinearHistogram`],
//! * queue depth per pool and in-flight requests,
//! * active / idle / booting instance counts and peak cold-boot concurrency,
//! * warm / spawn / server dispatch outcomes (the warm-pool hit rate),
//! * requests forwarded by the burst handler (`burst:route`).
//!
//! From the bins it derives per-burst elasticity signals ([`BurstSignal`]):
//! **scale-up lag** (arrival-rate step onset → P99 re-entering the
//! steady-state band), provisioning efficiency and cold-start amplification
//! during the spike. Everything is integer arithmetic on nanoseconds, so a
//! rendered timeline is byte-identical across worker counts and platforms.
//!
//! [`TimelineDoc`] collects the per-scenario series and renders them as an
//! ASCII sparkline timeline, a self-contained SVG, or a JSON artifact that
//! round-trips through [`TimelineDoc::parse`] (the `repro lag` diff
//! consumes those artifacts).

#![warn(missing_docs)]

use std::collections::HashMap;

use beehive_metrics::LogLinearHistogram;
use beehive_sim::json::Json;
use beehive_sim::Duration;
use beehive_telemetry::{Arg, EventKind, Trace, TraceEvent, Track};

/// Default bin width of the timeline: one virtual second.
pub const DEFAULT_WINDOW: Duration = Duration::from_secs(1);

/// Bins of consecutive in-band P99 required before a burst counts as
/// settled (the last bin of the run may settle alone).
const SETTLE_BINS: usize = 2;

// ---------------------------------------------------------------------------
// Derived elasticity signals
// ---------------------------------------------------------------------------

/// Elasticity signals derived for one arrival-rate step (burst onset).
///
/// A signal exists for the implicit run-start step (cold system meets the
/// base rate at t=0) and for every recorded `burst:onset` rate increase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BurstSignal {
    /// Virtual time of the rate step, nanoseconds since the run start.
    pub onset_ns: u64,
    /// The steady-state P99 band: twice the median per-bin P99 of the run,
    /// snapped up to a log-linear histogram bucket edge.
    pub band_p99_ns: u64,
    /// End of the first bin window where P99 re-entered the band (and
    /// stayed there), or `None` when the run never settles.
    pub settle_ns: Option<u64>,
    /// Scale-up lag: `settle_ns - onset_ns`. `None` when the run never
    /// settles after this onset.
    pub lag_ns: Option<u64>,
    /// `10_000 × served / offered` over the onset→settle window, in basis
    /// points (10_000 = every offered request was served inside the window).
    pub provisioning_efficiency_bp: u64,
    /// Cold-start amplification: the spawn share of dispatches inside the
    /// onset→settle window relative to the whole run, in basis points
    /// (10_000 = the spike spawned no more than steady state).
    pub cold_start_amplification_bp: u64,
}

impl BurstSignal {
    fn to_json(&self) -> Json {
        let opt = |v: Option<u64>| match v {
            Some(n) => Json::Int(n as i128),
            None => Json::Null,
        };
        Json::obj([
            ("onset_ns".into(), Json::Int(self.onset_ns as i128)),
            ("band_p99_ns".into(), Json::Int(self.band_p99_ns as i128)),
            ("settle_ns".into(), opt(self.settle_ns)),
            ("lag_ns".into(), opt(self.lag_ns)),
            (
                "provisioning_efficiency_bp".into(),
                Json::Int(self.provisioning_efficiency_bp as i128),
            ),
            (
                "cold_start_amplification_bp".into(),
                Json::Int(self.cold_start_amplification_bp as i128),
            ),
        ])
    }

    fn from_json(j: &Json) -> Option<BurstSignal> {
        let opt = |key: &str| match j.get(key) {
            Some(Json::Int(i)) if *i >= 0 => Some(Some(*i as u64)),
            Some(Json::Null) | None => Some(None),
            _ => None,
        };
        Some(BurstSignal {
            onset_ns: u64_field(j, "onset_ns")?,
            band_p99_ns: u64_field(j, "band_p99_ns")?,
            settle_ns: opt("settle_ns")?,
            lag_ns: opt("lag_ns")?,
            provisioning_efficiency_bp: u64_field(j, "provisioning_efficiency_bp")?,
            cold_start_amplification_bp: u64_field(j, "cold_start_amplification_bp")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Per-scenario series
// ---------------------------------------------------------------------------

/// The reduced timeline of one scenario: parallel per-bin series plus the
/// derived burst signals. All series have the same length.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioSeries {
    /// Scenario label (blank until the engine harvest fills it in).
    pub label: String,
    /// Bin width in nanoseconds of virtual time.
    pub window_ns: u64,
    /// Telemetry events folded into this series.
    pub events: u64,
    /// Offered load per bin: request sessions started plus rejections
    /// (shadow warm-ups are not offered load).
    pub offered: Vec<u64>,
    /// Requests completed per bin (binned by completion time).
    pub served: Vec<u64>,
    /// Requests refused by the saturated server pool per bin.
    pub rejected: Vec<u64>,
    /// Per-bin P50 of arrival→completion latency (ns), 0 for empty bins.
    pub p50_ns: Vec<u64>,
    /// Per-bin P99 of arrival→completion latency (ns), 0 for empty bins.
    pub p99_ns: Vec<u64>,
    /// Primary server pool depth sampled at each bin's end.
    pub queue_primary: Vec<i64>,
    /// Scaled-capacity pool depth sampled at each bin's end (zero unless a
    /// scaling strategy brought up a second pool).
    pub queue_scaled: Vec<i64>,
    /// In-flight requests sampled at each bin's end.
    pub inflight: Vec<i64>,
    /// Busy FaaS instances at each bin's end.
    pub active: Vec<u64>,
    /// Warm idle FaaS instances at each bin's end.
    pub idle: Vec<u64>,
    /// Booting FaaS instances at each bin's end.
    pub booting: Vec<u64>,
    /// Peak concurrent boots observed inside each bin (cold-boot
    /// concurrency — the provisioning wavefront).
    pub booting_peak: Vec<u64>,
    /// Offload dispatches that hit a warm instance, per bin.
    pub dispatch_warm: Vec<u64>,
    /// Offload dispatches that spawned a new instance, per bin.
    pub dispatch_spawn: Vec<u64>,
    /// Offload dispatches that fell back to the server, per bin.
    pub dispatch_server: Vec<u64>,
    /// Requests the burst handler forwarded to scaled capacity, per bin.
    pub forwarded: Vec<u64>,
    /// Derived per-burst elasticity signals.
    pub signals: Vec<BurstSignal>,
}

impl ScenarioSeries {
    /// Number of bins in the series.
    pub fn bins(&self) -> usize {
        self.offered.len()
    }

    /// The series as a JSON object.
    pub fn to_json(&self) -> Json {
        let u = |v: &[u64]| Json::Arr(v.iter().map(|&x| Json::Int(x as i128)).collect());
        let i = |v: &[i64]| Json::Arr(v.iter().map(|&x| Json::Int(x as i128)).collect());
        Json::obj([
            ("label".into(), Json::from(self.label.clone())),
            ("window_ns".into(), Json::Int(self.window_ns as i128)),
            ("events".into(), Json::Int(self.events as i128)),
            ("offered".into(), u(&self.offered)),
            ("served".into(), u(&self.served)),
            ("rejected".into(), u(&self.rejected)),
            ("p50_ns".into(), u(&self.p50_ns)),
            ("p99_ns".into(), u(&self.p99_ns)),
            ("queue_primary".into(), i(&self.queue_primary)),
            ("queue_scaled".into(), i(&self.queue_scaled)),
            ("inflight".into(), i(&self.inflight)),
            ("active".into(), u(&self.active)),
            ("idle".into(), u(&self.idle)),
            ("booting".into(), u(&self.booting)),
            ("booting_peak".into(), u(&self.booting_peak)),
            ("dispatch_warm".into(), u(&self.dispatch_warm)),
            ("dispatch_spawn".into(), u(&self.dispatch_spawn)),
            ("dispatch_server".into(), u(&self.dispatch_server)),
            ("forwarded".into(), u(&self.forwarded)),
            (
                "signals".into(),
                Json::Arr(self.signals.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }

    /// Rebuild a series from its [`ScenarioSeries::to_json`] form.
    pub fn from_json(j: &Json) -> Option<ScenarioSeries> {
        let signals = match j.get("signals")? {
            Json::Arr(items) => items
                .iter()
                .map(BurstSignal::from_json)
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        let s = ScenarioSeries {
            label: str_field(j, "label")?,
            window_ns: u64_field(j, "window_ns")?,
            events: u64_field(j, "events")?,
            offered: u64_arr(j, "offered")?,
            served: u64_arr(j, "served")?,
            rejected: u64_arr(j, "rejected")?,
            p50_ns: u64_arr(j, "p50_ns")?,
            p99_ns: u64_arr(j, "p99_ns")?,
            queue_primary: i64_arr(j, "queue_primary")?,
            queue_scaled: i64_arr(j, "queue_scaled")?,
            inflight: i64_arr(j, "inflight")?,
            active: u64_arr(j, "active")?,
            idle: u64_arr(j, "idle")?,
            booting: u64_arr(j, "booting")?,
            booting_peak: u64_arr(j, "booting_peak")?,
            dispatch_warm: u64_arr(j, "dispatch_warm")?,
            dispatch_spawn: u64_arr(j, "dispatch_spawn")?,
            dispatch_server: u64_arr(j, "dispatch_server")?,
            forwarded: u64_arr(j, "forwarded")?,
            signals,
        };
        Some(s)
    }
}

// ---------------------------------------------------------------------------
// The streaming reducer
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Life {
    Booting,
    Active,
    Idle,
}

#[derive(Default)]
struct ReqState {
    begin_ns: u64,
    boot_wait_ns: u64,
    shadow: bool,
}

/// Streaming reducer folding telemetry events into a [`ScenarioSeries`].
///
/// Feed events in emission order (which is virtual-time order) with
/// [`Observer::feed`], then call [`Observer::finish`]. The observer is the
/// second consumer of the shared telemetry recorder: the workload driver
/// drains the recorder into it incrementally via
/// `beehive_telemetry::visit_from`, the same discipline as the sentinel.
pub struct Observer {
    window_ns: u64,
    out: ScenarioSeries,
    // Gauges carried forward across bins.
    queue_primary: i64,
    queue_scaled: i64,
    inflight: i64,
    active: u64,
    idle: u64,
    booting: u64,
    booting_peak: u64,
    // Accumulators of the currently open bin.
    offered: u64,
    served: u64,
    rejected: u64,
    warm: u64,
    spawn: u64,
    server_disp: u64,
    forwarded: u64,
    hist: LogLinearHistogram,
    // Cross-bin state.
    reqs: HashMap<u64, ReqState>,
    insts: HashMap<u32, Life>,
    onsets: Vec<u64>,
    events: u64,
}

impl Observer {
    /// An observer with the given bin width (clamped to at least 1 ns).
    pub fn new(window: Duration) -> Observer {
        Observer {
            window_ns: window.as_nanos().max(1),
            out: ScenarioSeries::default(),
            queue_primary: 0,
            queue_scaled: 0,
            inflight: 0,
            active: 0,
            idle: 0,
            booting: 0,
            booting_peak: 0,
            offered: 0,
            served: 0,
            rejected: 0,
            warm: 0,
            spawn: 0,
            server_disp: 0,
            forwarded: 0,
            hist: LogLinearHistogram::new(),
            reqs: HashMap::new(),
            insts: HashMap::new(),
            onsets: Vec::new(),
            events: 0,
        }
    }

    /// Fold one event. Events must arrive in virtual-time order.
    pub fn feed(&mut self, e: &TraceEvent) {
        self.events += 1;
        let bin = e.at.as_nanos() / self.window_ns;
        while (self.out.offered.len() as u64) < bin {
            self.seal();
        }
        match e.track {
            Track::Request(rid) => self.feed_request(rid, e),
            Track::Server => self.feed_server(e),
            Track::Instance(fid) => self.feed_instance(fid, e),
            Track::Platform => self.feed_platform(e),
            Track::Sim => self.feed_sim(e),
            Track::Db => {}
        }
    }

    /// Seal the open bin and derive the burst signals.
    pub fn finish(mut self, label: String) -> ScenarioSeries {
        if self.events > 0 {
            self.seal();
        }
        let mut out = self.out;
        out.label = label;
        out.window_ns = self.window_ns;
        out.events = self.events;
        out.signals = derive_signals(&out, &self.onsets);
        out
    }

    /// Close the open bin: sample the gauges at its end, push the
    /// accumulators, and reset for the next bin.
    fn seal(&mut self) {
        let out = &mut self.out;
        out.offered.push(self.offered);
        out.served.push(self.served);
        out.rejected.push(self.rejected);
        let (p50, p99) = if self.hist.is_empty() {
            (0, 0)
        } else {
            (self.hist.quantile(0.50), self.hist.quantile(0.99))
        };
        out.p50_ns.push(p50);
        out.p99_ns.push(p99);
        out.queue_primary.push(self.queue_primary);
        out.queue_scaled.push(self.queue_scaled);
        out.inflight.push(self.inflight);
        out.active.push(self.active);
        out.idle.push(self.idle);
        out.booting.push(self.booting);
        out.booting_peak.push(self.booting_peak);
        out.dispatch_warm.push(self.warm);
        out.dispatch_spawn.push(self.spawn);
        out.dispatch_server.push(self.server_disp);
        out.forwarded.push(self.forwarded);
        self.offered = 0;
        self.served = 0;
        self.rejected = 0;
        self.warm = 0;
        self.spawn = 0;
        self.server_disp = 0;
        self.forwarded = 0;
        self.hist = LogLinearHistogram::new();
        self.booting_peak = self.booting;
    }

    fn feed_request(&mut self, rid: u64, e: &TraceEvent) {
        match (e.kind, e.name) {
            (EventKind::Begin, "req:server" | "req:offload" | "req:shadow") => {
                let shadow = e.name == "req:shadow";
                if !shadow {
                    self.offered += 1;
                }
                // A `boot:wait` for this request may already be stashed
                // (it is emitted just before the session span opens).
                let st = self.reqs.entry(rid).or_default();
                st.begin_ns = e.at.as_nanos();
                st.shadow = shadow;
            }
            (EventKind::Complete(d), "boot:wait") => {
                let st = self.reqs.entry(rid).or_default();
                st.boot_wait_ns = d.as_nanos();
            }
            (EventKind::End, "req:server" | "req:offload" | "req:shadow") => {
                if let Some(st) = self.reqs.remove(&rid) {
                    if !st.shadow {
                        self.served += 1;
                        let latency =
                            e.at.as_nanos()
                                .saturating_sub(st.begin_ns)
                                .saturating_add(st.boot_wait_ns);
                        self.hist.record(latency);
                    }
                }
            }
            _ => {}
        }
    }

    fn feed_server(&mut self, e: &TraceEvent) {
        match (e.kind, e.name) {
            (EventKind::Instant, "offload:dispatch") => match arg_str(e, "outcome") {
                Some("warm") => self.warm += 1,
                Some("spawn") => self.spawn += 1,
                Some("server") => self.server_disp += 1,
                _ => {}
            },
            (EventKind::Instant, "rejected") => {
                self.rejected += 1;
                self.offered += 1;
            }
            (EventKind::Instant, "burst:route") if arg_str(e, "route") == Some("scaled") => {
                self.forwarded += 1;
            }
            _ => {}
        }
    }

    fn feed_instance(&mut self, fid: u32, e: &TraceEvent) {
        if e.kind != EventKind::Instant {
            return;
        }
        match e.name {
            "instance:cold_boot" => {
                self.set_life(fid, Some(Life::Booting));
            }
            "instance:ready" | "instance:warm_start" => {
                self.set_life(fid, Some(Life::Active));
            }
            "instance:release" => {
                self.set_life(fid, Some(Life::Idle));
            }
            "instance:kill" => {
                self.set_life(fid, None);
            }
            _ => {}
        }
    }

    /// Move an instance to a new lifecycle state, keeping the three gauges
    /// (and the cold-boot concurrency peak) consistent.
    fn set_life(&mut self, fid: u32, next: Option<Life>) {
        let prev = match next {
            Some(l) => self.insts.insert(fid, l),
            None => self.insts.remove(&fid),
        };
        match prev {
            Some(Life::Booting) => self.booting = self.booting.saturating_sub(1),
            Some(Life::Active) => self.active = self.active.saturating_sub(1),
            Some(Life::Idle) => self.idle = self.idle.saturating_sub(1),
            None => {}
        }
        match next {
            Some(Life::Booting) => {
                self.booting += 1;
                self.booting_peak = self.booting_peak.max(self.booting);
            }
            Some(Life::Active) => self.active += 1,
            Some(Life::Idle) => self.idle += 1,
            None => {}
        }
    }

    fn feed_platform(&mut self, e: &TraceEvent) {
        if let (EventKind::Instant, "instance:expire") = (e.kind, e.name) {
            // The keep-alive sweep reports a count, not ids; the expired
            // instances leave the warm cache.
            let n = arg_u64(e, "count").unwrap_or(0);
            self.idle = self.idle.saturating_sub(n);
            // Drop that many tracked idle instances so later kills of other
            // states stay consistent (ids are unknown; any idle ids do).
            let mut victims: Vec<u32> = self
                .insts
                .iter()
                .filter(|(_, l)| **l == Life::Idle)
                .map(|(&id, _)| id)
                .collect();
            victims.sort_unstable();
            for id in victims.into_iter().take(n as usize) {
                self.insts.remove(&id);
            }
        }
    }

    fn feed_sim(&mut self, e: &TraceEvent) {
        match (e.kind, e.name) {
            (EventKind::Counter(v), "server_pool") => self.queue_primary = v,
            (EventKind::Counter(v), "inflight") => self.inflight = v,
            (EventKind::Instant, "pool:depth") if arg_u64(e, "pool") == Some(1) => {
                self.queue_scaled = arg_u64(e, "depth").unwrap_or(0) as i64;
            }
            (EventKind::Instant, "burst:onset") => {
                // Only rate increases are elasticity events; rate drops end
                // a burst and need no capacity response.
                let from = arg_u64(e, "mrps_from").unwrap_or(0);
                let to = arg_u64(e, "mrps_to").unwrap_or(0);
                if to > from {
                    self.onsets.push(e.at.as_nanos());
                }
            }
            _ => {}
        }
    }
}

fn arg_str(e: &TraceEvent, name: &str) -> Option<&'static str> {
    e.args.iter().find_map(|(k, v)| match v {
        Arg::Str(s) if *k == name => Some(*s),
        _ => None,
    })
}

fn arg_u64(e: &TraceEvent, name: &str) -> Option<u64> {
    e.args.iter().find_map(|(k, v)| match v {
        Arg::UInt(u) if *k == name => Some(*u),
        Arg::Int(i) if *k == name && *i >= 0 => Some(*i as u64),
        _ => None,
    })
}

// ---------------------------------------------------------------------------
// Signal derivation
// ---------------------------------------------------------------------------

/// Derive the per-burst elasticity signals from sealed bins: a signal for
/// the implicit run-start rate step plus one per recorded onset.
fn derive_signals(s: &ScenarioSeries, onsets: &[u64]) -> Vec<BurstSignal> {
    let n = s.bins();
    if n == 0 {
        return Vec::new();
    }
    // Steady-state band: twice the median per-bin P99 over bins that
    // completed requests, snapped up to a log-linear bucket edge so the
    // band is itself a representable histogram value.
    let mut p99s: Vec<u64> = s.p99_ns.iter().copied().filter(|&v| v > 0).collect();
    if p99s.is_empty() {
        return Vec::new();
    }
    p99s.sort_unstable();
    let median = p99s[p99s.len() / 2];
    let band =
        LogLinearHistogram::bucket_value(LogLinearHistogram::bucket_of(median.saturating_mul(2)));
    let w = s.window_ns;
    let total_spawn: u64 = s.dispatch_spawn.iter().sum();
    let total_disp: u64 =
        total_spawn + s.dispatch_warm.iter().sum::<u64>() + s.dispatch_server.iter().sum::<u64>();

    let mut all: Vec<u64> = Vec::with_capacity(onsets.len() + 1);
    all.push(0);
    all.extend(onsets.iter().copied().filter(|&o| o > 0));
    all.dedup();

    all.into_iter()
        .filter(|&onset| ((onset / w) as usize) < n)
        .map(|onset| {
            let first = (onset / w) as usize;
            let settled = |b: usize| s.served[b] > 0 && s.p99_ns[b] > 0 && s.p99_ns[b] <= band;
            let mut settle_bin = None;
            for b in first..n {
                let run_ok = (b..(b + SETTLE_BINS).min(n)).all(settled);
                if run_ok {
                    settle_bin = Some(b);
                    break;
                }
            }
            let last = settle_bin.unwrap_or(n - 1);
            let offered: u64 = s.offered[first..=last].iter().sum();
            let served: u64 = s.served[first..=last].iter().sum();
            let spawn_w: u64 = s.dispatch_spawn[first..=last].iter().sum();
            let disp_w: u64 = spawn_w
                + s.dispatch_warm[first..=last].iter().sum::<u64>()
                + s.dispatch_server[first..=last].iter().sum::<u64>();
            let amplification = if total_spawn == 0 || disp_w == 0 {
                10_000
            } else {
                (spawn_w as u128 * total_disp as u128 * 10_000
                    / (disp_w as u128 * total_spawn as u128)) as u64
            };
            let settle_ns = settle_bin.map(|b| (b as u64 + 1) * w);
            BurstSignal {
                onset_ns: onset,
                band_p99_ns: band,
                settle_ns,
                lag_ns: settle_ns.map(|t| t - onset),
                provisioning_efficiency_bp: served * 10_000 / offered.max(1),
                cold_start_amplification_bp: amplification,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The timeline document
// ---------------------------------------------------------------------------

/// A timeline report: one [`ScenarioSeries`] per scenario of an experiment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimelineDoc {
    /// The per-scenario series, in scenario order.
    pub scenarios: Vec<ScenarioSeries>,
}

impl TimelineDoc {
    /// A document over already-reduced series.
    pub fn from_series(scenarios: Vec<ScenarioSeries>) -> TimelineDoc {
        TimelineDoc { scenarios }
    }

    /// Offline reduction: replay recorded traces through an [`Observer`]
    /// each, yielding exactly what the online path would have produced.
    pub fn from_traces(traces: &[(String, Trace)], window: Duration) -> TimelineDoc {
        let scenarios = traces
            .iter()
            .map(|(label, trace)| {
                let mut obs = Observer::new(window);
                for e in &trace.events {
                    obs.feed(e);
                }
                obs.finish(label.clone())
            })
            .collect();
        TimelineDoc { scenarios }
    }

    /// The document as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "scenarios".into(),
            Json::Arr(self.scenarios.iter().map(|s| s.to_json()).collect()),
        )])
    }

    /// Parse a document rendered from [`TimelineDoc::to_json`].
    pub fn parse(text: &str) -> Option<TimelineDoc> {
        let j = Json::parse(text).ok()?;
        let scenarios = match j.get("scenarios")? {
            Json::Arr(items) => items
                .iter()
                .map(ScenarioSeries::from_json)
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(TimelineDoc { scenarios })
    }

    /// Render the ASCII sparkline timeline (the `repro timeline` default).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for s in &self.scenarios {
            render_scenario_text(&mut out, s);
        }
        out
    }

    /// Render a self-contained SVG of every scenario's timeline.
    pub fn render_svg(&self) -> String {
        render_svg(self)
    }
}

// ---------------------------------------------------------------------------
// ASCII rendering
// ---------------------------------------------------------------------------

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn spark(vals: &[u64]) -> String {
    let max = vals.iter().copied().max().unwrap_or(0);
    vals.iter()
        .map(|&v| {
            if max == 0 {
                SPARKS[0]
            } else {
                SPARKS[(v as u128 * 7 / max as u128) as usize]
            }
        })
        .collect()
}

fn clamp_pos(vals: &[i64]) -> Vec<u64> {
    vals.iter().map(|&v| v.max(0) as u64).collect()
}

/// `ns` as integer milliseconds with two decimals (`12.34ms`).
fn fmt_ms(ns: u64) -> String {
    format!("{}.{:02}ms", ns / 1_000_000, (ns % 1_000_000) / 10_000)
}

/// Basis points as a percentage with two decimals (`98.75%`).
fn fmt_bp_pct(bp: u64) -> String {
    format!("{}.{:02}%", bp / 100, bp % 100)
}

/// Basis points as a ratio with two decimals (`1.25x`).
fn fmt_bp_x(bp: u64) -> String {
    format!("{}.{:02}x", bp / 10_000, (bp % 10_000) / 100)
}

/// A sparkline row: name, sparkline, and the series maximum. `ms` renders
/// the maximum as milliseconds instead of a bare count.
fn text_row(out: &mut String, name: &str, vals: &[u64], unit: &str, ms: bool) {
    use std::fmt::Write;
    let max = vals.iter().copied().max().unwrap_or(0);
    let shown = if ms { fmt_ms(max) } else { max.to_string() };
    let _ = writeln!(out, "  {name:<10} {}  max {shown}{unit}", spark(vals));
}

fn render_scenario_text(out: &mut String, s: &ScenarioSeries) {
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "== {} ==  (window {}, {} bins, {} events)",
        s.label,
        fmt_ms(s.window_ns),
        s.bins(),
        s.events
    );
    text_row(out, "offered", &s.offered, "/bin", false);
    text_row(out, "served", &s.served, "/bin", false);
    text_row(out, "rejected", &s.rejected, "/bin", false);
    text_row(out, "p99", &s.p99_ns, "", true);
    text_row(out, "p50", &s.p50_ns, "", true);
    text_row(out, "queue", &clamp_pos(&s.queue_primary), "", false);
    if s.queue_scaled.iter().any(|&v| v != 0) {
        text_row(out, "queue2", &clamp_pos(&s.queue_scaled), "", false);
    }
    text_row(out, "inflight", &clamp_pos(&s.inflight), "", false);
    text_row(out, "active", &s.active, "", false);
    text_row(out, "idle", &s.idle, "", false);
    text_row(out, "booting", &s.booting_peak, " peak", false);
    let warm_pct: Vec<u64> = (0..s.bins())
        .map(|b| {
            let total = s.dispatch_warm[b] + s.dispatch_spawn[b] + s.dispatch_server[b];
            (s.dispatch_warm[b] * 100).checked_div(total).unwrap_or(0)
        })
        .collect();
    text_row(out, "warm-hit", &warm_pct, "%", false);
    if s.forwarded.iter().any(|&v| v != 0) {
        text_row(out, "forwarded", &s.forwarded, "/bin", false);
    }
    for sig in &s.signals {
        let lag = match sig.lag_ns {
            Some(l) => format!("lag {}", fmt_ms(l)),
            None => "lag unsettled".to_string(),
        };
        let _ = writeln!(
            out,
            "  burst @{}: {}  band p99<={}  prov-eff {}  cold-amp {}",
            fmt_ms(sig.onset_ns),
            lag,
            fmt_ms(sig.band_p99_ns),
            fmt_bp_pct(sig.provisioning_efficiency_bp),
            fmt_bp_x(sig.cold_start_amplification_bp),
        );
    }
}

// ---------------------------------------------------------------------------
// SVG rendering
// ---------------------------------------------------------------------------

/// One chart row inside the SVG: a titled polyline panel.
struct Panel<'a> {
    title: &'a str,
    color: &'a str,
    vals: Vec<u64>,
}

fn render_svg(doc: &TimelineDoc) -> String {
    use std::fmt::Write;
    const PANEL_H: u64 = 56;
    const PANEL_GAP: u64 = 14;
    const LEFT: u64 = 150;
    const STEP: u64 = 12;
    let bins = doc
        .scenarios
        .iter()
        .map(|s| s.bins())
        .max()
        .unwrap_or(0)
        .max(1) as u64;
    let width = LEFT + bins * STEP + 20;

    let mut body = String::new();
    let mut y = 10u64;
    for s in &doc.scenarios {
        let _ = writeln!(
            body,
            "<text x=\"10\" y=\"{}\" class=\"t\">{} — window {}, {} bins</text>",
            y + 14,
            xml_escape(&s.label),
            fmt_ms(s.window_ns),
            s.bins()
        );
        y += 24;
        let panels = [
            Panel {
                title: "offered/bin",
                color: "#888888",
                vals: s.offered.clone(),
            },
            Panel {
                title: "served/bin",
                color: "#2f9e44",
                vals: s.served.clone(),
            },
            Panel {
                title: "p99",
                color: "#e8590c",
                vals: s.p99_ns.clone(),
            },
            Panel {
                title: "active",
                color: "#1971c2",
                vals: s.active.clone(),
            },
            Panel {
                title: "booting peak",
                color: "#9c36b5",
                vals: s.booting_peak.clone(),
            },
            Panel {
                title: "queue",
                color: "#c92a2a",
                vals: clamp_pos(&s.queue_primary),
            },
        ];
        for p in panels {
            let max = p.vals.iter().copied().max().unwrap_or(0).max(1);
            let points: Vec<String> = p
                .vals
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let x = LEFT + i as u64 * STEP;
                    let py = y + PANEL_H - ((v as u128 * PANEL_H as u128) / max as u128) as u64;
                    format!("{x},{py}")
                })
                .collect();
            let _ = writeln!(
                body,
                "<text x=\"10\" y=\"{}\" class=\"l\">{} (max {})</text>",
                y + PANEL_H / 2,
                p.title,
                max
            );
            let _ = writeln!(
                body,
                "<polyline fill=\"none\" stroke=\"{}\" stroke-width=\"1.5\" points=\"{}\"/>",
                p.color,
                points.join(" ")
            );
            y += PANEL_H + PANEL_GAP;
        }
        // Burst onset / settle markers over the whole scenario block.
        for sig in &s.signals {
            let x = LEFT + (sig.onset_ns / s.window_ns.max(1)) * STEP;
            let _ = writeln!(
                body,
                "<line x1=\"{x}\" y1=\"{}\" x2=\"{x}\" y2=\"{}\" stroke=\"#e8590c\" stroke-dasharray=\"3,3\"/>",
                y - 6 * (PANEL_H + PANEL_GAP),
                y - PANEL_GAP
            );
            if let Some(settle) = sig.settle_ns {
                let sx = LEFT + (settle / s.window_ns.max(1)) * STEP;
                let _ = writeln!(
                    body,
                    "<line x1=\"{sx}\" y1=\"{}\" x2=\"{sx}\" y2=\"{}\" stroke=\"#2f9e44\" stroke-dasharray=\"3,3\"/>",
                    y - 6 * (PANEL_H + PANEL_GAP),
                    y - PANEL_GAP
                );
            }
        }
        y += 10;
    }
    format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{y}\" \
         viewBox=\"0 0 {width} {y}\">\n<style>.t{{font:bold 13px monospace}}\
.l{{font:11px monospace;fill:#444}}</style>\n<rect width=\"{width}\" height=\"{y}\" \
fill=\"#ffffff\"/>\n{body}</svg>\n"
    )
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

// ---------------------------------------------------------------------------
// Lag diffing (`repro lag BASELINE CURRENT`)
// ---------------------------------------------------------------------------

/// One row of a scale-up-lag comparison between two runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LagRow {
    /// Scenario label the burst belongs to.
    pub label: String,
    /// Onset time of the compared burst (ns).
    pub onset_ns: u64,
    /// Baseline scale-up lag, `None` when the baseline never settled.
    pub baseline_ns: Option<u64>,
    /// Current scale-up lag, `None` when the current run never settled.
    pub current_ns: Option<u64>,
    /// Verdict: `ok`, `improved` or `REGRESSED`.
    pub verdict: &'static str,
}

/// Compare per-burst scale-up lag between a baseline and a current
/// document. Scenarios are matched by label, bursts by onset index. A lag
/// counts as regressed when it grows by more than 25% plus one bin width
/// (absorbing bin-quantisation), or stops settling entirely.
pub fn lag_diff(baseline: &TimelineDoc, current: &TimelineDoc) -> (Vec<LagRow>, bool) {
    let mut rows = Vec::new();
    let mut regressed = false;
    for b in &baseline.scenarios {
        let Some(c) = current.scenarios.iter().find(|c| c.label == b.label) else {
            continue;
        };
        for (i, bs) in b.signals.iter().enumerate() {
            let Some(cs) = c.signals.get(i) else {
                continue;
            };
            let slack = |lag: u64, window: u64| lag / 4 + window;
            let verdict = match (bs.lag_ns, cs.lag_ns) {
                (None, None) => "ok",
                (None, Some(_)) => "improved",
                (Some(_), None) => "REGRESSED",
                (Some(base), Some(cur)) => {
                    if cur > base + slack(base, b.window_ns) {
                        "REGRESSED"
                    } else if cur + slack(cur, b.window_ns) < base {
                        "improved"
                    } else {
                        "ok"
                    }
                }
            };
            regressed |= verdict == "REGRESSED";
            rows.push(LagRow {
                label: b.label.clone(),
                onset_ns: bs.onset_ns,
                baseline_ns: bs.lag_ns,
                current_ns: cs.lag_ns,
                verdict,
            });
        }
    }
    (rows, regressed)
}

/// Render a lag comparison as an aligned text table.
pub fn render_lag_rows(rows: &[LagRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(8).max(8);
    let _ = writeln!(
        out,
        "{:<label_w$}  {:>10}  {:>12}  {:>12}  verdict",
        "scenario", "onset", "baseline", "current"
    );
    for r in rows {
        let f = |v: Option<u64>| match v {
            Some(ns) => fmt_ms(ns),
            None => "unsettled".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<label_w$}  {:>10}  {:>12}  {:>12}  {}",
            r.label,
            fmt_ms(r.onset_ns),
            f(r.baseline_ns),
            f(r.current_ns),
            r.verdict
        );
    }
    out
}

fn str_field(j: &Json, key: &str) -> Option<String> {
    match j.get(key) {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn u64_field(j: &Json, key: &str) -> Option<u64> {
    match j.get(key) {
        Some(Json::Int(i)) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

fn u64_arr(j: &Json, key: &str) -> Option<Vec<u64>> {
    match j.get(key) {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| match v {
                Json::Int(i) if *i >= 0 => Some(*i as u64),
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

fn i64_arr(j: &Json, key: &str) -> Option<Vec<i64>> {
    match j.get(key) {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| match v {
                Json::Int(i) => Some(*i as i64),
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_sim::SimTime;
    use beehive_telemetry::{EventKind, TraceEvent, Track};

    fn ev(ms: u64, track: Track, name: &'static str, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(ms * 1_000_000),
            track,
            name,
            kind,
            args: Vec::new(),
        }
    }

    fn ev_args(
        ms: u64,
        track: Track,
        name: &'static str,
        kind: EventKind,
        args: Vec<(&'static str, Arg)>,
    ) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(ms * 1_000_000),
            track,
            name,
            kind,
            args,
        }
    }

    /// One request served per 100ms-ish bin with stable latency, plus a
    /// slow early phase so the run-start burst has a visible lag.
    fn stable_run(obs: &mut Observer) {
        for i in 0..40u64 {
            let rid = i;
            let t0 = i * 100;
            let lat = if i < 8 { 40 } else { 5 }; // slow start, then steady
            obs.feed(&ev(t0, Track::Request(rid), "req:server", EventKind::Begin));
            obs.feed(&ev(
                t0 + lat,
                Track::Request(rid),
                "req:server",
                EventKind::End,
            ));
        }
    }

    #[test]
    fn bins_are_fixed_width_and_counts_add_up() {
        let mut obs = Observer::new(Duration::from_millis(100));
        stable_run(&mut obs);
        let s = obs.finish("t".into());
        assert_eq!(s.window_ns, 100_000_000);
        assert_eq!(s.offered.iter().sum::<u64>(), 40);
        assert_eq!(s.served.iter().sum::<u64>(), 40);
        assert!(s.bins() >= 40, "one bin per 100ms of activity");
        assert_eq!(s.p50_ns.len(), s.bins());
        assert_eq!(s.signals.len(), 1, "implicit run-start onset");
    }

    #[test]
    fn run_start_burst_settles_with_finite_lag() {
        let mut obs = Observer::new(Duration::from_millis(100));
        stable_run(&mut obs);
        let s = obs.finish("t".into());
        let sig = &s.signals[0];
        assert_eq!(sig.onset_ns, 0);
        let lag = sig.lag_ns.expect("stable run must settle");
        assert!(lag >= 100_000_000, "slow start delays settling");
        assert_eq!(sig.settle_ns, Some(lag));
        assert!(sig.provisioning_efficiency_bp > 0);
    }

    #[test]
    fn shadow_requests_are_not_offered_load() {
        let mut obs = Observer::new(Duration::from_millis(100));
        obs.feed(&ev(0, Track::Request(1), "req:shadow", EventKind::Begin));
        obs.feed(&ev(10, Track::Request(1), "req:shadow", EventKind::End));
        obs.feed(&ev(20, Track::Request(2), "req:offload", EventKind::Begin));
        obs.feed(&ev(30, Track::Request(2), "req:offload", EventKind::End));
        let s = obs.finish("t".into());
        assert_eq!(s.offered.iter().sum::<u64>(), 1);
        assert_eq!(s.served.iter().sum::<u64>(), 1);
    }

    #[test]
    fn boot_wait_is_charged_to_the_request_latency() {
        let mut obs = Observer::new(Duration::from_millis(100));
        // boot:wait precedes the session span at the same instant.
        obs.feed(&ev_args(
            50,
            Track::Request(7),
            "boot:wait",
            EventKind::Complete(Duration::from_millis(50)),
            vec![("cold", Arg::Bool(true))],
        ));
        obs.feed(&ev(50, Track::Request(7), "req:offload", EventKind::Begin));
        obs.feed(&ev(60, Track::Request(7), "req:offload", EventKind::End));
        let s = obs.finish("t".into());
        // 10ms of execution + 50ms hidden boot wait = 60ms latency.
        assert!(s.p99_ns.iter().any(|&v| v >= 60_000_000));
    }

    #[test]
    fn rejections_count_as_offered() {
        let mut obs = Observer::new(Duration::from_millis(100));
        obs.feed(&ev(10, Track::Server, "rejected", EventKind::Instant));
        obs.feed(&ev(20, Track::Request(1), "req:server", EventKind::Begin));
        obs.feed(&ev(25, Track::Request(1), "req:server", EventKind::End));
        let s = obs.finish("t".into());
        assert_eq!(s.offered.iter().sum::<u64>(), 2);
        assert_eq!(s.rejected.iter().sum::<u64>(), 1);
        assert_eq!(s.served.iter().sum::<u64>(), 1);
    }

    #[test]
    fn instance_lifecycle_tracks_fleet_gauges() {
        let mut obs = Observer::new(Duration::from_millis(10));
        obs.feed(&ev(
            1,
            Track::Instance(0),
            "instance:cold_boot",
            EventKind::Instant,
        ));
        obs.feed(&ev(
            2,
            Track::Instance(1),
            "instance:cold_boot",
            EventKind::Instant,
        ));
        obs.feed(&ev(
            15,
            Track::Instance(0),
            "instance:ready",
            EventKind::Instant,
        ));
        obs.feed(&ev(
            25,
            Track::Instance(0),
            "instance:release",
            EventKind::Instant,
        ));
        obs.feed(&ev(
            35,
            Track::Instance(0),
            "instance:warm_start",
            EventKind::Instant,
        ));
        obs.feed(&ev(
            45,
            Track::Instance(0),
            "instance:kill",
            EventKind::Instant,
        ));
        let s = obs.finish("t".into());
        // Bin 0: both booting; peak 2.
        assert_eq!(s.booting[0], 2);
        assert_eq!(s.booting_peak[0], 2);
        // Bin 1: one ready (active), one still booting.
        assert_eq!(s.active[1], 1);
        assert_eq!(s.booting[1], 1);
        // Bin 2: released to the warm cache.
        assert_eq!(s.idle[2], 1);
        assert_eq!(s.active[2], 0);
        // Bin 3: warm start took it busy again.
        assert_eq!(s.active[3], 1);
        assert_eq!(s.idle[3], 0);
        // Bin 4: killed.
        assert_eq!(s.active[4], 0);
    }

    #[test]
    fn expire_drains_the_idle_gauge() {
        let mut obs = Observer::new(Duration::from_millis(10));
        for id in 0..3u32 {
            obs.feed(&ev(
                1,
                Track::Instance(id),
                "instance:warm_start",
                EventKind::Instant,
            ));
            obs.feed(&ev(
                2,
                Track::Instance(id),
                "instance:release",
                EventKind::Instant,
            ));
        }
        obs.feed(&ev_args(
            15,
            Track::Platform,
            "instance:expire",
            EventKind::Instant,
            vec![("count", Arg::UInt(2))],
        ));
        let s = obs.finish("t".into());
        assert_eq!(s.idle[0], 3);
        assert_eq!(s.idle[1], 1);
    }

    #[test]
    fn onsets_from_rate_steps_produce_extra_signals() {
        let mut obs = Observer::new(Duration::from_millis(100));
        stable_run(&mut obs);
        obs.feed(&ev_args(
            2_000,
            Track::Sim,
            "burst:onset",
            EventKind::Instant,
            vec![
                ("mrps_from", Arg::UInt(50_000)),
                ("mrps_to", Arg::UInt(150_000)),
            ],
        ));
        // A rate *drop* is not an onset.
        obs.feed(&ev_args(
            3_000,
            Track::Sim,
            "burst:onset",
            EventKind::Instant,
            vec![
                ("mrps_from", Arg::UInt(150_000)),
                ("mrps_to", Arg::UInt(50_000)),
            ],
        ));
        let s = obs.finish("t".into());
        assert_eq!(s.signals.len(), 2);
        assert_eq!(s.signals[1].onset_ns, 2_000_000_000);
    }

    #[test]
    fn dispatch_outcomes_and_burst_routes_are_binned() {
        let mut obs = Observer::new(Duration::from_millis(100));
        for (ms, outcome) in [(10, "warm"), (20, "spawn"), (30, "server"), (40, "warm")] {
            obs.feed(&ev_args(
                ms,
                Track::Server,
                "offload:dispatch",
                EventKind::Instant,
                vec![("outcome", Arg::Str(outcome))],
            ));
        }
        obs.feed(&ev_args(
            50,
            Track::Server,
            "burst:route",
            EventKind::Instant,
            vec![("route", Arg::Str("scaled"))],
        ));
        obs.feed(&ev_args(
            60,
            Track::Server,
            "burst:route",
            EventKind::Instant,
            vec![("route", Arg::Str("primary"))],
        ));
        let s = obs.finish("t".into());
        assert_eq!(s.dispatch_warm[0], 2);
        assert_eq!(s.dispatch_spawn[0], 1);
        assert_eq!(s.dispatch_server[0], 1);
        assert_eq!(s.forwarded[0], 1);
    }

    #[test]
    fn gauges_carry_forward_across_empty_bins() {
        let mut obs = Observer::new(Duration::from_millis(10));
        obs.feed(&ev_args(
            1,
            Track::Sim,
            "server_pool",
            EventKind::Counter(5),
            vec![],
        ));
        obs.feed(&ev(55, Track::Server, "rejected", EventKind::Instant));
        let s = obs.finish("t".into());
        assert!(s.bins() >= 5);
        for b in 0..s.bins() {
            assert_eq!(s.queue_primary[b], 5, "bin {b} must carry the gauge");
        }
    }

    #[test]
    fn json_round_trips_byte_identically() {
        let mut obs = Observer::new(Duration::from_millis(100));
        stable_run(&mut obs);
        obs.feed(&ev_args(
            1_500,
            Track::Sim,
            "pool:depth",
            EventKind::Instant,
            vec![("pool", Arg::UInt(1)), ("depth", Arg::UInt(3))],
        ));
        let doc = TimelineDoc::from_series(vec![obs.finish("scenario a".into())]);
        let text = doc.to_json().render();
        let parsed = TimelineDoc::parse(&text).expect("parse");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.to_json().render(), text);
    }

    #[test]
    fn ascii_and_svg_render_every_scenario() {
        let mut obs = Observer::new(Duration::from_millis(100));
        stable_run(&mut obs);
        let doc = TimelineDoc::from_series(vec![obs.finish("my scenario".into())]);
        let text = doc.render_text();
        assert!(text.contains("== my scenario =="));
        assert!(text.contains("offered"));
        assert!(text.contains("burst @0.00ms"));
        let svg = doc.render_svg();
        assert!(svg.starts_with("<svg "));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("my scenario"));
    }

    #[test]
    fn lag_diff_flags_regressions_and_improvements() {
        let series = |lag: Option<u64>| ScenarioSeries {
            label: "s".into(),
            window_ns: 1_000_000_000,
            signals: vec![BurstSignal {
                onset_ns: 0,
                band_p99_ns: 1,
                settle_ns: lag,
                lag_ns: lag,
                provisioning_efficiency_bp: 10_000,
                cold_start_amplification_bp: 10_000,
            }],
            ..ScenarioSeries::default()
        };
        let base = TimelineDoc::from_series(vec![series(Some(2_000_000_000))]);
        let same = TimelineDoc::from_series(vec![series(Some(2_400_000_000))]);
        let worse = TimelineDoc::from_series(vec![series(Some(9_000_000_000))]);
        let never = TimelineDoc::from_series(vec![series(None)]);

        let (rows, regressed) = lag_diff(&base, &same);
        assert_eq!(rows[0].verdict, "ok");
        assert!(!regressed);
        let (rows, regressed) = lag_diff(&base, &worse);
        assert_eq!(rows[0].verdict, "REGRESSED");
        assert!(regressed);
        let (rows, regressed) = lag_diff(&base, &never);
        assert_eq!(rows[0].verdict, "REGRESSED");
        assert!(regressed);
        let (rows, regressed) = lag_diff(&worse, &base);
        assert_eq!(rows[0].verdict, "improved");
        assert!(!regressed);
        let table = render_lag_rows(&rows);
        assert!(table.contains("scenario"));
        assert!(table.contains("improved"));
    }

    #[test]
    fn offline_replay_equals_streaming() {
        let events: Vec<TraceEvent> = (0..10u64)
            .flat_map(|i| {
                vec![
                    ev(i * 100, Track::Request(i), "req:server", EventKind::Begin),
                    ev(i * 100 + 5, Track::Request(i), "req:server", EventKind::End),
                ]
            })
            .collect();
        let mut streaming = Observer::new(DEFAULT_WINDOW);
        for e in &events {
            streaming.feed(e);
        }
        let streaming = streaming.finish("x".into());
        let trace = Trace { events };
        let doc = TimelineDoc::from_traces(&[("x".into(), trace)], DEFAULT_WINDOW);
        assert_eq!(doc.scenarios[0], streaming);
    }
}
