//! # beehive-profiler — exact-attribution call-tree profiling in virtual time
//!
//! BeeHive's root-method selection rests on a profiler that records
//! invocation counts and accumulated execution time per candidate method
//! (§4.3). This crate generalizes that to *every* method: the resumable
//! interpreter drives the recorder on each frame push/pop, so the profile is
//! an exact attribution of virtual CPU time to a call tree — no sampling,
//! no skid. Trees are keyed by endpoint *lane* (`server`, `faas:primary`,
//! `faas:shadow`), which puts a method's server cost next to its FaaS cost
//! in one artifact, and non-method costs (fallback round trips, GC pauses,
//! monitor hand-offs, DB rounds) are folded into the same tree as
//! *synthetic frames* attached to the bytecode site that triggered them.
//!
//! The recorder follows the `beehive-telemetry` sink design: a thread-local
//! `Option<Recorder>`, probes that are a single thread-local check when no
//! recorder is installed, and a `compile-off` cargo feature that compiles
//! every probe to an empty inline function for the overhead bench.
//!
//! Virtual time only: probes receive the interpreter's accumulated per-run
//! CPU counter, never the wall clock, so a profile is byte-identical for a
//! given seed regardless of worker count or host.
//!
//! Exports: Brendan Gregg collapsed-stack text ([`Profile::folded`],
//! flamegraph.pl / inferno compatible), a JSON call tree
//! ([`Profile::to_json`]) and per-lane hottest-method tables
//! ([`Profile::hottest`]). [`parse_folded`] round-trips the folded format.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::HashMap;

use beehive_sim::json::Json;
use beehive_sim::Duration;

/// `true` when the `compile-off` feature erased every probe.
pub const COMPILED_OFF: bool = cfg!(feature = "compile-off");

/// One frame in the profile tree: a method (by raw [`u32`] id — this crate
/// does not depend on the VM) or a synthetic cost frame such as `[gc]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FrameKey {
    /// A bytecode method, by raw method id.
    Method(u32),
    /// A synthetic non-method cost: `[fallback:code]`, `[gc]`, `[db]`, ….
    Synthetic(&'static str),
}

#[derive(Clone, Debug)]
struct Node {
    frame: FrameKey,
    children: Vec<(FrameKey, usize)>,
    self_time: Duration,
    calls: u64,
}

impl Node {
    fn new(frame: FrameKey) -> Node {
        Node {
            frame,
            children: Vec::new(),
            self_time: Duration::ZERO,
            calls: 0,
        }
    }
}

/// A stable handle to the tree position where an execution last blocked;
/// synthetic frames for deferred costs (monitor hand-offs applied on a later
/// resume, server GC finished by the driver) attach here.
#[derive(Clone, Copy, Debug)]
pub struct ProfMark(usize);

/// Per-instance execution totals (the per-lane trees merge instances so
/// goldens stay small; this table keeps each FaaS instance visible).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstanceTotals {
    /// Virtual CPU nanoseconds executed on the instance.
    pub self_ns: u64,
    /// Interpreter run segments executed on the instance.
    pub segments: u64,
}

/// The recording sink: a forest of call trees, one root per lane.
#[derive(Debug, Default)]
pub struct Recorder {
    nodes: Vec<Node>,
    lanes: Vec<(&'static str, usize)>,
    stack: Vec<usize>,
    watermark: Duration,
    leaf: Option<usize>,
    instance: Option<u32>,
    instances: BTreeMap<u32, InstanceTotals>,
}

impl Recorder {
    fn lane_root(&mut self, lane: &'static str) -> usize {
        if let Some(&(_, idx)) = self.lanes.iter().find(|(l, _)| *l == lane) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::new(FrameKey::Synthetic(lane)));
        self.lanes.push((lane, idx));
        idx
    }

    fn child_of(&mut self, parent: usize, frame: FrameKey) -> usize {
        if let Some(&(_, idx)) = self.nodes[parent]
            .children
            .iter()
            .find(|(f, _)| *f == frame)
        {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::new(frame));
        self.nodes[parent].children.push((frame, idx));
        idx
    }

    /// Charge `cpu - watermark` to the current top of stack.
    fn flush(&mut self, cpu: Duration) {
        let delta = cpu.saturating_sub(self.watermark);
        self.watermark = cpu;
        if delta.is_zero() {
            return;
        }
        if let Some(&top) = self.stack.last() {
            self.nodes[top].self_time += delta;
            if let Some(id) = self.instance {
                self.instances.entry(id).or_default().self_ns += delta.as_nanos();
            }
        }
    }

    fn begin_segment(
        &mut self,
        lane: &'static str,
        instance: Option<u32>,
        frames: impl Iterator<Item = u32>,
        first: bool,
    ) {
        let root = self.lane_root(lane);
        self.stack.clear();
        self.stack.push(root);
        self.watermark = Duration::ZERO;
        self.instance = instance;
        if let Some(id) = instance {
            self.instances.entry(id).or_default().segments += 1;
        }
        // Replay the execution's existing frames: executions from different
        // requests interleave on one thread across run segments, so the
        // current path is rebuilt per segment. Only the first segment of an
        // execution counts a root invocation; deeper frames were counted
        // when their push was recorded.
        let mut at_root = true;
        for m in frames {
            let parent = *self.stack.last().expect("stack holds the lane root");
            let idx = self.child_of(parent, FrameKey::Method(m));
            if first && at_root {
                self.nodes[idx].calls += 1;
            }
            at_root = false;
            self.stack.push(idx);
        }
    }

    fn push(&mut self, method: u32, cpu: Duration) {
        self.flush(cpu);
        let Some(&parent) = self.stack.last() else {
            return; // no open segment: a probe outside the interpreter driver
        };
        let idx = self.child_of(parent, FrameKey::Method(method));
        self.nodes[idx].calls += 1;
        self.stack.push(idx);
    }

    fn pop(&mut self, cpu: Duration) {
        self.flush(cpu);
        if self.stack.len() > 1 {
            self.stack.pop();
        }
    }

    fn end_segment(&mut self, cpu: Duration) {
        self.flush(cpu);
        self.leaf = self.stack.last().copied();
        self.stack.clear();
        self.instance = None;
    }

    fn synthetic(&mut self, at: usize, name: &'static str, d: Duration) {
        let idx = self.child_of(at, FrameKey::Synthetic(name));
        self.nodes[idx].calls += 1;
        self.nodes[idx].self_time += d;
    }

    fn into_raw(self) -> RawProfile {
        RawProfile {
            nodes: self.nodes,
            lanes: self.lanes,
            instances: self.instances,
        }
    }
}

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

fn with_recorder(f: impl FnOnce(&mut Recorder)) {
    if cfg!(feature = "compile-off") {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Install a fresh recorder on this thread. Replaces any existing one.
pub fn install() {
    if cfg!(feature = "compile-off") {
        return;
    }
    RECORDER.with(|r| *r.borrow_mut() = Some(Recorder::default()));
}

/// Remove this thread's recorder and return what it collected.
pub fn take() -> Option<RawProfile> {
    if cfg!(feature = "compile-off") {
        return None;
    }
    RECORDER
        .with(|r| r.borrow_mut().take())
        .map(Recorder::into_raw)
}

/// `true` when a recorder is installed on this thread. Probe call sites use
/// this to skip argument construction entirely.
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "compile-off") {
        return false;
    }
    RECORDER.with(|r| r.borrow().is_some())
}

/// Open a run segment: set the lane, rebuild the current frame path, reset
/// the CPU watermark. `first` marks the execution's first segment (counts
/// the root invocation).
#[inline]
pub fn begin_segment(
    lane: &'static str,
    instance: Option<u32>,
    frames: impl Iterator<Item = u32>,
    first: bool,
) {
    with_recorder(|r| r.begin_segment(lane, instance, frames, first));
}

/// Record a frame push at `cpu` nanoseconds into the current segment.
#[inline]
pub fn push(method: u32, cpu: Duration) {
    with_recorder(|r| r.push(method, cpu));
}

/// Record a frame pop at `cpu` nanoseconds into the current segment.
#[inline]
pub fn pop(cpu: Duration) {
    with_recorder(|r| r.pop(cpu));
}

/// Close the current segment, flushing the remaining CPU to the open frame
/// and remembering it as the [`mark`] target.
#[inline]
pub fn end_segment(cpu: Duration) {
    with_recorder(|r| r.end_segment(cpu));
}

/// The tree position where the last closed segment stopped — the bytecode
/// site that triggered whatever blocked the execution.
#[inline]
pub fn mark() -> Option<ProfMark> {
    if cfg!(feature = "compile-off") {
        return None;
    }
    RECORDER.with(|r| r.borrow().as_ref().and_then(|rec| rec.leaf.map(ProfMark)))
}

/// Attach `d` of synthetic cost named `name` under `mark`'s tree position.
#[inline]
pub fn synthetic(mark: ProfMark, name: &'static str, d: Duration) {
    with_recorder(|r| r.synthetic(mark.0, name, d));
}

/// §4.3 per-method bookkeeping: invocation count and accumulated virtual
/// execution time. The server's root-selection profiler and the call-tree
/// aggregation both use this one type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MethodProfile {
    /// Completed invocations observed.
    pub invocations: u64,
    /// Accumulated virtual execution time.
    pub total_time: Duration,
}

impl MethodProfile {
    /// Average execution time per invocation (zero when never invoked).
    pub fn average(&self) -> Duration {
        if self.invocations == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.invocations
        }
    }
}

/// Per-method aggregation keyed by raw method id — the single bookkeeping
/// path behind both the server's §4.3 profiler and [`RawProfile::aggregate`].
#[derive(Clone, Debug, Default)]
pub struct Aggregate {
    samples: HashMap<u32, MethodProfile>,
}

impl Aggregate {
    /// An empty aggregation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed invocation of `method` taking `elapsed`.
    pub fn record(&mut self, method: u32, elapsed: Duration) {
        let p = self.samples.entry(method).or_default();
        p.invocations += 1;
        p.total_time += elapsed;
    }

    /// The profile recorded for `method`, if any.
    pub fn get(&self, method: u32) -> Option<&MethodProfile> {
        self.samples.get(&method)
    }

    /// Number of distinct methods sampled.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// The unresolved output of a [`Recorder`]: method frames still carry raw
/// ids. [`RawProfile::resolve`] turns them into names.
#[derive(Clone, Debug)]
pub struct RawProfile {
    nodes: Vec<Node>,
    lanes: Vec<(&'static str, usize)>,
    instances: BTreeMap<u32, InstanceTotals>,
}

impl RawProfile {
    /// Derive §4.3 [`MethodProfile`]s from the call tree: per method (over
    /// all lanes and call sites), invocations and total time — self time
    /// plus everything beneath the frame, synthetic costs included.
    pub fn aggregate(&self) -> Aggregate {
        let mut agg = Aggregate::new();
        let totals: Vec<Duration> = self.total_times();
        for (i, n) in self.nodes.iter().enumerate() {
            if let FrameKey::Method(m) = n.frame {
                let p = agg.samples.entry(m).or_default();
                p.invocations += n.calls;
                p.total_time += totals[i];
            }
        }
        agg
    }

    fn total_times(&self) -> Vec<Duration> {
        // Children always have larger indices than their parent (arena is
        // append-only, children created after), so one reverse pass folds
        // subtree totals bottom-up.
        let mut totals: Vec<Duration> = self.nodes.iter().map(|n| n.self_time).collect();
        for i in (0..self.nodes.len()).rev() {
            for &(_, c) in &self.nodes[i].children {
                let t = totals[c];
                totals[i] += t;
            }
        }
        totals
    }

    /// Resolve method ids to display names, producing a [`Profile`].
    pub fn resolve(&self, name_of: impl Fn(u32) -> String) -> Profile {
        fn build(raw: &RawProfile, idx: usize, name_of: &impl Fn(u32) -> String) -> ProfileNode {
            let n = &raw.nodes[idx];
            let mut children: Vec<ProfileNode> = n
                .children
                .iter()
                .map(|&(_, c)| build(raw, c, name_of))
                .collect();
            children.sort_by(|a, b| a.frame.cmp(&b.frame));
            ProfileNode {
                frame: match n.frame {
                    FrameKey::Method(m) => name_of(m),
                    FrameKey::Synthetic(s) => s.to_string(),
                },
                self_ns: n.self_time.as_nanos(),
                calls: n.calls,
                children,
            }
        }
        let mut lanes: Vec<LaneProfile> = self
            .lanes
            .iter()
            .map(|&(lane, idx)| {
                let root = build(self, idx, &name_of);
                LaneProfile {
                    lane: lane.to_string(),
                    roots: root.children,
                }
            })
            .collect();
        lanes.sort_by(|a, b| a.lane.cmp(&b.lane));
        Profile {
            lanes,
            instances: self.instances.iter().map(|(&id, &t)| (id, t)).collect(),
        }
    }
}

/// One resolved node of the profile tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileNode {
    /// Display name: `Class.method` or a `[synthetic]` frame.
    pub frame: String,
    /// Virtual nanoseconds spent in this frame itself.
    pub self_ns: u64,
    /// Invocations (or synthetic-cost occurrences).
    pub calls: u64,
    /// Callees, sorted by frame name.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Self time plus everything beneath this frame.
    pub fn total_ns(&self) -> u64 {
        self.self_ns + self.children.iter().map(ProfileNode::total_ns).sum::<u64>()
    }
}

/// One endpoint lane's call trees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneProfile {
    /// Lane name: `server`, `faas:primary` or `faas:shadow`.
    pub lane: String,
    /// Root frames of the lane.
    pub roots: Vec<ProfileNode>,
}

/// One hottest-method table row ([`Profile::hottest`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotMethod {
    /// Frame name.
    pub frame: String,
    /// Summed self time over every occurrence in the lane.
    pub self_ns: u64,
    /// Summed subtree time over every occurrence in the lane.
    pub total_ns: u64,
    /// Summed invocations.
    pub calls: u64,
}

/// A fully resolved, deterministic per-scenario profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Profile {
    /// Per-lane call trees, sorted by lane name.
    pub lanes: Vec<LaneProfile>,
    /// Per-FaaS-instance totals, sorted by instance id.
    pub instances: Vec<(u32, InstanceTotals)>,
}

impl Profile {
    /// Brendan Gregg collapsed-stack text: one `lane;f1;…;fN <nanos>` line
    /// per stack with non-zero self time, sorted lexically, trailing
    /// newline. Feed to `flamegraph.pl` or inferno unchanged.
    pub fn folded(&self) -> String {
        fn walk(path: &mut String, n: &ProfileNode, lines: &mut Vec<String>) {
            let len = path.len();
            path.push(';');
            path.push_str(&n.frame);
            if n.self_ns > 0 {
                lines.push(format!("{path} {}", n.self_ns));
            }
            for c in &n.children {
                walk(path, c, lines);
            }
            path.truncate(len);
        }
        let mut lines = Vec::new();
        for lane in &self.lanes {
            let mut path = lane.lane.clone();
            for r in &lane.roots {
                walk(&mut path, r, &mut lines);
            }
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// The call tree as a JSON document (deterministic key order,
    /// renderable with [`Json::render`]).
    pub fn to_json(&self) -> Json {
        fn node(n: &ProfileNode) -> Json {
            Json::obj([
                ("frame".into(), Json::Str(n.frame.clone())),
                ("self_ns".into(), Json::Int(n.self_ns as i128)),
                ("total_ns".into(), Json::Int(n.total_ns() as i128)),
                ("calls".into(), Json::Int(n.calls as i128)),
                (
                    "children".into(),
                    Json::Arr(n.children.iter().map(node).collect()),
                ),
            ])
        }
        Json::obj([
            (
                "lanes".into(),
                Json::Arr(
                    self.lanes
                        .iter()
                        .map(|l| {
                            Json::obj([
                                ("lane".into(), Json::Str(l.lane.clone())),
                                (
                                    "roots".into(),
                                    Json::Arr(l.roots.iter().map(node).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "instances".into(),
                Json::Arr(
                    self.instances
                        .iter()
                        .map(|&(id, t)| {
                            Json::obj([
                                ("id".into(), Json::Int(id as i128)),
                                ("self_ns".into(), Json::Int(t.self_ns as i128)),
                                ("segments".into(), Json::Int(t.segments as i128)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Per lane, the top `n` frames by summed self time (ties broken by
    /// name). Synthetic frames participate: `[gc]` showing up hot is the
    /// point.
    pub fn hottest(&self, n: usize) -> Vec<(String, Vec<HotMethod>)> {
        fn walk(n: &ProfileNode, acc: &mut BTreeMap<String, HotMethod>) {
            let e = acc.entry(n.frame.clone()).or_insert_with(|| HotMethod {
                frame: n.frame.clone(),
                self_ns: 0,
                total_ns: 0,
                calls: 0,
            });
            e.self_ns += n.self_ns;
            e.total_ns += n.total_ns();
            e.calls += n.calls;
            for c in &n.children {
                walk(c, acc);
            }
        }
        self.lanes
            .iter()
            .map(|l| {
                let mut acc = BTreeMap::new();
                for r in &l.roots {
                    walk(r, &mut acc);
                }
                let mut rows: Vec<HotMethod> = acc.into_values().collect();
                rows.sort_by(|a, b| {
                    b.self_ns
                        .cmp(&a.self_ns)
                        .then_with(|| a.frame.cmp(&b.frame))
                });
                rows.truncate(n);
                (l.lane.clone(), rows)
            })
            .collect()
    }

    /// [`Profile::hottest`] as a JSON array, for embedding in the telemetry
    /// critical-path summary.
    pub fn hottest_json(&self, n: usize) -> Json {
        Json::Arr(
            self.hottest(n)
                .into_iter()
                .map(|(lane, rows)| {
                    Json::obj([
                        ("lane".into(), Json::Str(lane)),
                        (
                            "methods".into(),
                            Json::Arr(
                                rows.into_iter()
                                    .map(|r| {
                                        Json::obj([
                                            ("frame".into(), Json::Str(r.frame)),
                                            ("self_ns".into(), Json::Int(r.self_ns as i128)),
                                            ("total_ns".into(), Json::Int(r.total_ns as i128)),
                                            ("calls".into(), Json::Int(r.calls as i128)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        )
    }
}

/// Parse collapsed-stack text back into `(stack frames, count)` pairs —
/// the round-trip check that [`Profile::folded`] output stays inside the
/// grammar flamegraph.pl accepts.
pub fn parse_folded(s: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut out = Vec::new();
    for (i, line) in s.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let Some(space) = line.rfind(' ') else {
            return Err(format!("line {}: no count separator", i + 1));
        };
        let (stack, count) = line.split_at(space);
        let count: u64 = count[1..]
            .parse()
            .map_err(|e| format!("line {}: bad count: {e}", i + 1))?;
        let frames: Vec<String> = stack.split(';').map(str::to_string).collect();
        if frames.iter().any(String::is_empty) {
            return Err(format!("line {}: empty frame", i + 1));
        }
        out.push((frames, count));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> Duration {
        Duration::from_nanos(n)
    }

    /// Drive a two-segment execution by hand (`None` when the crate was
    /// built with `compile-off` — recording tests skip themselves then):
    ///   seg 1 (server):  root 100ns self, pushes callee 1, callee 30ns, blocks
    ///   seg 2 (server):  resumes [root, callee], callee 20ns, returns,
    ///                    root 50ns, done
    fn record_two_segments() -> Option<RawProfile> {
        if COMPILED_OFF {
            return None;
        }
        install();
        begin_segment("server", None, [7u32].into_iter(), true);
        push(1, ns(100)); // root ran 100ns before calling
        end_segment(ns(130)); // callee ran 30ns, then blocked
        let m = mark().expect("blocked leaf");
        synthetic(m, "[db]", ns(500));
        begin_segment("server", None, [7u32, 1].into_iter(), false);
        pop(ns(20)); // callee finishes its remaining 20ns
        end_segment(ns(70)); // root's trailing 50ns
        Some(take().expect("recorder installed"))
    }

    #[test]
    fn exact_attribution_across_segments() {
        let Some(raw) = record_two_segments() else {
            return;
        };
        let p = raw.resolve(|m| format!("m{m}"));
        assert_eq!(p.lanes.len(), 1);
        assert_eq!(p.lanes[0].lane, "server");
        let root = &p.lanes[0].roots[0];
        assert_eq!(root.frame, "m7");
        assert_eq!(root.self_ns, 150);
        assert_eq!(root.calls, 1);
        let callee = &root.children[0];
        assert_eq!(callee.frame, "m1");
        assert_eq!(callee.self_ns, 50);
        assert_eq!(callee.calls, 1);
        let db = &callee.children[0];
        assert_eq!(db.frame, "[db]");
        assert_eq!((db.self_ns, db.calls), (500, 1));
        assert_eq!(root.total_ns(), 150 + 50 + 500);
    }

    #[test]
    fn folded_round_trips_and_sorts() {
        let Some(raw) = record_two_segments() else {
            return;
        };
        let p = raw.resolve(|m| format!("m{m}"));
        let folded = p.folded();
        assert_eq!(
            folded,
            "server;m7 150\nserver;m7;m1 50\nserver;m7;m1;[db] 500\n"
        );
        let parsed = parse_folded(&folded).expect("own output parses");
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].0, vec!["server", "m7"]);
        assert_eq!(parsed[0].1, 150);
        let mut lines: Vec<&str> = folded.lines().collect();
        let unsorted = lines.clone();
        lines.sort();
        assert_eq!(lines, unsorted, "folded output must be pre-sorted");
    }

    #[test]
    fn parse_folded_rejects_malformed_lines() {
        assert!(parse_folded("no-count-here").is_err());
        assert!(parse_folded("a;b notanumber").is_err());
        assert!(parse_folded("a;;b 3").is_err());
        assert!(parse_folded("").unwrap().is_empty());
    }

    #[test]
    fn lanes_separate_and_instances_accumulate() {
        if COMPILED_OFF {
            return;
        }
        install();
        begin_segment("server", None, [3u32].into_iter(), true);
        end_segment(ns(40));
        begin_segment("faas:primary", Some(2), [3u32].into_iter(), true);
        end_segment(ns(90));
        begin_segment("faas:primary", Some(5), [3u32].into_iter(), true);
        end_segment(ns(10));
        let p = take().unwrap().resolve(|m| format!("m{m}"));
        let lanes: Vec<&str> = p.lanes.iter().map(|l| l.lane.as_str()).collect();
        assert_eq!(lanes, vec!["faas:primary", "server"]);
        let faas = &p.lanes[0].roots[0];
        let server = &p.lanes[1].roots[0];
        assert_eq!(faas.frame, server.frame);
        assert_eq!((server.self_ns, faas.self_ns), (40, 100));
        assert_eq!(
            p.instances,
            vec![
                (
                    2,
                    InstanceTotals {
                        self_ns: 90,
                        segments: 1
                    }
                ),
                (
                    5,
                    InstanceTotals {
                        self_ns: 10,
                        segments: 1
                    }
                ),
            ]
        );
    }

    #[test]
    fn aggregate_derives_method_profiles() {
        let Some(raw) = record_two_segments() else {
            return;
        };
        let agg = raw.aggregate();
        let root = agg.get(7).expect("root sampled");
        assert_eq!(root.invocations, 1);
        // Root total = its whole subtree: 150 + 50 + 500.
        assert_eq!(root.total_time, ns(700));
        assert_eq!(root.average(), ns(700));
        let callee = agg.get(1).expect("callee sampled");
        assert_eq!(callee.total_time, ns(550));
        assert!(agg.get(99).is_none());
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn method_profile_average() {
        let mut agg = Aggregate::new();
        assert!(agg.is_empty());
        agg.record(4, ns(10));
        agg.record(4, ns(30));
        assert_eq!(agg.get(4).unwrap().average(), ns(20));
        assert_eq!(MethodProfile::default().average(), Duration::ZERO);
    }

    #[test]
    fn probes_without_recorder_are_noops() {
        assert!(!enabled());
        begin_segment("server", None, [1u32].into_iter(), true);
        push(2, ns(5));
        pop(ns(6));
        end_segment(ns(7));
        assert!(mark().is_none());
        assert!(take().is_none());
    }

    #[test]
    fn hottest_ranks_by_self_time() {
        let Some(raw) = record_two_segments() else {
            return;
        };
        let p = raw.resolve(|m| format!("m{m}"));
        let hot = p.hottest(2);
        assert_eq!(hot.len(), 1);
        let (lane, rows) = &hot[0];
        assert_eq!(lane, "server");
        assert_eq!(rows[0].frame, "[db]");
        assert_eq!(rows[0].self_ns, 500);
        assert_eq!(rows[1].frame, "m7");
        let json = p.hottest_json(2).render();
        assert!(json.contains("\"lane\":\"server\""));
        assert!(json.contains("\"frame\":\"[db]\""));
    }

    #[test]
    fn json_export_is_deterministic_and_parses() {
        let Some(raw) = record_two_segments() else {
            return;
        };
        let p = raw.resolve(|m| format!("m{m}"));
        let doc = p.to_json().render();
        assert_eq!(doc, p.to_json().render());
        let back = Json::parse(&doc).expect("profile JSON parses");
        assert!(back.get("lanes").is_some());
        assert!(back.get("instances").is_some());
    }
}
