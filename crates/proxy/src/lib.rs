//! # beehive-proxy — proxy-based connection management (§3.3)
//!
//! Web applications hold stateful connections to storage services; those
//! connections cannot be shipped to FaaS (their kernel state is not
//! user-level migratable). BeeHive's answer is a per-database **proxy** on
//! the database machine that *shares one logical connection* between the
//! server and the functions it offloads to:
//!
//! 1. The server connects to the database **via the proxy**, which records
//!    the descriptor pair (Figure 4).
//! 2. Before offloading, the server sends the proxy a **prepare** request;
//!    the proxy mints a unique connection ID, which the server packs into
//!    the closure as part of the `SocketImpl` native state.
//! 3. The function connects to the proxy presenting the ID; the proxy now
//!    maps `(server, FaaS, database)` descriptors to one logical connection
//!    and relays the function's requests over the *same* database connection
//!    the server was using — no fallback per round trip.
//!
//! The proxy is also the interposition point for **shadow execution**
//! (§3.4): between `shadowbegin` and `shadowend` messages, write requests
//! from the shadowing function are suppressed so the duplicated request has
//! no observable side effects.

#![warn(missing_docs)]

use std::collections::HashMap;

use beehive_db::{Database, QueryId, QueryOutcome, WriteKey};

/// A logical connection id as seen by the server (one per pooled
/// connection).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// The unique ID minted by a *prepare* request and packed into closures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OffloadId(pub u64);

/// Who is issuing a request over a shared connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Origin {
    /// The monolith server.
    Server,
    /// FaaS function instance `n`.
    Function(u32),
}

/// Errors from proxy operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProxyError {
    /// The connection id is unknown.
    UnknownConnection,
    /// The offload id was never prepared (or already detached).
    UnknownOffloadId,
}

impl std::fmt::Display for ProxyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProxyError::UnknownConnection => write!(f, "unknown connection id"),
            ProxyError::UnknownOffloadId => write!(f, "offload id was never prepared"),
        }
    }
}

impl std::error::Error for ProxyError {}

#[derive(Debug, Default)]
struct ConnEntry {
    /// Function endpoints attached to this connection via prepared IDs.
    attached: Vec<u32>,
}

/// The connection proxy in front of one database.
#[derive(Debug)]
pub struct Proxy {
    db: Database,
    conns: HashMap<ConnId, ConnEntry>,
    prepared: HashMap<OffloadId, ConnId>,
    next_conn: u64,
    next_offload: u64,
    shadowing: HashMap<u32, bool>,
    rounds_server: u64,
    rounds_function: u64,
}

impl Proxy {
    /// A proxy fronting `db`.
    pub fn new(db: Database) -> Self {
        Proxy {
            db,
            conns: HashMap::new(),
            prepared: HashMap::new(),
            next_conn: 1,
            next_offload: 1,
            shadowing: HashMap::new(),
            rounds_server: 0,
            rounds_function: 0,
        }
    }

    /// The fronted database (read access for verification).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable database access (seeding).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The server opens a connection (through the proxy, Figure 4 step 0).
    pub fn connect_server(&mut self) -> ConnId {
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        self.conns.insert(id, ConnEntry::default());
        id
    }

    /// The server prepares a connection for offloading: the proxy mints a
    /// unique ID the closure will carry (Figure 4 steps 1–2).
    ///
    /// # Errors
    ///
    /// [`ProxyError::UnknownConnection`] if `conn` was never opened.
    pub fn prepare(&mut self, conn: ConnId) -> Result<OffloadId, ProxyError> {
        if !self.conns.contains_key(&conn) {
            return Err(ProxyError::UnknownConnection);
        }
        let id = OffloadId(self.next_offload);
        self.next_offload += 1;
        self.prepared.insert(id, conn);
        Ok(id)
    }

    /// A function connects presenting a prepared ID (Figure 4 step 4); the
    /// proxy extends the descriptor mapping with the function endpoint.
    ///
    /// # Errors
    ///
    /// [`ProxyError::UnknownOffloadId`] if the ID was never prepared.
    pub fn attach_function(
        &mut self,
        offload: OffloadId,
        function: u32,
    ) -> Result<ConnId, ProxyError> {
        let conn = *self
            .prepared
            .get(&offload)
            .ok_or(ProxyError::UnknownOffloadId)?;
        let entry = self.conns.get_mut(&conn).expect("prepared conn exists");
        if !entry.attached.contains(&function) {
            entry.attached.push(function);
        }
        Ok(conn)
    }

    /// Functions attached to `conn` (the FaaS column of Figure 4's table).
    pub fn attached_functions(&self, conn: ConnId) -> &[u32] {
        self.conns
            .get(&conn)
            .map(|e| e.attached.as_slice())
            .unwrap_or(&[])
    }

    /// `shadowbegin`: subsequent writes from `function` are suppressed
    /// (§3.4).
    pub fn shadow_begin(&mut self, function: u32) {
        self.shadowing.insert(function, true);
    }

    /// `shadowend`: subsequent requests from `function` are handled
    /// normally.
    pub fn shadow_end(&mut self, function: u32) {
        self.shadowing.insert(function, false);
    }

    /// `true` while `function` is in shadow mode.
    pub fn is_shadowing(&self, function: u32) -> bool {
        self.shadowing.get(&function).copied().unwrap_or(false)
    }

    /// Execute one round trip over a shared connection.
    ///
    /// # Errors
    ///
    /// [`ProxyError::UnknownConnection`] if the connection does not exist.
    ///
    /// # Panics
    ///
    /// Panics (from the database) on writes without a `write_key`.
    pub fn execute(
        &mut self,
        conn: ConnId,
        origin: Origin,
        query: QueryId,
        arg: i64,
        write_key: Option<WriteKey>,
    ) -> Result<QueryOutcome, ProxyError> {
        if !self.conns.contains_key(&conn) {
            return Err(ProxyError::UnknownConnection);
        }
        let suppress = match origin {
            Origin::Server => {
                self.rounds_server += 1;
                false
            }
            Origin::Function(f) => {
                self.rounds_function += 1;
                self.is_shadowing(f)
            }
        };
        // Function-origin rounds only: they carry the proxied-vs-fallen-back
        // story the trace exists to tell, while server rounds are ordinary
        // background traffic (~100 per request on db-heavy apps).
        if let Origin::Function(f) = origin {
            if beehive_telemetry::enabled() {
                use beehive_telemetry as tele;
                tele::instant(
                    tele::Track::Db,
                    "db:execute",
                    &[
                        ("query", tele::Arg::UInt(query as u64)),
                        ("function", tele::Arg::UInt(f as u64)),
                        ("suppressed", tele::Arg::Bool(suppress)),
                    ],
                );
            }
        }
        Ok(self.db.execute(query, arg, write_key, suppress))
    }

    /// (rounds from the server, rounds from functions).
    pub fn round_stats(&self) -> (u64, u64) {
        (self.rounds_server, self.rounds_function)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_db::{QueryDef, QueryKind};
    use beehive_sim::Duration;

    fn proxy() -> (Proxy, QueryId, QueryId) {
        let mut db = Database::new();
        db.seed(0, 10, |k| k + 100);
        let read = db.prepare(QueryDef {
            name: "read".into(),
            kind: QueryKind::PointRead { table: 0 },
            base_cost: Duration::from_micros(50),
            per_row: Duration::ZERO,
        });
        let insert = db.prepare(QueryDef {
            name: "insert".into(),
            kind: QueryKind::Insert { table: 1 },
            base_cost: Duration::from_micros(80),
            per_row: Duration::ZERO,
        });
        (Proxy::new(db), read, insert)
    }

    #[test]
    fn prepare_and_attach_share_a_connection() {
        let (mut p, read, _) = proxy();
        let conn = p.connect_server();
        let id = p.prepare(conn).unwrap();
        let conn2 = p.attach_function(id, 3).unwrap();
        assert_eq!(conn, conn2);
        assert_eq!(p.attached_functions(conn), &[3]);
        // Both sides execute over the same logical connection.
        let a = p.execute(conn, Origin::Server, read, 1, None).unwrap();
        let b = p.execute(conn, Origin::Function(3), read, 1, None).unwrap();
        assert_eq!(a.result, b.result);
        assert_eq!(p.round_stats(), (1, 1));
    }

    #[test]
    fn unique_offload_ids() {
        let (mut p, ..) = proxy();
        let conn = p.connect_server();
        let a = p.prepare(conn).unwrap();
        let b = p.prepare(conn).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn unknown_ids_error() {
        let (mut p, read, _) = proxy();
        assert_eq!(p.prepare(ConnId(99)), Err(ProxyError::UnknownConnection));
        assert_eq!(
            p.attach_function(OffloadId(42), 0),
            Err(ProxyError::UnknownOffloadId)
        );
        assert_eq!(
            p.execute(ConnId(99), Origin::Server, read, 0, None),
            Err(ProxyError::UnknownConnection)
        );
    }

    #[test]
    fn shadow_mode_suppresses_function_writes_only() {
        let (mut p, _, insert) = proxy();
        let conn = p.connect_server();
        let id = p.prepare(conn).unwrap();
        p.attach_function(id, 7).unwrap();
        p.shadow_begin(7);
        assert!(p.is_shadowing(7));

        // Shadow function write: suppressed.
        p.execute(conn, Origin::Function(7), insert, 5, None)
            .unwrap();
        assert_eq!(p.db().table_len(1), 0);

        // Server write during the same window: applied.
        p.execute(
            conn,
            Origin::Server,
            insert,
            5,
            Some(WriteKey { request: 1, seq: 0 }),
        )
        .unwrap();
        assert_eq!(p.db().table_len(1), 1);

        // After shadowend the function's writes are applied.
        p.shadow_end(7);
        p.execute(
            conn,
            Origin::Function(7),
            insert,
            6,
            Some(WriteKey { request: 2, seq: 0 }),
        )
        .unwrap();
        assert_eq!(p.db().table_len(1), 2);
    }

    #[test]
    fn other_functions_not_affected_by_shadow() {
        let (mut p, _, insert) = proxy();
        let conn = p.connect_server();
        let id = p.prepare(conn).unwrap();
        p.attach_function(id, 1).unwrap();
        p.attach_function(id, 2).unwrap();
        p.shadow_begin(1);
        p.execute(
            conn,
            Origin::Function(2),
            insert,
            9,
            Some(WriteKey { request: 3, seq: 0 }),
        )
        .unwrap();
        assert_eq!(p.db().table_len(1), 1, "function 2 writes normally");
    }
}
