//! The burst handler (§5.1): "we also assume a perfect burst handler to
//! immediately forward requests with pre-defined policies once a burst
//! happens. [...] Once new instances become ready, the burst handler
//! immediately forwards half of the workload to them."

use beehive_sim::SimTime;
use beehive_telemetry as tele;

/// Routes requests between the primary server and scaled-out capacity.
///
/// Until the extra capacity is ready every request goes to the primary; once
/// ready, `forward_fraction` of requests are forwarded (deterministically,
/// Bresenham-style).
#[derive(Clone, Debug)]
pub struct BurstHandler {
    ready_at: Option<SimTime>,
    forward_fraction: f64,
    acc: f64,
}

/// Where the burst handler routed a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// The always-on primary server.
    Primary,
    /// The scaled-out capacity (extra instance / FaaS).
    Scaled,
}

impl BurstHandler {
    /// A handler forwarding `forward_fraction` of requests once capacity is
    /// ready (the paper forwards half).
    pub fn new(forward_fraction: f64) -> Self {
        BurstHandler {
            ready_at: None,
            forward_fraction: forward_fraction.clamp(0.0, 1.0),
            acc: 0.0,
        }
    }

    /// Announce when the scaled capacity becomes ready.
    pub fn capacity_ready_at(&mut self, at: SimTime) {
        self.ready_at = Some(at);
    }

    /// Withdraw the scaled capacity (scale-in, §5.7 combination mode).
    pub fn capacity_gone(&mut self) {
        self.ready_at = None;
        self.acc = 0.0;
    }

    /// `true` once the scaled capacity serves requests at `now`.
    pub fn is_ready(&self, now: SimTime) -> bool {
        self.ready_at.is_some_and(|t| now >= t)
    }

    /// Route one request arriving at `now`.
    pub fn route(&mut self, now: SimTime) -> Route {
        let route = if self.ready_at.is_none_or(|t| now < t) {
            Route::Primary
        } else {
            self.acc += self.forward_fraction;
            if self.acc >= 1.0 {
                self.acc -= 1.0;
                Route::Scaled
            } else {
                Route::Primary
            }
        };
        if tele::enabled() {
            let name = match route {
                Route::Primary => "primary",
                Route::Scaled => "scaled",
            };
            tele::instant(
                tele::Track::Server,
                "burst:route",
                &[("route", tele::Arg::Str(name))],
            );
        }
        route
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_sim::Duration;

    #[test]
    fn everything_primary_before_ready() {
        let mut h = BurstHandler::new(0.5);
        for s in 0..10 {
            assert_eq!(h.route(SimTime::from_secs(s)), Route::Primary);
        }
    }

    #[test]
    fn forwards_half_once_ready() {
        let mut h = BurstHandler::new(0.5);
        h.capacity_ready_at(SimTime::from_secs(60));
        let t = SimTime::from_secs(61);
        let scaled = (0..100)
            .filter(|_| h.route(t + Duration::from_millis(1)) == Route::Scaled)
            .count();
        assert_eq!(scaled, 50);
    }

    #[test]
    fn capacity_gone_reverts_to_primary() {
        let mut h = BurstHandler::new(1.0);
        h.capacity_ready_at(SimTime::ZERO);
        assert_eq!(h.route(SimTime::from_secs(1)), Route::Scaled);
        h.capacity_gone();
        assert_eq!(h.route(SimTime::from_secs(2)), Route::Primary);
    }
}
