//! # beehive-scaling — baseline cloud scaling solutions
//!
//! The scaling alternatives BeeHive is evaluated against (§2.1, Table 1):
//! reserved, on-demand and burstable EC2 instances, and Fargate. This crate
//! provides their provisioning-time models, hourly rates and the Table 1
//! comparison data, plus the burst handler that "immediately forwards
//! requests with pre-defined policies once a burst happens" (§5.1).

#![warn(missing_docs)]

pub mod burst;
pub mod solutions;

pub use burst::{BurstHandler, Route};
pub use solutions::{table1, InstanceScaler, ScalingKind, SolutionRow};
