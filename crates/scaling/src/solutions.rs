//! The scaling solutions of Table 1 and their provisioning/cost models.

use beehive_sim::json::{Json, ToJson};
use beehive_sim::{Duration, Rng, SimTime};

/// Which scaling solution (Table 1 rows; Lambda is modelled by
/// `beehive-faas`, listed here for the comparison table).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScalingKind {
    /// Reserved EC2 instance: prepared in advance, ≥1-year commitment.
    Reserved,
    /// On-demand EC2 instance: created when needed, ~40 s provisioning plus
    /// a slow application launch.
    OnDemand,
    /// Burstable (t3) instance: always-on with usage-scaled billing.
    Burstable,
    /// AWS Fargate: container auto-scaling, ~40 s provisioning.
    Fargate,
    /// AWS Lambda (FaaS): sub-second provisioning, millisecond billing.
    Lambda,
}

impl ScalingKind {
    /// Hourly rate of one scaled instance of this kind, in dollars
    /// (us-east-1 list prices for the paper's instance types).
    pub fn hourly_rate(self) -> f64 {
        match self {
            // m4.xlarge (4 vCPU / 16 GB)
            ScalingKind::Reserved => 0.125, // ~37% below on-demand on a 1y term
            ScalingKind::OnDemand => 0.20,
            // t3.xlarge
            ScalingKind::Burstable => 0.1664,
            // 4 vCPU / 16 GB Fargate
            ScalingKind::Fargate => 0.24,
            // Billed per use; see beehive-faas.
            ScalingKind::Lambda => 0.0,
        }
    }

    /// Sample the time from a scale-out decision until the new capacity
    /// serves requests.
    ///
    /// * Reserved/burstable instances are already running (§2.1: "prepared
    ///   in advance").
    /// * On-demand: ~40 s provisioning (Table 1) plus a slow application
    ///   launch — §5.2: "on-demand instances suffer from a slower startup
    ///   and require more time to launch applications".
    /// * Fargate: ~40 s provisioning with a faster containerized app start.
    pub fn provisioning_time(self, rng: &mut Rng) -> Duration {
        match self {
            ScalingKind::Reserved | ScalingKind::Burstable => Duration::ZERO,
            ScalingKind::OnDemand => {
                rng.lognormal(Duration::from_secs(40), 0.08)
                    + rng.lognormal(Duration::from_secs(21), 0.15) // app launch
            }
            ScalingKind::Fargate => {
                rng.lognormal(Duration::from_secs(40), 0.08)
                    + rng.lognormal(Duration::from_secs(6), 0.15)
            }
            ScalingKind::Lambda => rng.lognormal(Duration::from_millis(1050), 0.15),
        }
    }

    /// Cost of using one scaled instance for `window` of scaling (the §5.4
    /// accounting: instance-time at the hourly rate; Lambda is usage-billed
    /// in `beehive-faas`).
    pub fn window_cost(self, window: Duration) -> f64 {
        self.hourly_rate() * window.as_secs_f64() / 3600.0
    }
}

impl ToJson for ScalingKind {
    fn to_json(&self) -> Json {
        Json::from(match self {
            ScalingKind::Reserved => "reserved",
            ScalingKind::OnDemand => "on_demand",
            ScalingKind::Burstable => "burstable",
            ScalingKind::Fargate => "fargate",
            ScalingKind::Lambda => "lambda",
        })
    }
}

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct SolutionRow {
    /// Solution name.
    pub name: &'static str,
    /// Minimum running time (commitment).
    pub min_running_time: &'static str,
    /// Billing granularity.
    pub billing_granularity: &'static str,
    /// Preparation time.
    pub preparation_time: &'static str,
    /// Memory configuration granularity.
    pub config_granularity: &'static str,
    /// Whether the solution auto-scales.
    pub auto_scaling: bool,
}

impl ToJson for SolutionRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name".into(), Json::from(self.name)),
            ("min_running_time".into(), Json::from(self.min_running_time)),
            (
                "billing_granularity".into(),
                Json::from(self.billing_granularity),
            ),
            ("preparation_time".into(), Json::from(self.preparation_time)),
            (
                "config_granularity".into(),
                Json::from(self.config_granularity),
            ),
            ("auto_scaling".into(), Json::from(self.auto_scaling)),
        ])
    }
}

/// The comparison data of Table 1.
pub fn table1() -> Vec<SolutionRow> {
    vec![
        SolutionRow {
            name: "Reserved",
            min_running_time: "1 year",
            billing_granularity: "years",
            preparation_time: "-",
            config_granularity: "GB",
            auto_scaling: false,
        },
        SolutionRow {
            name: "On-demand",
            min_running_time: "1 minute",
            billing_granularity: "seconds",
            preparation_time: "~40 seconds",
            config_granularity: "GB",
            auto_scaling: false,
        },
        SolutionRow {
            name: "Burstable",
            min_running_time: "1 year",
            billing_granularity: "years",
            preparation_time: "-",
            config_granularity: "GB",
            auto_scaling: false,
        },
        SolutionRow {
            name: "Fargate",
            min_running_time: "1 minute",
            billing_granularity: "seconds",
            preparation_time: "~40 seconds",
            config_granularity: "GB",
            auto_scaling: true,
        },
        SolutionRow {
            name: "Lambda (FaaS)",
            min_running_time: "1 millisecond",
            billing_granularity: "milliseconds",
            preparation_time: "<1 second",
            config_granularity: "MB",
            auto_scaling: true,
        },
    ]
}

/// Tracks one scale-out of an instance-based solution: from the burst
/// trigger through provisioning to readiness.
#[derive(Clone, Debug)]
pub struct InstanceScaler {
    kind: ScalingKind,
    ready_at: Option<SimTime>,
    requested_at: Option<SimTime>,
}

impl InstanceScaler {
    /// A scaler for `kind` with no capacity requested yet.
    pub fn new(kind: ScalingKind) -> Self {
        InstanceScaler {
            kind,
            ready_at: None,
            requested_at: None,
        }
    }

    /// The solution kind.
    pub fn kind(&self) -> ScalingKind {
        self.kind
    }

    /// Request one extra instance at `now`; returns when it will be ready.
    /// Idempotent: repeated requests return the original readiness time.
    pub fn request(&mut self, now: SimTime, rng: &mut Rng) -> SimTime {
        if let Some(t) = self.ready_at {
            return t;
        }
        self.requested_at = Some(now);
        let ready = now + self.kind.provisioning_time(rng);
        self.ready_at = Some(ready);
        ready
    }

    /// `true` once the extra instance serves requests at `now`.
    pub fn is_ready(&self, now: SimTime) -> bool {
        self.ready_at.is_some_and(|t| now >= t)
    }

    /// When the capacity becomes ready, if requested.
    pub fn ready_at(&self) -> Option<SimTime> {
        self.ready_at
    }

    /// Dollars spent on the scaled instance from the burst trigger until
    /// `until` (always-on kinds are billed for the same window for a fair
    /// §5.4 comparison).
    pub fn cost(&self, until: SimTime) -> f64 {
        let Some(start) = self.requested_at else {
            return 0.0;
        };
        self.kind.window_cost(until.saturating_since(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_shape() {
        let rows = table1();
        assert_eq!(rows.len(), 5);
        let lambda = rows.last().unwrap();
        assert_eq!(lambda.config_granularity, "MB");
        assert!(lambda.auto_scaling);
        assert!(rows[0].min_running_time.contains("year"));
        // Only FaaS and Fargate auto-scale (§2.1).
        assert_eq!(rows.iter().filter(|r| r.auto_scaling).count(), 2);
    }

    #[test]
    fn provisioning_ordering() {
        let mut rng = Rng::new(1);
        let reserved = ScalingKind::Reserved.provisioning_time(&mut rng);
        let lambda = ScalingKind::Lambda.provisioning_time(&mut rng);
        let fargate = ScalingKind::Fargate.provisioning_time(&mut rng);
        let ondemand = ScalingKind::OnDemand.provisioning_time(&mut rng);
        assert_eq!(reserved, Duration::ZERO);
        assert!(
            lambda < Duration::from_secs(3),
            "sub-second-ish: {lambda:?}"
        );
        assert!(fargate > Duration::from_secs(30));
        assert!(
            ondemand > fargate,
            "on-demand app launch is slower: {ondemand:?} vs {fargate:?}"
        );
    }

    #[test]
    fn scaler_is_idempotent() {
        let mut rng = Rng::new(2);
        let mut s = InstanceScaler::new(ScalingKind::OnDemand);
        let t0 = SimTime::from_secs(60);
        let r1 = s.request(t0, &mut rng);
        let r2 = s.request(t0 + Duration::from_secs(5), &mut rng);
        assert_eq!(r1, r2);
        assert!(!s.is_ready(t0));
        assert!(s.is_ready(r1));
    }

    #[test]
    fn burstable_is_instant() {
        let mut rng = Rng::new(3);
        let mut s = InstanceScaler::new(ScalingKind::Burstable);
        let t0 = SimTime::from_secs(60);
        assert_eq!(s.request(t0, &mut rng), t0);
        assert!(s.is_ready(t0));
    }

    #[test]
    fn window_costs_match_table3_scale() {
        // Fig 7's burst lasts 120 s; Table 3 reports ~0.007 / 0.008 / 0.005
        // dollars for EC2 / Fargate / Burstable.
        let window = Duration::from_secs(120);
        let ec2 = ScalingKind::OnDemand.window_cost(window);
        let fargate = ScalingKind::Fargate.window_cost(window);
        let burstable = ScalingKind::Burstable.window_cost(window);
        assert!((ec2 - 0.00667).abs() < 0.001, "{ec2}");
        assert!((fargate - 0.008).abs() < 0.001, "{fargate}");
        assert!((burstable - 0.00555).abs() < 0.001, "{burstable}");
    }

    #[test]
    fn cost_accrues_from_request() {
        let mut rng = Rng::new(4);
        let mut s = InstanceScaler::new(ScalingKind::OnDemand);
        assert_eq!(s.cost(SimTime::from_secs(100)), 0.0);
        s.request(SimTime::from_secs(60), &mut rng);
        let c = s.cost(SimTime::from_secs(60 + 3600));
        assert!((c - 0.20).abs() < 1e-9);
    }
}
