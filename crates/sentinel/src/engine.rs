//! The streaming conformance engine: one [`Sentinel`] per scenario, fed
//! events in virtual-time order, producing a
//! [`ScenarioCheck`](crate::ScenarioCheck) at the end.
//!
//! The checker is a pile of small state machines keyed by track:
//!
//! * per request track: session phase, open-span multiset, residence-span
//!   exclusivity, recovery protocol, exactly-once completion,
//! * per instance track: the lifecycle machine over the platform's
//!   `instance:*` instants plus the driver's `boot` span pairing,
//! * the server track: the offload decision/dispatch conservation ledger.
//!
//! Chaos-awareness is baked into the transition tables rather than bolted
//! on: `instance:kill` is legal from every live state (crashes strike
//! booting, busy and idle instances alike), `chaos:boot_failure` may
//! arrive on an already-dead instance (the driver kills first, then marks
//! why), a recovery replacement may be warm (`Idle → Active`) or cold
//! (`Unseen → Booting`), and instances prewarmed before the recorder
//! installs legally first appear as `Unseen → Active` warm starts.

use std::collections::{HashMap, VecDeque};

use beehive_sim::SimTime;
use beehive_telemetry::{Arg, EventKind, TraceEvent, Track};

use crate::{Counters, Invariant, ScenarioCheck, Violation, COMPILED_OFF};

/// Checker configuration.
#[derive(Clone, Debug)]
pub struct SentinelConfig {
    /// Escalate vocabulary warnings to violations.
    pub strict: bool,
    /// The retry policy's `max_retries`, when known: bounds when
    /// `recovery:degrade` may legally fire.
    pub max_retries: Option<u32>,
    /// Window size K: how many events around a failure to report.
    pub window: usize,
}

impl Default for SentinelConfig {
    fn default() -> SentinelConfig {
        SentinelConfig {
            strict: false,
            max_retries: None,
            window: 5,
        }
    }
}

/// Session phase of a request track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// No session span seen yet.
    Fresh,
    /// Inside the session span.
    InSession,
    /// The session span ended.
    Ended,
    /// `recovery:degrade` rerouted the request; the track is terminal.
    Degraded,
}

#[derive(Debug, Default)]
struct ReqState {
    phase: Option<Phase>,
    session: Option<&'static str>,
    instance: Option<u32>,
    /// Open-span multiset: `(name, depth)`.
    open: Vec<(&'static str, u32)>,
    /// Open residence (`wait:*`) spans; the lifecycle allows at most one.
    waits: u32,
    recovery_open: bool,
    recoveries: u64,
    last_attempt: u64,
}

impl ReqState {
    fn phase(&self) -> Phase {
        self.phase.unwrap_or(Phase::Fresh)
    }
}

/// The per-instance lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Life {
    /// Never seen: either truly new, or provisioned before the recorder.
    Unseen,
    /// Cold boot in flight.
    Booting,
    /// Acquired: serving (or reserved for) a session.
    Active,
    /// In the warm cache.
    Idle,
    /// Killed; instance ids are never reused.
    Dead,
}

impl Life {
    fn name(self) -> &'static str {
        match self {
            Life::Unseen => "unseen",
            Life::Booting => "booting",
            Life::Active => "active",
            Life::Idle => "idle",
            Life::Dead => "dead",
        }
    }
}

#[derive(Debug)]
struct InstState {
    life: Life,
    /// A driver `boot` span is open.
    boot_open: bool,
    /// The request track whose open session this instance serves.
    owner: Option<u64>,
}

impl Default for InstState {
    fn default() -> InstState {
        InstState {
            life: Life::Unseen,
            boot_open: false,
            owner: None,
        }
    }
}

/// The streaming conformance checker. Feed events in recorded order, then
/// [`Sentinel::finish`].
#[derive(Debug)]
pub struct Sentinel {
    cfg: SentinelConfig,
    events: u64,
    last_at: u64,
    counters: Counters,
    violations: Vec<Violation>,
    /// Unknown event names, first-seen order, with the window at first
    /// sight (becomes the violation window under strict).
    unknown: Vec<(String, String, u64, Vec<String>)>,
    /// Offload decisions awaiting their dispatch (0 or 1: the dispatch is
    /// emitted within the same event handler as the decision).
    pending_dispatch: u64,
    requests: HashMap<u64, ReqState>,
    instances: HashMap<u32, InstState>,
    rings: HashMap<Track, VecDeque<TraceEvent>>,
}

impl Sentinel {
    /// A fresh checker.
    pub fn new(cfg: SentinelConfig) -> Sentinel {
        Sentinel {
            cfg,
            events: 0,
            last_at: 0,
            counters: Counters::default(),
            violations: Vec::new(),
            unknown: Vec::new(),
            pending_dispatch: 0,
            requests: HashMap::new(),
            instances: HashMap::new(),
            rings: HashMap::new(),
        }
    }

    /// Check one event. No-op when built with `compile-off`.
    pub fn feed(&mut self, e: &TraceEvent) {
        if COMPILED_OFF {
            return;
        }
        self.events += 1;
        let at = e.at.saturating_since(SimTime::ZERO).as_nanos();
        let ring = self.rings.entry(e.track).or_default();
        if ring.len() == self.cfg.window {
            ring.pop_front();
        }
        ring.push_back(e.clone());
        if at < self.last_at {
            self.violate(
                Invariant::TimeMonotonic,
                e.track,
                at,
                format!("virtual time ran backwards: {} < {}", at, self.last_at),
            );
        } else {
            self.last_at = at;
        }
        match e.track {
            Track::Request(rid) => self.feed_request(rid, e, at),
            Track::Instance(i) => self.feed_instance(i, e, at),
            Track::Server => self.feed_server(e, at),
            Track::Platform => self.feed_platform(e, at),
            Track::Db => self.feed_db(e, at),
            Track::Sim => self.feed_sim(e, at),
        }
    }

    /// Close out the stream and produce the scenario's result.
    pub fn finish(mut self, label: String) -> ScenarioCheck {
        if self.pending_dispatch > 0 {
            self.violate(
                Invariant::OffloadConservation,
                Track::Server,
                self.last_at,
                "offload decision was never dispatched".to_string(),
            );
        }
        // By construction of the lifecycle machine every activation is a
        // cold boot or a warm start; record the conservation total.
        self.counters.activations = self.counters.boots_cold + self.counters.boots_warm;
        let mut warnings = Vec::new();
        for (name, track, at_ns, window) in std::mem::take(&mut self.unknown) {
            if self.cfg.strict {
                self.violations.push(Violation {
                    invariant: Invariant::Vocabulary,
                    track,
                    at_ns,
                    message: format!("unknown event name: {name}"),
                    window,
                });
            } else {
                warnings.push(format!("unknown event name: {name}"));
            }
        }
        ScenarioCheck {
            label,
            events: self.events,
            counters: self.counters,
            warnings,
            violations: self.violations,
        }
    }

    fn violate(&mut self, invariant: Invariant, track: Track, at_ns: u64, message: String) {
        let window = self
            .rings
            .get(&track)
            .map(|r| r.iter().map(fmt_event).collect())
            .unwrap_or_default();
        self.violations.push(Violation {
            invariant,
            track: fmt_track(track),
            at_ns,
            message,
            window,
        });
    }

    fn warn_unknown(&mut self, e: &TraceEvent, at: u64) {
        if self.unknown.iter().any(|(n, ..)| n.as_str() == e.name) {
            return;
        }
        let window = self
            .rings
            .get(&e.track)
            .map(|r| r.iter().map(fmt_event).collect())
            .unwrap_or_default();
        self.unknown
            .push((e.name.to_string(), fmt_track(e.track), at, window));
    }

    // ---- request tracks -------------------------------------------------

    fn feed_request(&mut self, rid: u64, e: &TraceEvent, at: u64) {
        if !known_request_event(e.name, e.kind) {
            self.warn_unknown(e, at);
        }
        let st = self.requests.entry(rid).or_default();
        let phase = st.phase();

        // Terminal tracks stay quiet — except that a second session End is
        // the exactly-once failure mode and deserves its own name.
        if phase == Phase::Ended || phase == Phase::Degraded {
            if e.kind == EventKind::End && Some(e.name) == st.session {
                self.violate(
                    Invariant::ExactlyOnce,
                    e.track,
                    at,
                    format!("request completed twice ({} ended again)", e.name),
                );
            } else {
                self.violate(
                    Invariant::SessionProtocol,
                    e.track,
                    at,
                    format!("activity after terminal event: {} {:?}", e.name, e.kind),
                );
            }
            return;
        }

        match e.kind {
            EventKind::Begin => self.request_begin(rid, e, at),
            EventKind::End => self.request_end(rid, e, at),
            EventKind::Instant => self.request_instant(rid, e, at),
            EventKind::Complete(_) => {} // boot:wait — vocab-checked above
            EventKind::Counter(_) => {}
        }
    }

    fn request_begin(&mut self, rid: u64, e: &TraceEvent, at: u64) {
        if e.name.starts_with("req:") {
            let st = self.requests.get_mut(&rid).expect("entry exists");
            if st.phase() != Phase::Fresh {
                self.violate(
                    Invariant::SessionProtocol,
                    e.track,
                    at,
                    format!("second session begin ({}) on one track", e.name),
                );
                return;
            }
            let st = self.requests.get_mut(&rid).expect("entry exists");
            st.phase = Some(Phase::InSession);
            st.session = Some(e.name);
            bump_open(&mut st.open, e.name);
            match e.name {
                "req:offload" => self.counters.sessions_offload += 1,
                "req:shadow" => self.counters.sessions_shadow += 1,
                _ => self.counters.sessions_server += 1,
            }
            if let Some(i) = arg_u64(e, "instance") {
                self.bind_instance(rid, i as u32, e.track, at, "session began");
            }
            return;
        }
        if e.name == "recovery" {
            let st = self.requests.get_mut(&rid).expect("entry exists");
            if st.recovery_open {
                self.violate(
                    Invariant::RecoveryProtocol,
                    e.track,
                    at,
                    "recovery span begun while one is open".to_string(),
                );
                return;
            }
            let attempt = arg_u64(e, "attempt").unwrap_or(0);
            let last = st.last_attempt;
            st.recovery_open = true;
            st.recoveries += 1;
            st.last_attempt = attempt;
            bump_open(&mut st.open, e.name);
            self.counters.recoveries += 1;
            if attempt <= last {
                self.violate(
                    Invariant::RecoveryProtocol,
                    e.track,
                    at,
                    format!("recovery attempt did not increase: {attempt} after {last}"),
                );
            }
            if let Some(j) = arg_u64(e, "replacement") {
                // The old instance is dead; the session moves on.
                if let Some(old) = self.requests.get(&rid).and_then(|s| s.instance) {
                    if let Some(inst) = self.instances.get_mut(&old) {
                        if inst.owner == Some(rid) {
                            inst.owner = None;
                        }
                    }
                }
                self.bind_instance(rid, j as u32, e.track, at, "recovery re-bound");
            }
            return;
        }
        let st = self.requests.get_mut(&rid).expect("entry exists");
        if e.name.starts_with("wait:") {
            if st.waits > 0 {
                self.violate(
                    Invariant::SpanNesting,
                    e.track,
                    at,
                    format!("residence span {} begun while another is open", e.name),
                );
            }
            let st = self.requests.get_mut(&rid).expect("entry exists");
            st.waits += 1;
        }
        let st = self.requests.get_mut(&rid).expect("entry exists");
        bump_open(&mut st.open, e.name);
    }

    fn request_end(&mut self, rid: u64, e: &TraceEvent, at: u64) {
        let st = self.requests.get_mut(&rid).expect("entry exists");
        if !drop_open(&mut st.open, e.name) {
            self.violate(
                Invariant::SpanNesting,
                e.track,
                at,
                format!("end without begin: {}", e.name),
            );
            return;
        }
        let st = self.requests.get_mut(&rid).expect("entry exists");
        if e.name.starts_with("wait:") {
            st.waits = st.waits.saturating_sub(1);
        }
        if Some(e.name) == st.session {
            st.phase = Some(Phase::Ended);
            self.counters.completions += 1;
            if let Some(i) = self.requests.get(&rid).and_then(|s| s.instance) {
                if let Some(inst) = self.instances.get_mut(&i) {
                    if inst.owner == Some(rid) {
                        inst.owner = None;
                    }
                }
            }
            return;
        }
        match e.name {
            "recovery" => {
                st.recovery_open = false;
            }
            "sync:monitor" => {
                self.counters.monitor_handoffs += 1;
                self.counters.monitor_dirty += arg_u64(e, "dirty").unwrap_or(0);
            }
            _ => {}
        }
    }

    fn request_instant(&mut self, rid: u64, e: &TraceEvent, at: u64) {
        match e.name {
            "recovery:degrade" => {
                let st = self.requests.get_mut(&rid).expect("entry exists");
                st.phase = Some(Phase::Degraded);
                let (recoveries, last) = (st.recoveries, st.last_attempt);
                if let Some(i) = st.instance {
                    if let Some(inst) = self.instances.get_mut(&i) {
                        if inst.owner == Some(rid) {
                            inst.owner = None;
                        }
                    }
                }
                self.counters.degrades += 1;
                // The degrade happens on attempt `last + 1`; with `recoveries
                // > 0` the track has seen every attempt number, so degrading
                // inside the retry budget is a policy breach. (Attempts spent
                // on pre-session boot failures are invisible here, so tracks
                // without a recovery span are not judged.)
                if let Some(max) = self.cfg.max_retries {
                    if recoveries > 0 && last < u64::from(max) {
                        self.violate(
                            Invariant::RecoveryProtocol,
                            e.track,
                            at,
                            format!(
                                "degraded on attempt {} with {} retries still budgeted",
                                last + 1,
                                u64::from(max) - last
                            ),
                        );
                    }
                }
            }
            "recovery" => {
                // `OffloadSession::recover` marks the re-execution point; it
                // only happens inside the lifecycle's recovery span.
                let st = self.requests.get_mut(&rid).expect("entry exists");
                if !st.recovery_open {
                    self.violate(
                        Invariant::RecoveryProtocol,
                        e.track,
                        at,
                        "session re-executed outside a recovery span".to_string(),
                    );
                }
            }
            "sync:pull_dirty" => self.pull_dirty(e, at),
            _ => {}
        }
    }

    fn bind_instance(&mut self, rid: u64, i: u32, track: Track, at: u64, how: &str) {
        let life = self.instances.entry(i).or_default().life;
        let legal = matches!(life, Life::Active | Life::Booting);
        if !legal {
            let msg = if life == Life::Unseen {
                format!("{how} on instance inst:{i} with no boot (activation without boot)")
            } else {
                format!("{how} on {} instance inst:{i}", life.name())
            };
            self.violate(Invariant::LifecycleLegality, track, at, msg);
        }
        let inst = self.instances.entry(i).or_default();
        if let Some(other) = inst.owner {
            if other != rid {
                self.violate(
                    Invariant::LifecycleLegality,
                    track,
                    at,
                    format!("inst:{i} already serves open session req:{other}"),
                );
            }
        }
        let inst = self.instances.entry(i).or_default();
        inst.owner = Some(rid);
        if let Some(st) = self.requests.get_mut(&rid) {
            st.instance = Some(i);
        }
    }

    // ---- instance tracks ------------------------------------------------

    fn feed_instance(&mut self, i: u32, e: &TraceEvent, at: u64) {
        if !known_instance_event(e.name, e.kind) {
            self.warn_unknown(e, at);
        }
        // Only lifecycle events drive the machine; anything else on an
        // instance track (pre-session residence probes) passes through.
        let machine = e.name == "boot" || e.name.starts_with("instance:");
        let life = self.instances.entry(i).or_default().life;
        if life == Life::Dead && machine {
            self.violate(
                Invariant::LifecycleLegality,
                e.track,
                at,
                format!("{} on dead instance (ids are never reused)", e.name),
            );
            return;
        }
        match (e.kind, e.name) {
            (EventKind::Begin, "boot") => {
                let open = self.instances.entry(i).or_default().boot_open;
                if open {
                    self.violate(
                        Invariant::SpanNesting,
                        e.track,
                        at,
                        "boot span begun while one is open".to_string(),
                    );
                }
                // A cold acquire precedes the span (Booting); a warm acquire
                // re-used from the platform precedes it too (Active).
                if !matches!(life, Life::Booting | Life::Active) {
                    self.violate(
                        Invariant::LifecycleLegality,
                        e.track,
                        at,
                        format!("boot span on {} instance (no acquire)", life.name()),
                    );
                }
                self.instances.entry(i).or_default().boot_open = true;
            }
            (EventKind::End, "boot") => {
                let open = self.instances.entry(i).or_default().boot_open;
                if !open {
                    self.violate(
                        Invariant::SpanNesting,
                        e.track,
                        at,
                        "end without begin: boot".to_string(),
                    );
                }
                self.instances.entry(i).or_default().boot_open = false;
            }
            (EventKind::Instant, "instance:cold_boot") => {
                // Ids are fresh per cold boot, so only Unseen is legal.
                self.transition(i, e, at, &[Life::Unseen], Life::Booting);
                self.counters.boots_cold += 1;
            }
            (EventKind::Instant, "instance:warm_start") => {
                // Unseen: provisioned before the recorder installed
                // (prewarm); Idle: re-acquired from the warm cache.
                self.transition(i, e, at, &[Life::Idle, Life::Unseen], Life::Active);
                self.counters.boots_warm += 1;
            }
            (EventKind::Instant, "instance:ready") => {
                self.transition(i, e, at, &[Life::Booting], Life::Active);
                self.counters.readies += 1;
            }
            (EventKind::Instant, "instance:release") => {
                self.transition(i, e, at, &[Life::Active], Life::Idle);
                self.counters.releases += 1;
                let owner = self.instances.entry(i).or_default().owner.take();
                if let Some(rid) = owner {
                    let open = self
                        .requests
                        .get(&rid)
                        .map(|s| s.phase() == Phase::InSession)
                        .unwrap_or(false);
                    if open {
                        self.violate(
                            Invariant::SessionProtocol,
                            e.track,
                            at,
                            format!("released while session req:{rid} is still open"),
                        );
                    }
                }
            }
            (EventKind::Instant, "instance:kill") => {
                // Chaos-aware: crashes strike booting, busy and idle
                // instances alike; only a second kill is illegal (the Dead
                // guard above already rejected it).
                self.instances.entry(i).or_default().life = Life::Dead;
                self.counters.kills += 1;
            }
            (EventKind::Instant, "chaos:boot_failure") => {
                // The driver kills first, then marks why — legal on Dead
                // (and `machine` excludes chaos:* so the guard passed us).
                self.counters.boot_failures += 1;
            }
            (EventKind::Instant, "sync:pull_dirty") => self.pull_dirty(e, at),
            _ => {}
        }
    }

    fn transition(&mut self, i: u32, e: &TraceEvent, at: u64, from: &[Life], to: Life) {
        let inst = self.instances.entry(i).or_default();
        if from.contains(&inst.life) {
            inst.life = to;
        } else {
            let have = inst.life.name();
            self.violate(
                Invariant::LifecycleLegality,
                e.track,
                at,
                format!("illegal transition: {} on {have} instance", e.name),
            );
            // Follow the event anyway so one bad hop doesn't cascade.
            self.instances.entry(i).or_default().life = to;
        }
    }

    fn pull_dirty(&mut self, e: &TraceEvent, at: u64) {
        let objects = arg_u64(e, "objects").unwrap_or(0);
        let bytes = arg_u64(e, "bytes").unwrap_or(0);
        self.counters.handoff_syncs += 1;
        self.counters.handoff_objects += objects;
        self.counters.handoff_bytes += bytes;
        if bytes > 0 && objects == 0 {
            self.violate(
                Invariant::HandoffConservation,
                e.track,
                at,
                format!("dirty-set sync shipped {bytes} bytes but zero objects"),
            );
        }
    }

    // ---- server / platform / db / sim tracks ----------------------------

    fn feed_server(&mut self, e: &TraceEvent, at: u64) {
        match (e.kind, e.name) {
            (EventKind::Instant, "offload:decision") => {
                if arg_bool(e, "offload").unwrap_or(false) {
                    if self.pending_dispatch > 0 {
                        self.violate(
                            Invariant::OffloadConservation,
                            e.track,
                            at,
                            "offload decision while the previous one is undispatched".to_string(),
                        );
                    }
                    self.counters.decisions_offload += 1;
                    self.pending_dispatch = 1;
                } else {
                    self.counters.decisions_kept += 1;
                }
            }
            (EventKind::Instant, "offload:dispatch") => {
                if self.pending_dispatch == 0 {
                    self.violate(
                        Invariant::OffloadConservation,
                        e.track,
                        at,
                        "dispatch without an offload decision".to_string(),
                    );
                } else {
                    self.pending_dispatch = 0;
                }
                match arg_str(e, "outcome") {
                    Some("warm") => self.counters.dispatch_warm += 1,
                    Some("spawn") => self.counters.dispatch_spawn += 1,
                    Some("server") => self.counters.dispatch_server += 1,
                    other => self.violate(
                        Invariant::OffloadConservation,
                        e.track,
                        at,
                        format!("dispatch with unknown outcome {other:?}"),
                    ),
                }
            }
            (EventKind::Instant, "rejected") => self.counters.rejections += 1,
            // Closure construction on first dispatch to a fresh instance
            // (§4.2): a server-side Complete with its compute time.
            (EventKind::Complete(_), "closure:build") => {}
            // Burst-handler routing decisions (§5.1): pure observability for
            // the timeline substrate, no conservation law attached.
            (EventKind::Instant, "burst:route") => {}
            _ => self.warn_unknown(e, at),
        }
    }

    fn feed_platform(&mut self, e: &TraceEvent, at: u64) {
        match (e.kind, e.name) {
            (EventKind::Instant, "chaos:crash") => {}
            (EventKind::Instant, "instance:expire") => {
                // The keep-alive sweep reports a count, not ids: the expired
                // instances stay Idle in the machine and are simply never
                // seen again (dead ids are not re-acquired).
                self.counters.expires += arg_u64(e, "count").unwrap_or(0);
            }
            (EventKind::Instant, "instance:prewarm") => {
                self.counters.prewarms += arg_u64(e, "count").unwrap_or(0);
            }
            _ => self.warn_unknown(e, at),
        }
    }

    fn feed_db(&mut self, e: &TraceEvent, at: u64) {
        match (e.kind, e.name) {
            (EventKind::Instant, "db:round" | "db:execute" | "chaos:db_reconnect") => {}
            _ => self.warn_unknown(e, at),
        }
    }

    fn feed_sim(&mut self, e: &TraceEvent, at: u64) {
        match (e.kind, e.name) {
            (
                EventKind::Counter(_),
                "event_queue" | "server_pool" | "inflight" | "idle_instances",
            ) => {}
            (
                EventKind::Instant,
                "chaos:boot_failure"
                | "chaos:arm_rpc_drop"
                | "chaos:arm_rpc_delay"
                | "chaos:net_degrade"
                | "chaos:arm_db_drop"
                | "pool:depth"
                | "burst:onset",
            ) => {}
            _ => self.warn_unknown(e, at),
        }
    }
}

// ---- vocabulary ---------------------------------------------------------

fn known_request_event(name: &str, kind: EventKind) -> bool {
    if name.starts_with("wait:") || name.starts_with("fallback:") {
        return matches!(kind, EventKind::Begin | EventKind::End);
    }
    match name {
        "req:server" | "req:offload" | "req:shadow" | "recovery" | "sync:monitor"
        | "sync:volatile" => matches!(kind, EventKind::Begin | EventKind::End | EventKind::Instant),
        "boot:wait" => matches!(kind, EventKind::Complete(_)),
        "recovery:degrade" | "sync:lock_wait" | "sync:pull_dirty" | "snapshot"
        | "closure:refine" | "block" | "chaos:rpc_drop" | "chaos:rpc_delay" => {
            matches!(kind, EventKind::Instant)
        }
        _ => false,
    }
}

fn known_instance_event(name: &str, kind: EventKind) -> bool {
    // Pre-session FaaS endpoints share the request vocabulary (residence
    // probes land on the instance track until a session exists).
    if known_request_event(name, kind) {
        return true;
    }
    match name {
        "boot" => matches!(kind, EventKind::Begin | EventKind::End),
        "instance:cold_boot"
        | "instance:warm_start"
        | "instance:ready"
        | "instance:release"
        | "instance:kill"
        | "chaos:boot_failure" => matches!(kind, EventKind::Instant),
        _ => false,
    }
}

// ---- small helpers ------------------------------------------------------

fn bump_open(open: &mut Vec<(&'static str, u32)>, name: &'static str) {
    for (n, d) in open.iter_mut() {
        if *n == name {
            *d += 1;
            return;
        }
    }
    open.push((name, 1));
}

/// Pop one open `name` span; `false` when none is open.
fn drop_open(open: &mut [(&'static str, u32)], name: &str) -> bool {
    for (n, d) in open.iter_mut() {
        if *n == name && *d > 0 {
            *d -= 1;
            return true;
        }
    }
    false
}

fn arg_u64(e: &TraceEvent, key: &str) -> Option<u64> {
    e.args
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, a)| match a {
            Arg::UInt(v) => Some(*v),
            Arg::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        })
}

fn arg_bool(e: &TraceEvent, key: &str) -> Option<bool> {
    e.args
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, a)| match a {
            Arg::Bool(v) => Some(*v),
            _ => None,
        })
}

fn arg_str<'a>(e: &'a TraceEvent, key: &str) -> Option<&'a str> {
    e.args
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, a)| match a {
            Arg::Str(v) => Some(*v),
            _ => None,
        })
}

fn fmt_track(track: Track) -> String {
    match track {
        Track::Server => "server".to_string(),
        Track::Request(r) => format!("req:{r}"),
        Track::Instance(i) => format!("inst:{i}"),
        Track::Platform => "platform".to_string(),
        Track::Db => "db".to_string(),
        Track::Sim => "sim".to_string(),
    }
}

fn fmt_event(e: &TraceEvent) -> String {
    use std::fmt::Write;
    let at = e.at.saturating_since(SimTime::ZERO).as_nanos();
    let kind = match e.kind {
        EventKind::Begin => "begin".to_string(),
        EventKind::End => "end".to_string(),
        EventKind::Complete(d) => format!("complete({}ns)", d.as_nanos()),
        EventKind::Instant => "instant".to_string(),
        EventKind::Counter(v) => format!("counter({v})"),
    };
    let mut out = format!("t={at}ns {} {} {kind}", fmt_track(e.track), e.name);
    for (k, a) in &e.args {
        let _ = match a {
            Arg::Int(v) => write!(out, " {k}={v}"),
            Arg::UInt(v) => write!(out, " {k}={v}"),
            Arg::Float(v) => write!(out, " {k}={v}"),
            Arg::Bool(v) => write!(out, " {k}={v}"),
            Arg::Str(v) => write!(out, " {k}={v}"),
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_sim::Duration;

    fn ev(us: u64, track: Track, name: &'static str, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::ZERO + Duration::from_micros(us),
            track,
            name,
            kind,
            args: vec![],
        }
    }

    fn args(mut e: TraceEvent, a: &[(&'static str, Arg)]) -> TraceEvent {
        e.args = a.to_vec();
        e
    }

    /// A minimal legal offload: decision, dispatch, cold boot, session,
    /// completion, release.
    fn legal_offload() -> Vec<TraceEvent> {
        vec![
            args(
                ev(1, Track::Server, "offload:decision", EventKind::Instant),
                &[("offload", Arg::Bool(true)), ("engaged", Arg::Bool(true))],
            ),
            args(
                ev(1, Track::Server, "offload:dispatch", EventKind::Instant),
                &[("outcome", Arg::Str("spawn"))],
            ),
            args(
                ev(
                    1,
                    Track::Instance(0),
                    "instance:cold_boot",
                    EventKind::Instant,
                ),
                &[("boot_us", Arg::UInt(500))],
            ),
            args(
                ev(1, Track::Instance(0), "boot", EventKind::Begin),
                &[("cold", Arg::Bool(true))],
            ),
            ev(501, Track::Instance(0), "boot", EventKind::End),
            ev(
                501,
                Track::Instance(0),
                "instance:ready",
                EventKind::Instant,
            ),
            args(
                ev(501, Track::Request(7), "req:offload", EventKind::Begin),
                &[("instance", Arg::UInt(0)), ("warm", Arg::Bool(false))],
            ),
            ev(
                510,
                Track::Request(7),
                "wait:function_cpu",
                EventKind::Begin,
            ),
            ev(540, Track::Request(7), "wait:function_cpu", EventKind::End),
            ev(550, Track::Request(7), "req:offload", EventKind::End),
            args(
                ev(
                    550,
                    Track::Instance(0),
                    "instance:release",
                    EventKind::Instant,
                ),
                &[("busy_us", Arg::UInt(49))],
            ),
        ]
    }

    fn check(events: Vec<TraceEvent>) -> ScenarioCheck {
        let mut s = Sentinel::new(SentinelConfig::default());
        for e in &events {
            s.feed(e);
        }
        s.finish("t".to_string())
    }

    #[test]
    fn legal_stream_is_clean() {
        let c = check(legal_offload());
        assert_eq!(c.violations, vec![], "clean run must have no violations");
        assert!(c.warnings.is_empty());
        assert_eq!(c.counters.boots_cold, 1);
        assert_eq!(c.counters.activations, 1);
        assert_eq!(c.counters.sessions_offload, 1);
        assert_eq!(c.counters.completions, 1);
        assert_eq!(c.counters.dispatch_spawn, 1);
    }

    #[test]
    fn open_spans_at_horizon_are_tolerated() {
        let mut events = legal_offload();
        events.truncate(9); // stream ends inside the wait span
        let c = check(events);
        assert_eq!(c.violations, vec![]);
    }

    #[test]
    fn windows_cap_at_k_and_end_with_the_offender() {
        let mut events = Vec::new();
        for i in 0..20u64 {
            events.push(ev(i, Track::Request(1), "wait:db", EventKind::Begin));
            events.push(ev(i, Track::Request(1), "wait:db", EventKind::End));
        }
        events.push(ev(30, Track::Request(1), "sync:monitor", EventKind::End));
        let c = check(events);
        assert_eq!(c.violations.len(), 1);
        let w = &c.violations[0].window;
        assert_eq!(w.len(), 5, "window capped at K");
        assert!(w.last().unwrap().contains("sync:monitor"), "offender last");
    }
}
