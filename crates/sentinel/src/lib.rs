//! beehive-sentinel — online trace-invariant conformance engine.
//!
//! The workspace already emits four observability artifacts (traces,
//! metrics, profiles, per-request attribution), but nothing validated that
//! the event stream itself obeys BeeHive's semantics — so a simulator bug
//! could silently corrupt every downstream report. This crate turns the
//! telemetry layer into a correctness oracle: a streaming [`Sentinel`]
//! consumes [`beehive_telemetry::TraceEvent`]s in virtual-time order —
//! either online during a simulation (a second telemetry consumer fed via
//! [`beehive_telemetry::visit_from`]) or by replaying a recorded
//! [`beehive_telemetry::Trace`] — and checks typed invariants as events
//! arrive:
//!
//! * **time-monotonic** — virtual time never runs backwards across the
//!   recorded stream,
//! * **span-nesting** — every span `End` matches an open `Begin` on its
//!   track, and residence (`wait:*`) spans never overlap (the lifecycle's
//!   `open_span` mechanism guarantees at most one),
//! * **session-protocol** — one session per request track, no activity
//!   after a terminal event, and an instance is never released while the
//!   session it serves is still open,
//! * **offload-conservation** — every `offload:decision` that chose to
//!   offload is terminated by exactly one `offload:dispatch` (warm reuse,
//!   new spawn, or saturated fallback to the server) at the same virtual
//!   instant,
//! * **lifecycle-legality** — per-instance state machine
//!   `Unseen → Booting → Active → {Idle, Dead}` over the platform's
//!   `instance:*` instants, chaos-aware: `Platform::kill` is legal from any
//!   live state and boot-failure retries re-enter via a fresh instance,
//!   while activations without a boot, double kills, and events on dead
//!   instances are violations (`boots_cold + boots_warm = activations` by
//!   construction of the machine),
//! * **handoff-conservation** — a dirty-set sync that ships bytes must
//!   ship objects; hand-off totals are accumulated for cross-checks,
//! * **recovery-protocol** — recovery spans never nest, attempt numbers
//!   strictly increase, `recovery:degrade` is terminal and only legal once
//!   the retry policy's budget is exhausted,
//! * **exactly-once** — a request completes at most once (a re-executed
//!   request that double-applies its effects shows up as a second session
//!   `End`),
//! * **vocabulary** — unknown event names are warnings (instrumentation
//!   drift), escalated to violations under `--strict`.
//!
//! Each [`Violation`] carries the invariant name, the offending track, the
//! virtual time, and a minimal K-event window around the failure so it
//! reads like a root-caused bug report. The [`SentinelReport`] JSON is
//! deterministic and byte-identical across `BEEHIVE_WORKERS` settings;
//! `scripts/verify.sh` golden-diffs it at 1/2/8 workers.

#![warn(missing_docs)]

mod engine;

pub use engine::{Sentinel, SentinelConfig};

use beehive_sim::json::Json;
use beehive_telemetry::Trace;

/// `true` when the crate was built with the `compile-off` feature and
/// [`Sentinel::feed`] compiles to nothing (the overhead-measurement build).
pub const COMPILED_OFF: bool = cfg!(feature = "compile-off");

/// The typed invariant classes the sentinel checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Invariant {
    /// Virtual time never decreases across the event stream.
    TimeMonotonic,
    /// Span `End`s match open `Begin`s; residence spans never overlap.
    SpanNesting,
    /// One session per track, quiet after terminal, release only after the
    /// session ends.
    SessionProtocol,
    /// Every offload decision terminates in exactly one dispatch.
    OffloadConservation,
    /// The per-instance lifecycle state machine.
    LifecycleLegality,
    /// Dirty-set syncs shipping bytes must ship objects.
    HandoffConservation,
    /// Recovery spans: non-nesting, increasing attempts, bounded degrade.
    RecoveryProtocol,
    /// A request completes at most once.
    ExactlyOnce,
    /// Event-name vocabulary drift (violation only under strict).
    Vocabulary,
}

impl Invariant {
    /// Every invariant class, in catalog order.
    pub const ALL: [Invariant; 9] = [
        Invariant::TimeMonotonic,
        Invariant::SpanNesting,
        Invariant::SessionProtocol,
        Invariant::OffloadConservation,
        Invariant::LifecycleLegality,
        Invariant::HandoffConservation,
        Invariant::RecoveryProtocol,
        Invariant::ExactlyOnce,
        Invariant::Vocabulary,
    ];

    /// The stable kebab-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Invariant::TimeMonotonic => "time-monotonic",
            Invariant::SpanNesting => "span-nesting",
            Invariant::SessionProtocol => "session-protocol",
            Invariant::OffloadConservation => "offload-conservation",
            Invariant::LifecycleLegality => "lifecycle-legality",
            Invariant::HandoffConservation => "handoff-conservation",
            Invariant::RecoveryProtocol => "recovery-protocol",
            Invariant::ExactlyOnce => "exactly-once",
            Invariant::Vocabulary => "vocabulary",
        }
    }

    /// One-line catalog description (`repro check` and the README list it).
    pub fn describe(self) -> &'static str {
        match self {
            Invariant::TimeMonotonic => "virtual time never runs backwards",
            Invariant::SpanNesting => "span ends match opens; residence spans never overlap",
            Invariant::SessionProtocol => {
                "one session per track, quiet after terminal, release after end"
            }
            Invariant::OffloadConservation => {
                "every offload decision terminates in exactly one dispatch"
            }
            Invariant::LifecycleLegality => {
                "instances follow Unseen>Booting>Active>{Idle,Dead}; kills chaos-aware"
            }
            Invariant::HandoffConservation => "dirty-set syncs shipping bytes ship objects",
            Invariant::RecoveryProtocol => {
                "recovery spans non-nesting, attempts increase, degrade bounded by the retry policy"
            }
            Invariant::ExactlyOnce => "a request completes at most once",
            Invariant::Vocabulary => "event names stay in the known vocabulary",
        }
    }

    /// Inverse of [`Invariant::name`].
    pub fn from_name(name: &str) -> Option<Invariant> {
        Invariant::ALL.into_iter().find(|i| i.name() == name)
    }
}

/// One conformance violation: the invariant, where, when, why, and the
/// minimal event window around the failure (oldest first, offending event
/// last).
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which invariant class fired.
    pub invariant: Invariant,
    /// The offending track, rendered (`req:7`, `inst:3`, `server`, …).
    pub track: String,
    /// Virtual time of the offending event, nanoseconds since t=0.
    pub at_ns: u64,
    /// What went wrong.
    pub message: String,
    /// The K events around the failure on the offending track, rendered.
    pub window: Vec<String>,
}

impl Violation {
    fn to_json(&self) -> Json {
        Json::obj([
            ("invariant".into(), Json::from(self.invariant.name())),
            ("track".into(), Json::from(self.track.as_str())),
            ("at_ns".into(), Json::from(self.at_ns)),
            ("message".into(), Json::from(self.message.as_str())),
            (
                "window".into(),
                Json::Arr(self.window.iter().map(|w| Json::from(w.as_str())).collect()),
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<Violation, String> {
        let invariant = str_field(j, "invariant").and_then(|s| {
            Invariant::from_name(&s).ok_or_else(|| format!("unknown invariant {s}"))
        })?;
        let Some(Json::Arr(window)) = j.get("window") else {
            return Err("violation missing window".into());
        };
        Ok(Violation {
            invariant,
            track: str_field(j, "track")?,
            at_ns: u64_field(j, "at_ns")?,
            message: str_field(j, "message")?,
            window: window
                .iter()
                .map(|w| match w {
                    Json::Str(s) => Ok(s.clone()),
                    _ => Err("window entry is not a string".to_string()),
                })
                .collect::<Result<_, _>>()?,
        })
    }
}

macro_rules! counters {
    ($($(#[$doc:meta])* $field:ident),+ $(,)?) => {
        /// Conservation counters the sentinel accumulates while checking.
        ///
        /// `activations == boots_cold + boots_warm` holds by construction of
        /// the lifecycle machine; the hand-off totals mirror the
        /// `handoff_dirty_*` metrics so reports can be cross-checked.
        #[derive(Clone, Debug, Default, PartialEq, Eq)]
        pub struct Counters {
            $($(#[$doc])* pub $field: u64,)+
        }

        impl Counters {
            fn to_json(&self) -> Json {
                Json::obj([$((stringify!($field).into(), Json::from(self.$field)),)+])
            }

            fn from_json(j: &Json) -> Result<Counters, String> {
                Ok(Counters { $($field: u64_field(j, stringify!($field))?,)+ })
            }
        }
    };
}

counters! {
    /// Cold boots (`instance:cold_boot`).
    boots_cold,
    /// Warm starts (`instance:warm_start`).
    boots_warm,
    /// Instance activations; equals `boots_cold + boots_warm`.
    activations,
    /// Cold boots that came up (`instance:ready`).
    readies,
    /// Busy instances returned to the warm cache (`instance:release`).
    releases,
    /// Instances killed (`instance:kill`): chaos crashes and boot failures.
    kills,
    /// Idle instances reclaimed by the keep-alive sweep (`instance:expire`).
    expires,
    /// Instances pre-provisioned by the scaler (`instance:prewarm`).
    prewarms,
    /// Offloaded sessions begun (`req:offload`).
    sessions_offload,
    /// Shadow warm-up sessions begun (`req:shadow`).
    sessions_shadow,
    /// Server sessions begun (`req:server`).
    sessions_server,
    /// Sessions completed (request-span `End`s).
    completions,
    /// Offload decisions that chose to offload.
    decisions_offload,
    /// Offload decisions that kept the request on the server.
    decisions_kept,
    /// Dispatches reusing a warm instance.
    dispatch_warm,
    /// Dispatches spawning a new instance.
    dispatch_spawn,
    /// Dispatches that fell back to the server (platform saturated).
    dispatch_server,
    /// Requests refused by the saturated worker pool (`rejected`).
    rejections,
    /// Recovery spans begun (`recovery` after an instance crash).
    recoveries,
    /// Requests degraded to server execution (`recovery:degrade`).
    degrades,
    /// Armed boot failures consumed (`chaos:boot_failure`).
    boot_failures,
    /// Dirty-set syncs pulled from a peer (`sync:pull_dirty`).
    handoff_syncs,
    /// Objects shipped by dirty-set syncs.
    handoff_objects,
    /// Bytes shipped by dirty-set syncs.
    handoff_bytes,
    /// Monitor hand-offs completed (`sync:monitor` ends).
    monitor_handoffs,
    /// Dirty objects shipped with monitor hand-offs.
    monitor_dirty,
}

/// One scenario's conformance result.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioCheck {
    /// Scenario label (the engine's run label).
    pub label: String,
    /// Events checked.
    pub events: u64,
    /// Conservation counters.
    pub counters: Counters,
    /// Vocabulary warnings (unknown event names), first-seen order.
    pub warnings: Vec<String>,
    /// Violations, in stream order.
    pub violations: Vec<Violation>,
}

impl ScenarioCheck {
    fn to_json(&self) -> Json {
        Json::obj([
            ("label".into(), Json::from(self.label.as_str())),
            ("events".into(), Json::from(self.events)),
            ("counters".into(), self.counters.to_json()),
            (
                "warnings".into(),
                Json::Arr(
                    self.warnings
                        .iter()
                        .map(|w| Json::from(w.as_str()))
                        .collect(),
                ),
            ),
            (
                "violations".into(),
                Json::Arr(self.violations.iter().map(|v| v.to_json()).collect()),
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<ScenarioCheck, String> {
        let Some(Json::Arr(warnings)) = j.get("warnings") else {
            return Err("scenario missing warnings".into());
        };
        let Some(Json::Arr(violations)) = j.get("violations") else {
            return Err("scenario missing violations".into());
        };
        let Some(counters) = j.get("counters") else {
            return Err("scenario missing counters".into());
        };
        Ok(ScenarioCheck {
            label: str_field(j, "label")?,
            events: u64_field(j, "events")?,
            counters: Counters::from_json(counters)?,
            warnings: warnings
                .iter()
                .map(|w| match w {
                    Json::Str(s) => Ok(s.clone()),
                    _ => Err("warning is not a string".to_string()),
                })
                .collect::<Result<_, _>>()?,
            violations: violations
                .iter()
                .map(Violation::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// The on-disk / on-stdout `*.sentinel.json` document: one
/// [`ScenarioCheck`] per scenario, in run order.
#[derive(Clone, Debug, PartialEq)]
pub struct SentinelReport {
    /// Whether vocabulary warnings were escalated to violations.
    pub strict: bool,
    /// Per-scenario results.
    pub scenarios: Vec<ScenarioCheck>,
}

impl SentinelReport {
    /// Replay a run's labelled traces through a fresh [`Sentinel`] each.
    pub fn from_traces(traces: &[(String, Trace)], cfg: &SentinelConfig) -> SentinelReport {
        SentinelReport {
            strict: cfg.strict,
            scenarios: traces
                .iter()
                .map(|(label, trace)| {
                    let mut s = Sentinel::new(cfg.clone());
                    for e in &trace.events {
                        s.feed(e);
                    }
                    s.finish(label.clone())
                })
                .collect(),
        }
    }

    /// Assemble a report from checks harvested out of online runs (e.g.
    /// `beehive_workload::engine::drain_sentinel`).
    pub fn from_checks(strict: bool, scenarios: Vec<ScenarioCheck>) -> SentinelReport {
        SentinelReport { strict, scenarios }
    }

    /// Total violations across scenarios.
    pub fn violations(&self) -> usize {
        self.scenarios.iter().map(|s| s.violations.len()).sum()
    }

    /// `true` when no scenario has violations.
    pub fn clean(&self) -> bool {
        self.violations() == 0
    }

    /// Render to the `*.sentinel.json` shape.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("strict".into(), Json::Bool(self.strict)),
            (
                "scenarios".into(),
                Json::Arr(self.scenarios.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }

    /// Strict inverse of [`SentinelReport::to_json`].
    pub fn parse(text: &str) -> Result<SentinelReport, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        let Some(Json::Bool(strict)) = j.get("strict") else {
            return Err("missing strict flag".into());
        };
        let Some(Json::Arr(scenarios)) = j.get("scenarios") else {
            return Err("missing scenarios array".into());
        };
        Ok(SentinelReport {
            strict: *strict,
            scenarios: scenarios
                .iter()
                .map(ScenarioCheck::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Human-readable summary: one line per scenario, then each violation
    /// as a root-caused block with its event window.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for s in &self.scenarios {
            let _ = writeln!(
                out,
                "{}: {} events, {} warnings, {} violations",
                s.label,
                s.events,
                s.warnings.len(),
                s.violations.len()
            );
            for w in &s.warnings {
                let _ = writeln!(out, "  warning: {w}");
            }
            for v in &s.violations {
                let _ = writeln!(
                    out,
                    "  violation [{}] on {} at {}ns: {}",
                    v.invariant.name(),
                    v.track,
                    v.at_ns,
                    v.message
                );
                for line in &v.window {
                    let _ = writeln!(out, "    | {line}");
                }
            }
        }
        out
    }
}

fn str_field(j: &Json, key: &str) -> Result<String, String> {
    match j.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(format!("missing string field {key}")),
    }
}

fn u64_field(j: &Json, key: &str) -> Result<u64, String> {
    match j.get(key) {
        Some(Json::Int(i)) if *i >= 0 => Ok(*i as u64),
        _ => Err(format!("missing integer field {key}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_sim::{Duration, SimTime};
    use beehive_telemetry::{EventKind, TraceEvent, Track};

    fn ev(ms: u64, track: Track, name: &'static str, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::ZERO + Duration::from_millis(ms),
            track,
            name,
            kind,
            args: vec![],
        }
    }

    #[test]
    fn invariant_names_round_trip() {
        for i in Invariant::ALL {
            assert_eq!(Invariant::from_name(i.name()), Some(i));
            assert!(!i.describe().is_empty());
        }
        assert_eq!(Invariant::from_name("nope"), None);
    }

    #[test]
    fn report_round_trips_through_json() {
        let trace = Trace {
            events: vec![
                ev(1, Track::Request(3), "req:server", EventKind::Begin),
                ev(4, Track::Request(3), "req:server", EventKind::End),
                // An End without a Begin: one violation with a window.
                ev(5, Track::Request(9), "wait:db", EventKind::End),
            ],
        };
        let report =
            SentinelReport::from_traces(&[("s".to_string(), trace)], &SentinelConfig::default());
        assert_eq!(report.scenarios.len(), 1);
        assert_eq!(report.violations(), 1);
        assert!(!report.clean());
        let v = &report.scenarios[0].violations[0];
        assert_eq!(v.invariant, Invariant::SpanNesting);
        assert!(!v.window.is_empty());
        let rendered = report.to_json().render();
        let back = SentinelReport::parse(&rendered).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json().render(), rendered);
        assert!(report.render_text().contains("span-nesting"));
    }
}
