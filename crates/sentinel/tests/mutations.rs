//! Mutation-test harness: every invariant class must fire.
//!
//! Each test takes a minimal *legal* event stream, applies exactly one
//! targeted mutation — drop an `end`, double-apply a completion, hop the
//! lifecycle machine illegally, and so on — and asserts the sentinel names
//! the mutated invariant and pinpoints it with a non-empty K-event window
//! ending at the offender. The legal baseline itself must check clean, so
//! every failure here is attributable to the mutation alone.

use beehive_sentinel::{Invariant, ScenarioCheck, Sentinel, SentinelConfig, Violation};
use beehive_sim::{Duration, SimTime};
use beehive_telemetry::{Arg, EventKind, TraceEvent, Track};

fn ev(us: u64, track: Track, name: &'static str, kind: EventKind) -> TraceEvent {
    TraceEvent {
        at: SimTime::ZERO + Duration::from_micros(us),
        track,
        name,
        kind,
        args: vec![],
    }
}

fn args(mut e: TraceEvent, a: &[(&'static str, Arg)]) -> TraceEvent {
    e.args = a.to_vec();
    e
}

/// A minimal legal offload: decision, dispatch, cold boot, session with a
/// residence span and a dirty-set sync, completion, release.
fn legal_offload() -> Vec<TraceEvent> {
    vec![
        args(
            ev(1, Track::Server, "offload:decision", EventKind::Instant),
            &[("offload", Arg::Bool(true)), ("engaged", Arg::Bool(true))],
        ),
        args(
            ev(1, Track::Server, "offload:dispatch", EventKind::Instant),
            &[("outcome", Arg::Str("spawn"))],
        ),
        args(
            ev(
                1,
                Track::Instance(0),
                "instance:cold_boot",
                EventKind::Instant,
            ),
            &[("boot_us", Arg::UInt(500))],
        ),
        args(
            ev(1, Track::Instance(0), "boot", EventKind::Begin),
            &[("cold", Arg::Bool(true))],
        ),
        ev(501, Track::Instance(0), "boot", EventKind::End),
        ev(
            501,
            Track::Instance(0),
            "instance:ready",
            EventKind::Instant,
        ),
        args(
            ev(501, Track::Request(7), "req:offload", EventKind::Begin),
            &[("instance", Arg::UInt(0)), ("warm", Arg::Bool(false))],
        ),
        ev(
            510,
            Track::Request(7),
            "wait:function_cpu",
            EventKind::Begin,
        ),
        ev(540, Track::Request(7), "wait:function_cpu", EventKind::End),
        args(
            ev(
                545,
                Track::Request(7),
                "sync:pull_dirty",
                EventKind::Instant,
            ),
            &[("objects", Arg::UInt(3)), ("bytes", Arg::UInt(96))],
        ),
        ev(550, Track::Request(7), "req:offload", EventKind::End),
        args(
            ev(
                550,
                Track::Instance(0),
                "instance:release",
                EventKind::Instant,
            ),
            &[("busy_us", Arg::UInt(49))],
        ),
    ]
}

fn check_with(events: &[TraceEvent], cfg: SentinelConfig) -> ScenarioCheck {
    let mut s = Sentinel::new(cfg);
    for e in events {
        s.feed(e);
    }
    s.finish("mutated".to_string())
}

fn check(events: &[TraceEvent]) -> ScenarioCheck {
    check_with(events, SentinelConfig::default())
}

/// The mutated stream must produce at least one violation of `invariant`,
/// with a non-empty pinpointing window; returns it for further assertions.
fn must_fire(c: &ScenarioCheck, invariant: Invariant) -> Violation {
    assert!(
        !c.violations.is_empty(),
        "{}: the mutation went undetected",
        invariant.name()
    );
    let v = c
        .violations
        .iter()
        .find(|v| v.invariant == invariant)
        .unwrap_or_else(|| {
            panic!(
                "{}: expected invariant, got {:?}",
                invariant.name(),
                c.violations
            )
        });
    assert!(
        !v.window.is_empty(),
        "{}: violation carries no pinpointing window",
        invariant.name()
    );
    assert!(!v.track.is_empty());
    v.clone()
}

#[test]
fn the_baseline_is_legal() {
    let c = check(&legal_offload());
    assert_eq!(
        c.violations,
        vec![],
        "mutations must start from a clean stream"
    );
    assert!(c.warnings.is_empty());
}

#[test]
fn mutation_time_regression_fires_time_monotonic() {
    let mut events = legal_offload();
    // Rewind the clock mid-stream.
    events[8].at = SimTime::ZERO + Duration::from_micros(5);
    let v = must_fire(&check(&events), Invariant::TimeMonotonic);
    assert!(v.message.contains("backwards"), "{v:?}");
}

#[test]
fn mutation_end_without_begin_fires_span_nesting() {
    let mut events = legal_offload();
    // Drop the residence span's begin; its end now closes nothing.
    events.remove(7);
    let v = must_fire(&check(&events), Invariant::SpanNesting);
    assert!(v.message.contains("wait:function_cpu"), "{v:?}");
    assert!(v.window.last().unwrap().contains("wait:function_cpu"));
}

#[test]
fn mutation_dropped_session_end_fires_session_protocol() {
    let mut events = legal_offload();
    // Drop the session end: the instance is released while req:7's session
    // is still open — the hole a lost completion event leaves.
    events.retain(|e| !(e.name == "req:offload" && e.kind == EventKind::End));
    let v = must_fire(&check(&events), Invariant::SessionProtocol);
    assert!(v.message.contains("req:7"), "{v:?}");
    assert_eq!(v.track, "inst:0");
}

#[test]
fn mutation_double_applied_completion_fires_exactly_once() {
    let mut events = legal_offload();
    // Re-apply the completion: the session ends twice, the double-applied
    // write of the recovery protocol's §4.5 exactly-once guarantee.
    let end = events[10].clone();
    assert_eq!(end.name, "req:offload");
    events.insert(11, end);
    let v = must_fire(&check(&events), Invariant::ExactlyOnce);
    assert!(v.message.contains("completed twice"), "{v:?}");
    assert_eq!(v.track, "req:7");
}

#[test]
fn mutation_dispatch_without_decision_fires_offload_conservation() {
    let mut events = legal_offload();
    events.remove(0); // drop the decision; the dispatch is now orphaned
    let v = must_fire(&check(&events), Invariant::OffloadConservation);
    assert!(v.message.contains("without an offload decision"), "{v:?}");
}

#[test]
fn mutation_undispatched_decision_fires_offload_conservation() {
    let mut events = legal_offload();
    events.remove(1); // drop the dispatch; the decision never terminates
    let v = must_fire(&check(&events), Invariant::OffloadConservation);
    assert!(v.message.contains("never dispatched"), "{v:?}");
}

#[test]
fn mutation_illegal_lifecycle_hop_fires_lifecycle_legality() {
    let mut events = legal_offload();
    // Idle → ready is not an edge of the machine (ready only follows a
    // boot): replay the ready after the release.
    events.push(ev(
        560,
        Track::Instance(0),
        "instance:ready",
        EventKind::Instant,
    ));
    let v = must_fire(&check(&events), Invariant::LifecycleLegality);
    assert!(v.message.contains("instance:ready"), "{v:?}");
    assert!(v.message.contains("idle"), "{v:?}");
    assert!(v.window.last().unwrap().contains("instance:ready"));
}

#[test]
fn mutation_activity_on_dead_instance_fires_lifecycle_legality() {
    let mut events = legal_offload();
    events.push(args(
        ev(560, Track::Instance(0), "instance:kill", EventKind::Instant),
        &[],
    ));
    events.push(args(
        ev(
            570,
            Track::Instance(0),
            "instance:warm_start",
            EventKind::Instant,
        ),
        &[],
    ));
    let v = must_fire(&check(&events), Invariant::LifecycleLegality);
    assert!(v.message.contains("dead"), "{v:?}");
}

#[test]
fn mutation_session_on_unbooted_instance_fires_lifecycle_legality() {
    let events = vec![args(
        ev(10, Track::Request(3), "req:offload", EventKind::Begin),
        &[("instance", Arg::UInt(9)), ("warm", Arg::Bool(true))],
    )];
    let v = must_fire(&check(&events), Invariant::LifecycleLegality);
    assert!(v.message.contains("activation without boot"), "{v:?}");
}

#[test]
fn mutation_bytes_without_objects_fires_handoff_conservation() {
    let mut events = legal_offload();
    // Ship bytes for zero objects: the dirty-set accounting can't balance.
    events[9] = args(
        ev(
            545,
            Track::Request(7),
            "sync:pull_dirty",
            EventKind::Instant,
        ),
        &[("objects", Arg::UInt(0)), ("bytes", Arg::UInt(96))],
    );
    let v = must_fire(&check(&events), Invariant::HandoffConservation);
    assert!(v.message.contains("96 bytes"), "{v:?}");
}

#[test]
fn mutation_non_increasing_attempt_fires_recovery_protocol() {
    let track = Track::Request(5);
    let events = vec![
        args(
            ev(10, track, "recovery", EventKind::Begin),
            &[("attempt", Arg::UInt(2))],
        ),
        ev(20, track, "recovery", EventKind::End),
        args(
            ev(30, track, "recovery", EventKind::Begin),
            &[("attempt", Arg::UInt(2))], // must be 3
        ),
        ev(40, track, "recovery", EventKind::End),
    ];
    let v = must_fire(&check(&events), Invariant::RecoveryProtocol);
    assert!(v.message.contains("did not increase"), "{v:?}");
}

#[test]
fn mutation_premature_degrade_fires_recovery_protocol() {
    let track = Track::Request(5);
    let events = vec![
        args(
            ev(10, track, "recovery", EventKind::Begin),
            &[("attempt", Arg::UInt(1))],
        ),
        ev(20, track, "recovery", EventKind::End),
        // Degrading after attempt 1 with max_retries=3 abandons budgeted
        // retries.
        ev(30, track, "recovery:degrade", EventKind::Instant),
    ];
    let cfg = SentinelConfig {
        max_retries: Some(3),
        ..Default::default()
    };
    let v = must_fire(&check_with(&events, cfg), Invariant::RecoveryProtocol);
    assert!(v.message.contains("still budgeted"), "{v:?}");
}

#[test]
fn mutation_reexecution_outside_recovery_fires_recovery_protocol() {
    let mut events = legal_offload();
    // OffloadSession::recover's instant with no enclosing recovery span.
    events.insert(
        9,
        args(
            ev(542, Track::Request(7), "recovery", EventKind::Instant),
            &[("from", Arg::UInt(0)), ("to", Arg::UInt(1))],
        ),
    );
    let v = must_fire(&check(&events), Invariant::RecoveryProtocol);
    assert!(v.message.contains("outside a recovery span"), "{v:?}");
}

#[test]
fn mutation_unknown_event_is_a_warning_and_a_strict_violation() {
    let mut events = legal_offload();
    events.push(ev(
        560,
        Track::Request(99),
        "not:a:real:event",
        EventKind::Instant,
    ));
    let c = check(&events);
    assert!(c.violations.is_empty());
    assert_eq!(c.warnings.len(), 1);
    assert!(c.warnings[0].contains("not:a:real:event"));

    let strict = SentinelConfig {
        strict: true,
        ..Default::default()
    };
    let v = must_fire(&check_with(&events, strict), Invariant::Vocabulary);
    assert!(v.message.contains("not:a:real:event"), "{v:?}");
}

#[test]
fn observability_instants_are_known_vocabulary() {
    // The timeline substrate's probes — burst-handler routing, scaled-pool
    // depth, and arrival-rate step onsets — must pass the strict vocabulary
    // gate without warnings.
    let mut events = legal_offload();
    events.push(args(
        ev(560, Track::Server, "burst:route", EventKind::Instant),
        &[("route", Arg::Str("primary"))],
    ));
    events.push(args(
        ev(561, Track::Sim, "pool:depth", EventKind::Instant),
        &[("pool", Arg::UInt(1)), ("depth", Arg::UInt(3))],
    ));
    events.push(args(
        ev(562, Track::Sim, "burst:onset", EventKind::Instant),
        &[("mrps_from", Arg::UInt(1000)), ("mrps_to", Arg::UInt(4000))],
    ));
    let strict = SentinelConfig {
        strict: true,
        ..Default::default()
    };
    let c = check_with(&events, strict);
    assert!(c.violations.is_empty(), "{:?}", c.violations);
    assert!(c.warnings.is_empty(), "{:?}", c.warnings);
}
