//! The event queue at the heart of the discrete-event kernel.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of `(SimTime, E)` pairs, popped in time order.
///
/// Ties are broken by insertion order (FIFO), which keeps simulations
/// deterministic when many events share a timestamp.
///
/// # Example
///
/// ```
/// use beehive_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(10), 'b');
/// q.schedule(SimTime::from_nanos(10), 'c');
/// q.schedule(SimTime::from_nanos(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_broken_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(9), ());
        q.schedule(SimTime::from_nanos(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(4)));
    }
}
