//! Minimal, dependency-free JSON tree with a deterministic emitter and a
//! strict parser.
//!
//! The reproduction publishes every experiment report as machine-readable
//! JSON (`repro --json`). Rather than pulling serde into an otherwise
//! self-contained workspace, reports build a [`Json`] tree and render it
//! with [`Json::render`]. The emitter is deterministic: object keys keep
//! insertion order, floats use Rust's shortest-round-trip `Display`
//! formatting, and non-finite floats become `null`. This determinism is
//! load-bearing — the engine's regression tests byte-compare rendered
//! reports across worker counts, and `scripts/verify.sh` diffs a golden
//! file.
//!
//! The parser exists so tests (and the golden-file check) can assert that
//! emitted reports are well-formed JSON; it accepts exactly the JSON
//! grammar (RFC 8259) with no extensions.
//!
//! # Example
//!
//! ```
//! use beehive_sim::json::Json;
//!
//! let j = Json::obj([
//!     ("label".into(), Json::from("fig8")),
//!     ("p99_ms".into(), Json::from(12.5)),
//!     ("points".into(), Json::Arr(vec![Json::from(1u64), Json::from(2u64)])),
//! ]);
//! let text = j.render();
//! assert_eq!(text, r#"{"label":"fig8","p99_ms":12.5,"points":[1,2]}"#);
//! assert_eq!(Json::parse(&text).unwrap(), j);
//! ```

use std::fmt;

/// A JSON value.
///
/// Objects are ordered key/value lists, not maps: insertion order is
/// preserved on render, which keeps report output deterministic without a
/// sorting pass.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (renders without a decimal point).
    Int(i128),
    /// A float (shortest round-trip rendering; non-finite renders as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// Types that can describe themselves as a [`Json`] tree.
///
/// This is the workspace's stand-in for `serde::Serialize`: report structs
/// implement it by hand, which keeps the emitted shape explicit and
/// reviewable.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

impl Json {
    /// Build an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// Build an array by mapping `to_json` over an iterator.
    pub fn arr<T: ToJson>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(|x| x.to_json()).collect())
    }

    /// Render to a compact JSON string (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append the compact rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                use fmt::Write;
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    use fmt::Write;
                    // Rust's Display prints the shortest string that parses
                    // back to the same f64 — deterministic across platforms.
                    let mut buf = String::new();
                    let _ = write!(buf, "{x}");
                    // `Display` omits ".0" for integral floats; keep it so a
                    // reader can tell floats from ints and round-trips stay
                    // type-stable.
                    if !buf.contains(['.', 'e', 'E']) {
                        buf.push_str(".0");
                    }
                    out.push_str(&buf);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. The whole input must be one value plus
    /// optional surrounding whitespace.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Int(x as i128)
    }
}
impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Int(x as i128)
    }
}
impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Int(x as i128)
    }
}
impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Int(x as i128)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(x: Option<T>) -> Json {
        x.map_or(Json::Null, Into::into)
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            s.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 character (input is a &str, so slices at
                    // char boundaries are safe to recover).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("number out of range"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-7).render(), "-7");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(2.0).render(), "2.0");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::Str("a\"b\n".into()).render(), r#""a\"b\n""#);
    }

    #[test]
    fn renders_nested() {
        let j = Json::obj([
            ("xs".into(), Json::Arr(vec![Json::Int(1), Json::Null])),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(j.render(), r#"{"xs":[1,null],"empty":{}}"#);
    }

    #[test]
    fn object_keys_keep_insertion_order() {
        let j = Json::obj([("z".into(), Json::Int(1)), ("a".into(), Json::Int(2))]);
        assert_eq!(j.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn parse_round_trips_rendered_output() {
        let j = Json::obj([
            ("label".into(), Json::from("fig8 — saturation")),
            ("rps".into(), Json::from(123.456)),
            (
                "counts".into(),
                Json::Arr(vec![Json::from(0u64), Json::from(9u64)]),
            ),
            ("none".into(), Json::Null),
            ("ok".into(), Json::from(true)),
        ]);
        let text = j.render();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let j = Json::parse(" { \"k\" : [ 1 , 2.5e1 , \"\\u0041\\n\" ] } ").unwrap();
        assert_eq!(
            j,
            Json::obj([(
                "k".into(),
                Json::Arr(vec![Json::Int(1), Json::Num(25.0), Json::Str("A\n".into())])
            )])
        );
    }

    #[test]
    fn parse_surrogate_pair() {
        let j = Json::parse(r#""😀""#).unwrap();
        assert_eq!(j, Json::Str("😀".into()));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn float_rendering_is_shortest_round_trip() {
        for x in [0.1, 1.0 / 3.0, 1e-12, 123456789.123456] {
            let text = Json::Num(x).render();
            assert_eq!(text.parse::<f64>().unwrap(), x, "{text}");
        }
    }

    #[test]
    fn get_looks_up_object_keys() {
        let j = Json::obj([("a".into(), Json::Int(1))]);
        assert_eq!(j.get("a"), Some(&Json::Int(1)));
        assert_eq!(j.get("b"), None);
        assert_eq!(Json::Null.get("a"), None);
    }
}
