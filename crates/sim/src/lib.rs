//! # beehive-sim — deterministic discrete-event simulation kernel
//!
//! Every experiment in the BeeHive reproduction runs on virtual time so that
//! figures regenerate bit-identically from a seed. This crate provides the
//! shared substrate:
//!
//! * [`SimTime`] / [`Duration`] — virtual nanosecond clock types,
//! * [`Rng`] — a seedable, splittable PCG generator with the distributions the
//!   experiments need (uniform, exponential, log-normal),
//! * [`EventQueue`] — a stable priority queue of timestamped events,
//! * [`pool`] — CPU models: egalitarian processor sharing ([`pool::PsPool`])
//!   for multi-threaded web servers and FIFO ([`pool::FifoPool`]) for
//!   single-request FaaS instances,
//! * [`stats`] — latency percentiles, per-second timelines, histograms,
//! * [`json`] — a dependency-free JSON tree, emitter and parser used by the
//!   experiment reports (`repro --json`).
//!
//! # Example
//!
//! ```
//! use beehive_sim::{EventQueue, SimTime, Duration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + Duration::from_millis(5), "b");
//! q.schedule(SimTime::ZERO + Duration::from_millis(1), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "a");
//! assert_eq!(t.as_millis(), 1);
//! ```

#![warn(missing_docs)]

mod event;
mod rng;
mod time;

pub mod json;
pub mod pool;
pub mod stats;

pub use event::EventQueue;
pub use rng::Rng;
pub use time::{Duration, SimTime};
