//! CPU resource models.
//!
//! Two queueing disciplines cover every machine in the reproduction:
//!
//! * [`PsPool`] — egalitarian **processor sharing** over `capacity` cores.
//!   Multi-threaded web servers time-slice requests across a thread pool, and
//!   PS is the standard fluid model for that: with `n` jobs active each
//!   receives `min(1, capacity / n)` of a core. This produces the convex
//!   latency-vs-load curves of the paper's Figure 2.
//! * [`FifoPool`] — `k` servers, FIFO queue; used for the database machine
//!   where queries are short and run to completion.
//!
//! Both pools are *passive*: they never schedule events themselves. Drivers
//! ask for [`PsPool::next_completion`] after every mutation and schedule a
//! kernel event; the [`epoch`](PsPool::epoch) counter lets drivers discard
//! stale completion events after later arrivals changed the schedule.

use std::collections::HashMap;

use crate::{Duration, SimTime};

/// Caller-assigned identifier of a job inside a pool.
pub type JobId = u64;

/// Egalitarian processor-sharing pool (fluid model).
///
/// # Example
///
/// ```
/// use beehive_sim::pool::PsPool;
/// use beehive_sim::{Duration, SimTime};
///
/// let mut pool = PsPool::new(1.0); // one core
/// let t0 = SimTime::ZERO;
/// pool.add(t0, 1, Duration::from_millis(10));
/// pool.add(t0, 2, Duration::from_millis(10));
/// // Two equal jobs share the core: both finish at 20ms.
/// let (t, job) = pool.next_completion().unwrap();
/// assert_eq!(t.as_millis(), 20);
/// assert_eq!(job, 1); // FIFO tie-break
/// ```
#[derive(Debug, Clone)]
pub struct PsPool {
    capacity: f64,
    jobs: HashMap<JobId, Job>,
    last_update: SimTime,
    epoch: u64,
    busy_core_time: f64,
}

#[derive(Debug, Clone, Copy)]
struct Job {
    /// Remaining CPU work in nanoseconds-of-one-core.
    remaining: f64,
    /// Insertion sequence for deterministic tie-breaking.
    seq: u64,
}

impl PsPool {
    /// A pool with `capacity` cores (fractional capacities model throttled
    /// FaaS instances, e.g. Lambda's 0.6 vCPU at 1 GB).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not positive and finite.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "pool capacity must be positive: {capacity}"
        );
        PsPool {
            capacity,
            jobs: HashMap::new(),
            last_update: SimTime::ZERO,
            epoch: 0,
            busy_core_time: 0.0,
        }
    }

    /// Per-job service rate (fraction of one core) with the current load.
    fn rate(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            (self.capacity / self.jobs.len() as f64).min(1.0)
        }
    }

    /// Number of jobs currently in service.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when the pool is idle.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Monotonic counter bumped on every mutation; embed it in scheduled
    /// completion events and drop events whose epoch is stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total core-nanoseconds consumed so far (for utilization/cost
    /// accounting).
    pub fn busy_core_nanos(&self) -> f64 {
        self.busy_core_time
    }

    /// Apply elapsed service up to `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the previous update.
    fn advance_to(&mut self, now: SimTime) {
        let elapsed = (now - self.last_update).as_nanos() as f64;
        self.last_update = now;
        if elapsed == 0.0 || self.jobs.is_empty() {
            return;
        }
        let rate = self.rate();
        let served = elapsed * rate;
        self.busy_core_time += served * self.jobs.len() as f64;
        for job in self.jobs.values_mut() {
            job.remaining = (job.remaining - served).max(0.0);
        }
    }

    /// Submit a job needing `work` nanoseconds of one core.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already in the pool or `now` precedes the last
    /// mutation.
    pub fn add(&mut self, now: SimTime, id: JobId, work: Duration) {
        self.advance_to(now);
        let seq = self.epoch;
        let prev = self.jobs.insert(
            id,
            Job {
                remaining: work.as_nanos() as f64,
                seq,
            },
        );
        assert!(prev.is_none(), "job {id} already in pool");
        self.epoch += 1;
    }

    /// Remove a job (completed or cancelled), returning how much CPU work it
    /// still had left.
    ///
    /// # Panics
    ///
    /// Panics if the job is not in the pool.
    pub fn remove(&mut self, now: SimTime, id: JobId) -> Duration {
        self.advance_to(now);
        let job = self.jobs.remove(&id).expect("job not in pool");
        self.epoch += 1;
        Duration::from_nanos(job.remaining.max(0.0).round() as u64)
    }

    /// The earliest `(completion_time, job)` under the current load, assuming
    /// no further arrivals. Ties break FIFO by insertion order.
    pub fn next_completion(&self) -> Option<(SimTime, JobId)> {
        if self.jobs.is_empty() {
            return None;
        }
        let rate = self.rate();
        debug_assert!(rate > 0.0);
        let (id, job) = self
            .jobs
            .iter()
            .min_by(|(_, a), (_, b)| {
                a.remaining
                    .partial_cmp(&b.remaining)
                    .unwrap()
                    .then(a.seq.cmp(&b.seq))
            })
            .map(|(id, job)| (*id, *job))
            .expect("non-empty");
        let dt = (job.remaining / rate).ceil() as u64;
        Some((self.last_update + Duration::from_nanos(dt), id))
    }

    /// `true` when job `id` has zero remaining work at `now` (use from a
    /// completion event to confirm it is not stale).
    pub fn is_finished(&mut self, now: SimTime, id: JobId) -> bool {
        self.advance_to(now);
        self.jobs.get(&id).is_some_and(|j| j.remaining < 1.0)
    }
}

/// `k`-server FIFO queue: jobs run to completion on a dedicated server,
/// excess arrivals wait in order.
#[derive(Debug, Clone)]
pub struct FifoPool {
    servers: usize,
    /// Jobs currently in service: (id, completion time).
    running: Vec<(JobId, SimTime)>,
    /// Waiting jobs in arrival order: (id, service demand).
    queue: std::collections::VecDeque<(JobId, Duration)>,
    busy_core_time: f64,
}

impl FifoPool {
    /// A pool with `servers` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "FifoPool needs at least one server");
        FifoPool {
            servers,
            running: Vec::new(),
            queue: std::collections::VecDeque::new(),
            busy_core_time: 0.0,
        }
    }

    /// Submit a job; it starts immediately if a server is free.
    pub fn add(&mut self, now: SimTime, id: JobId, work: Duration) {
        self.busy_core_time += work.as_nanos() as f64;
        if self.running.len() < self.servers {
            self.running.push((id, now + work));
        } else {
            self.queue.push_back((id, work));
        }
    }

    /// The earliest `(completion_time, job)` among running jobs.
    pub fn next_completion(&self) -> Option<(SimTime, JobId)> {
        self.running
            .iter()
            .min_by_key(|(id, t)| (*t, *id))
            .map(|(id, t)| (*t, *id))
    }

    /// Mark `id` complete at `now`, promoting the next queued job.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not running.
    pub fn complete(&mut self, now: SimTime, id: JobId) {
        let idx = self
            .running
            .iter()
            .position(|(j, _)| *j == id)
            .expect("completing job that is not running");
        self.running.swap_remove(idx);
        if let Some((next, work)) = self.queue.pop_front() {
            self.running.push((next, now + work));
        }
    }

    /// Jobs in service plus jobs waiting.
    pub fn len(&self) -> usize {
        self.running.len() + self.queue.len()
    }

    /// `true` when nothing is running or queued.
    pub fn is_empty(&self) -> bool {
        self.running.is_empty() && self.queue.is_empty()
    }

    /// Total core-nanoseconds ever submitted (for utilization accounting).
    pub fn busy_core_nanos(&self) -> f64 {
        self.busy_core_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_runs_at_full_speed() {
        let mut pool = PsPool::new(4.0);
        pool.add(SimTime::ZERO, 1, Duration::from_millis(8));
        let (t, id) = pool.next_completion().unwrap();
        assert_eq!(id, 1);
        assert_eq!(t.as_millis(), 8); // one job never exceeds one core
    }

    #[test]
    fn sharing_slows_jobs_down() {
        let mut pool = PsPool::new(1.0);
        pool.add(SimTime::ZERO, 1, Duration::from_millis(10));
        pool.add(SimTime::ZERO, 2, Duration::from_millis(10));
        let (t, _) = pool.next_completion().unwrap();
        assert_eq!(t.as_millis(), 20);
    }

    #[test]
    fn capacity_bounds_parallelism() {
        // 2 cores, 4 equal jobs => each runs at 0.5 core.
        let mut pool = PsPool::new(2.0);
        for id in 0..4 {
            pool.add(SimTime::ZERO, id, Duration::from_millis(10));
        }
        let (t, _) = pool.next_completion().unwrap();
        assert_eq!(t.as_millis(), 20);
    }

    #[test]
    fn later_arrival_delays_completion() {
        let mut pool = PsPool::new(1.0);
        pool.add(SimTime::ZERO, 1, Duration::from_millis(10));
        // After 5ms, job 1 has 5ms left. Job 2 arrives; both at half speed.
        pool.add(
            SimTime::ZERO + Duration::from_millis(5),
            2,
            Duration::from_millis(3),
        );
        let (t, id) = pool.next_completion().unwrap();
        // Job 2 (3ms left) finishes first: 5ms + 3/0.5 = 11ms.
        assert_eq!(id, 2);
        assert_eq!(t.as_millis(), 11);
        pool.remove(t, 2);
        let (t1, id1) = pool.next_completion().unwrap();
        assert_eq!(id1, 1);
        // Job 1: 5ms left at t=5, served 3ms during the shared 6ms window,
        // so 2ms remain at full speed once alone => finishes at 13ms.
        assert_eq!(t1.as_millis(), 13);
    }

    #[test]
    fn fractional_capacity() {
        let mut pool = PsPool::new(0.5);
        pool.add(SimTime::ZERO, 1, Duration::from_millis(10));
        let (t, _) = pool.next_completion().unwrap();
        assert_eq!(t.as_millis(), 20);
    }

    #[test]
    fn epoch_bumps_on_mutation() {
        let mut pool = PsPool::new(1.0);
        let e0 = pool.epoch();
        pool.add(SimTime::ZERO, 1, Duration::from_millis(1));
        assert!(pool.epoch() > e0);
        let e1 = pool.epoch();
        pool.remove(SimTime::from_nanos(10), 1);
        assert!(pool.epoch() > e1);
    }

    #[test]
    fn is_finished_detects_completion() {
        let mut pool = PsPool::new(1.0);
        pool.add(SimTime::ZERO, 1, Duration::from_millis(2));
        assert!(!pool.is_finished(SimTime::from_nanos(1_000_000), 1));
        assert!(pool.is_finished(SimTime::from_nanos(2_000_001), 1));
    }

    #[test]
    fn busy_time_accumulates() {
        let mut pool = PsPool::new(4.0);
        pool.add(SimTime::ZERO, 1, Duration::from_millis(10));
        let (t, _) = pool.next_completion().unwrap();
        pool.remove(t, 1);
        let busy_ms = pool.busy_core_nanos() / 1e6;
        assert!((busy_ms - 10.0).abs() < 1e-6, "busy {busy_ms}ms");
    }

    #[test]
    #[should_panic(expected = "already in pool")]
    fn duplicate_job_panics() {
        let mut pool = PsPool::new(1.0);
        pool.add(SimTime::ZERO, 1, Duration::from_millis(1));
        pool.add(SimTime::ZERO, 1, Duration::from_millis(1));
    }

    #[test]
    fn fifo_queues_beyond_servers() {
        let mut pool = FifoPool::new(1);
        pool.add(SimTime::ZERO, 1, Duration::from_millis(5));
        pool.add(SimTime::ZERO, 2, Duration::from_millis(5));
        let (t1, id1) = pool.next_completion().unwrap();
        assert_eq!((t1.as_millis(), id1), (5, 1));
        pool.complete(t1, 1);
        let (t2, id2) = pool.next_completion().unwrap();
        assert_eq!((t2.as_millis(), id2), (10, 2));
        pool.complete(t2, 2);
        assert!(pool.is_empty());
    }

    #[test]
    fn fifo_parallel_servers() {
        let mut pool = FifoPool::new(2);
        pool.add(SimTime::ZERO, 1, Duration::from_millis(5));
        pool.add(SimTime::ZERO, 2, Duration::from_millis(3));
        let (t, id) = pool.next_completion().unwrap();
        assert_eq!((t.as_millis(), id), (3, 2));
    }
}
