//! Seedable deterministic random numbers.
//!
//! A PCG-XSH-RR 64/32 generator seeded through SplitMix64, with the
//! distributions the experiments use. We implement the generator from scratch
//! (rather than pulling in `rand`'s runtime) so simulation streams stay stable
//! regardless of dependency versions; `rand` remains a dev-dependency for
//! property tests only.

use crate::Duration;

/// A small, fast, deterministic random number generator (PCG-XSH-RR 64/32).
///
/// # Example
///
/// ```
/// use beehive_sim::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = splitmix64(&mut sm);
        let inc = splitmix64(&mut sm) | 1;
        let mut rng = Rng { state, inc };
        // Advance once so that the first output depends on both state words.
        rng.next_u32();
        rng
    }

    /// Derive an independent child generator; used to give each simulation
    /// component its own stream so adding draws in one place does not perturb
    /// another.
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire's method, unbiased enough for
    /// simulation purposes).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Widening multiply keeps the distribution close to uniform without a
        // rejection loop; bias is < 2^-64 * bound which is negligible here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed duration with the given mean; the classic
    /// inter-arrival distribution for open-loop (Poisson) request traffic.
    pub fn exponential(&mut self, mean: Duration) -> Duration {
        // Avoid ln(0).
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        mean.mul_f64(-u.ln())
    }

    /// A standard normal variate (Box–Muller, one half discarded for
    /// simplicity — determinism matters more than throughput here).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Log-normally distributed duration around `median` with shape `sigma`;
    /// used for cold-boot and provisioning time jitter.
    pub fn lognormal(&mut self, median: Duration, sigma: f64) -> Duration {
        let z = self.standard_normal();
        median.mul_f64((sigma * z).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_parent_usage() {
        let mut parent1 = Rng::new(9);
        let child_a = parent1.split();
        let mut parent2 = Rng::new(9);
        let child_b = parent2.split();
        let mut ca = child_a.clone();
        let mut cb = child_b.clone();
        for _ in 0..16 {
            assert_eq!(ca.next_u64(), cb.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = Rng::new(4);
        for _ in 0..10_000 {
            assert!(rng.gen_range(17) < 17);
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = Rng::new(5);
        let mean = Duration::from_millis(10);
        let n = 50_000u64;
        let total: u64 = (0..n).map(|_| rng.exponential(mean).as_nanos()).sum();
        let observed = total as f64 / n as f64;
        let expected = mean.as_nanos() as f64;
        assert!(
            (observed - expected).abs() / expected < 0.03,
            "observed mean {observed}, expected {expected}"
        );
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut rng = Rng::new(6);
        let median = Duration::from_millis(40);
        let mut xs: Vec<u64> = (0..20_001)
            .map(|_| rng.lognormal(median, 0.25).as_nanos())
            .collect();
        xs.sort_unstable();
        let observed = xs[xs.len() / 2] as f64;
        let expected = median.as_nanos() as f64;
        assert!(
            (observed - expected).abs() / expected < 0.05,
            "observed median {observed}, expected {expected}"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
