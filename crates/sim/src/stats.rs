//! Latency statistics: percentile samplers, per-second timelines, histograms.

use std::fmt;

use crate::json::{Json, ToJson};
use crate::{Duration, SimTime};

/// The `q`-quantile of `sorted` (ascending), nearest-rank method; zero when
/// empty.
///
/// This is the canonical f64 percentile used by every report aggregator in
/// the workspace (the [`LatencySampler`] applies the same rule to duration
/// samples).
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Sort a copy of `values` and return its `q`-quantile (nearest rank).
pub fn percentile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    percentile_sorted(&sorted, q)
}

/// Median of `values` (nearest-rank, matching [`percentile`] at `q = 0.5`);
/// zero when empty.
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 0.5)
}

/// Collects duration samples and answers percentile queries.
///
/// Stores all samples (simulations produce at most a few hundred thousand per
/// run), sorting lazily on query.
///
/// # Example
///
/// ```
/// use beehive_sim::stats::LatencySampler;
/// use beehive_sim::Duration;
///
/// let mut s = LatencySampler::new();
/// for ms in 1..=100 {
///     s.record(Duration::from_millis(ms));
/// }
/// assert_eq!(s.percentile(0.99).as_millis(), 99); // nearest rank
/// assert_eq!(s.percentile(0.50).as_millis(), 50);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencySampler {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencySampler {
    /// An empty sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        self.samples.push(d.as_nanos());
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), nearest-rank method.
    ///
    /// Returns [`Duration::ZERO`] when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.sort();
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Duration::from_nanos(self.samples[rank - 1])
    }

    /// Arithmetic mean, or zero when empty.
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let sum: u128 = self.samples.iter().map(|&x| x as u128).sum();
        Duration::from_nanos((sum / self.samples.len() as u128) as u64)
    }

    /// Largest sample, or zero when empty.
    pub fn max(&mut self) -> Duration {
        self.sort();
        Duration::from_nanos(self.samples.last().copied().unwrap_or(0))
    }

    /// Drain all samples, leaving the sampler empty.
    pub fn take(&mut self) -> Vec<Duration> {
        self.sorted = false;
        self.samples.drain(..).map(Duration::from_nanos).collect()
    }
}

/// One point of a per-bucket latency timeline.
#[derive(Debug, Clone, Copy)]
pub struct TimelinePoint {
    /// Start of the bucket, seconds since simulation start.
    pub second: u64,
    /// Number of requests completing in the bucket.
    pub count: u64,
    /// p99 latency of those requests, milliseconds.
    pub p99_ms: f64,
    /// Mean latency of those requests, milliseconds.
    pub mean_ms: f64,
}

impl ToJson for TimelinePoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("second".into(), Json::from(self.second)),
            ("count".into(), Json::from(self.count)),
            ("p99_ms".into(), Json::from(self.p99_ms)),
            ("mean_ms".into(), Json::from(self.mean_ms)),
        ])
    }
}

/// Buckets completed-request latencies per virtual second; produces the
/// p99-over-time series of the paper's Figure 7.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    buckets: Vec<LatencySampler>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a request that *completed* at `at` with the given latency.
    pub fn record(&mut self, at: SimTime, latency: Duration) {
        let sec = (at.as_nanos() / 1_000_000_000) as usize;
        if self.buckets.len() <= sec {
            self.buckets.resize_with(sec + 1, LatencySampler::new);
        }
        self.buckets[sec].record(latency);
    }

    /// The per-second series (empty seconds yield `count == 0`).
    pub fn points(&mut self) -> Vec<TimelinePoint> {
        self.buckets
            .iter_mut()
            .enumerate()
            .map(|(second, b)| TimelinePoint {
                second: second as u64,
                count: b.len() as u64,
                p99_ms: b.percentile(0.99).as_millis_f64(),
                mean_ms: b.mean().as_millis_f64(),
            })
            .collect()
    }

    /// First second `>= from_second` after which the p99 stays within
    /// `factor`× of `baseline` for `hold` consecutive non-empty seconds.
    /// This is the paper's "duration to reach stable latency" metric (§5.2).
    ///
    /// Returns `None` if the latency never stabilizes within the recorded
    /// horizon.
    pub fn stabilization_second(
        &mut self,
        from_second: u64,
        baseline: Duration,
        factor: f64,
        hold: usize,
    ) -> Option<u64> {
        let threshold = baseline.mul_f64(factor);
        let points = self.points();
        let mut run = 0usize;
        let mut run_start = 0u64;
        for p in points.iter().filter(|p| p.second >= from_second) {
            if p.count == 0 {
                continue; // empty buckets say nothing either way
            }
            if p.p99_ms <= threshold.as_millis_f64() {
                if run == 0 {
                    run_start = p.second;
                }
                run += 1;
                if run >= hold {
                    return Some(run_start);
                }
            } else {
                run = 0;
            }
        }
        None
    }
}

/// A fixed-width histogram of durations (for GC pause distributions).
#[derive(Debug, Clone)]
pub struct Histogram {
    width: Duration,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// A histogram with `bins` buckets of `width` each; overflow goes to the
    /// last bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `width` is zero.
    pub fn new(width: Duration, bins: usize) -> Self {
        assert!(bins > 0 && !width.is_zero(), "degenerate histogram");
        Histogram {
            width,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Record one duration.
    pub fn record(&mut self, d: Duration) {
        let idx = ((d.as_nanos() / self.width.as_nanos()) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bucket `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Approximate median (midpoint of the bucket holding the median sample).
    pub fn median(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let target = self.total.div_ceil(2);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Duration::from_nanos(
                    self.width.as_nanos() * i as u64 + self.width.as_nanos() / 2,
                );
            }
        }
        unreachable!("median within total")
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram({} samples, median {})",
            self.total,
            self.median()
        )
    }
}

/// Online mean/variance accumulator (Welford).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (zero with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = LatencySampler::new();
        for ms in [10u64, 20, 30, 40] {
            s.record(Duration::from_millis(ms));
        }
        assert_eq!(s.percentile(0.0).as_millis(), 10);
        assert_eq!(s.percentile(0.25).as_millis(), 10);
        assert_eq!(s.percentile(0.5).as_millis(), 20);
        assert_eq!(s.percentile(1.0).as_millis(), 40);
        assert_eq!(s.mean().as_millis(), 25);
        assert_eq!(s.max().as_millis(), 40);
    }

    #[test]
    fn empty_sampler_is_zero() {
        let mut s = LatencySampler::new();
        assert_eq!(s.percentile(0.99), Duration::ZERO);
        assert_eq!(s.mean(), Duration::ZERO);
        assert!(s.is_empty());
    }

    #[test]
    fn timeline_buckets_by_second() {
        let mut t = Timeline::new();
        t.record(SimTime::from_secs(0), Duration::from_millis(10));
        t.record(SimTime::from_secs(2), Duration::from_millis(30));
        t.record(SimTime::from_secs(2), Duration::from_millis(50));
        let pts = t.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].count, 1);
        assert_eq!(pts[1].count, 0);
        assert_eq!(pts[2].count, 2);
        assert!((pts[2].p99_ms - 50.0).abs() < 1e-9);
        assert!((pts[2].mean_ms - 40.0).abs() < 1e-9);
    }

    #[test]
    fn stabilization_detects_recovery() {
        let mut t = Timeline::new();
        // Seconds 0..5: 100ms p99 (elevated); seconds 5..10: 10ms (stable).
        for sec in 0..10u64 {
            let lat = if sec < 5 { 100 } else { 10 };
            for _ in 0..10 {
                t.record(SimTime::from_secs(sec), Duration::from_millis(lat));
            }
        }
        let stab = t.stabilization_second(0, Duration::from_millis(12), 1.2, 3);
        assert_eq!(stab, Some(5));
    }

    #[test]
    fn stabilization_none_when_never_stable() {
        let mut t = Timeline::new();
        for sec in 0..5u64 {
            t.record(SimTime::from_secs(sec), Duration::from_millis(100));
        }
        assert_eq!(
            t.stabilization_second(0, Duration::from_millis(10), 1.2, 2),
            None
        );
    }

    #[test]
    fn histogram_median() {
        let mut h = Histogram::new(Duration::from_millis(1), 64);
        for ms in [1u64, 2, 2, 3, 9] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.total(), 5);
        // Median sample (2ms) lands in bucket 2 -> midpoint 2.5ms.
        assert_eq!(h.median().as_micros(), 2_500);
    }

    #[test]
    fn histogram_overflow_clamps() {
        let mut h = Histogram::new(Duration::from_millis(1), 4);
        h.record(Duration::from_secs(10));
        assert_eq!(h.count(3), 1);
    }

    #[test]
    fn f64_percentiles_match_sampler_rule() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.25), 10.0);
        assert_eq!(percentile(&xs, 0.5), 20.0);
        assert_eq!(percentile(&xs, 1.0), 40.0);
        assert_eq!(median(&xs), 20.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
        // Unsorted input sorts internally.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 0.5), 2.0);
    }

    #[test]
    fn online_stats() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }
}
