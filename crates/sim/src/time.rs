//! Virtual time: absolute instants ([`SimTime`]) and spans ([`Duration`]),
//! both counted in integer nanoseconds so arithmetic is exact and
//! deterministic across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the virtual clock, in nanoseconds since the start
/// of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl SimTime {
    /// The origin of the virtual clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant; used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Instant `nanos` nanoseconds after the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Instant `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the origin (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the origin as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// The longest representable span; used as an "infinity" sentinel.
    pub const MAX: Duration = Duration(u64::MAX);

    /// A span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration(nanos)
    }

    /// A span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros * 1_000)
    }

    /// A span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000_000)
    }

    /// A span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000_000)
    }

    /// A span of `secs` seconds given as a float (rounds to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        Duration((secs * 1e9).round() as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Milliseconds as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction; returns [`Duration::ZERO`] on underflow.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Scale the span by a non-negative float factor (rounds to nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Duration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale factor: {factor}"
        );
        Duration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("Duration subtraction underflow"),
        )
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Duration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Duration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Duration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_millis(10);
        let u = t + Duration::from_millis(5);
        assert_eq!((u - t).as_millis(), 5);
        assert_eq!((u - Duration::from_millis(15)), SimTime::ZERO);
        assert_eq!(Duration::from_millis(4) * 3, Duration::from_millis(12));
        assert_eq!(Duration::from_millis(12) / 4, Duration::from_millis(3));
    }

    #[test]
    fn saturating_ops() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_nanos(4));
        assert_eq!(
            Duration::from_nanos(1).saturating_sub(Duration::from_nanos(2)),
            Duration::ZERO
        );
    }

    #[test]
    fn float_conversions() {
        assert_eq!(Duration::from_secs_f64(0.25).as_millis(), 250);
        assert!((Duration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Duration::from_millis(10).mul_f64(2.5).as_millis(), 25);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{:?}", SimTime::ZERO).is_empty());
        assert_eq!(format!("{:?}", Duration::from_nanos(5)), "5ns");
        assert_eq!(format!("{:?}", Duration::from_micros(5)), "5.000us");
        assert_eq!(format!("{:?}", Duration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{:?}", Duration::from_secs(5)), "5.000s");
    }
}
