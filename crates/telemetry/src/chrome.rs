//! Chrome trace-event exporter.
//!
//! Renders labelled [`Trace`]s as one Chrome/Perfetto trace document
//! (`chrome://tracing` → Load, or <https://ui.perfetto.dev>). The mapping:
//!
//! * each scenario gets a block of four `pid`s — one per endpoint
//!   (server, FaaS fleet, database, sim kernel) — named via
//!   `process_name` metadata events,
//! * within the server process, `tid 0` is the server runtime and each
//!   request gets its own `tid` (its server request id + 1); within the
//!   FaaS process, `tid 0` is the platform and each instance its own `tid`,
//! * [`EventKind`] maps onto phases `B`/`E`/`X`/`i`/`C`, with timestamps in
//!   microseconds of virtual time.
//!
//! Rendering goes through `beehive_sim::json`, so the output is
//! deterministic: the same traces render to the same bytes.

use beehive_sim::json::Json;

use crate::{Arg, EventKind, Trace, TraceEvent, Track};

/// `pid`s per scenario (server / faas / db / sim).
const PIDS_PER_SCENARIO: u64 = 4;

fn pid_tid(track: Track, base: u64) -> (u64, u64) {
    match track {
        Track::Server => (base, 0),
        Track::Request(r) => (base, r + 1),
        Track::Platform => (base + 1, 0),
        Track::Instance(i) => (base + 1, i as u64 + 1),
        Track::Db => (base + 2, 0),
        Track::Sim => (base + 3, 0),
    }
}

fn arg_json(a: &Arg) -> Json {
    match *a {
        Arg::Int(v) => Json::Int(v as i128),
        Arg::UInt(v) => Json::Int(v as i128),
        Arg::Float(v) => Json::Num(v),
        Arg::Bool(v) => Json::Bool(v),
        Arg::Str(v) => Json::from(v),
    }
}

fn micros(nanos: u64) -> Json {
    // Chrome timestamps are microseconds; keep sub-µs precision as a
    // fraction. f64 division is deterministic (IEEE-754), so rendering is
    // byte-stable.
    Json::Num(nanos as f64 / 1000.0)
}

fn event_json(e: &TraceEvent, base: u64) -> Json {
    let (pid, tid) = pid_tid(e.track, base);
    let ph = match e.kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::Complete(_) => "X",
        EventKind::Instant => "i",
        EventKind::Counter(_) => "C",
    };
    let cat = e.name.split(':').next().unwrap_or(e.name);
    let mut fields: Vec<(String, Json)> = vec![
        ("name".into(), Json::from(e.name)),
        ("cat".into(), Json::from(cat)),
        ("ph".into(), Json::from(ph)),
        ("ts".into(), micros(e.at.as_nanos())),
        ("pid".into(), Json::Int(pid as i128)),
        ("tid".into(), Json::Int(tid as i128)),
    ];
    match e.kind {
        EventKind::Complete(d) => fields.push(("dur".into(), micros(d.as_nanos()))),
        EventKind::Instant => fields.push(("s".into(), Json::from("t"))),
        _ => {}
    }
    if let EventKind::Counter(v) = e.kind {
        fields.push((
            "args".into(),
            Json::obj([("value".into(), Json::Int(v as i128))]),
        ));
    } else if !e.args.is_empty() {
        fields.push((
            "args".into(),
            Json::Obj(
                e.args
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), arg_json(v)))
                    .collect(),
            ),
        ));
    }
    Json::Obj(fields)
}

fn metadata_json(pid: u64, name: &str) -> Json {
    Json::obj([
        ("name".into(), Json::from("process_name")),
        ("ph".into(), Json::from("M")),
        ("pid".into(), Json::Int(pid as i128)),
        ("tid".into(), Json::Int(0)),
        (
            "args".into(),
            Json::obj([("name".into(), Json::from(name))]),
        ),
    ])
}

fn scenario_events(idx: usize, label: &str, trace: &Trace, out: &mut Vec<Json>) {
    let base = 1 + idx as u64 * PIDS_PER_SCENARIO;
    for (off, endpoint) in ["server", "faas", "db", "sim"].iter().enumerate() {
        out.push(metadata_json(
            base + off as u64,
            &format!("{label} · {endpoint}"),
        ));
    }
    for e in &trace.events {
        out.push(event_json(e, base));
    }
}

/// Render labelled traces as a Chrome trace-event document (a `Json` tree:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}`).
pub fn chrome_trace(scenarios: &[(String, Trace)]) -> Json {
    let mut events = Vec::new();
    for (idx, (label, trace)) in scenarios.iter().enumerate() {
        scenario_events(idx, label, trace, &mut events);
    }
    Json::obj([
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::from("ms")),
    ])
}

/// [`chrome_trace`], rendered straight to a string. Events are rendered one
/// at a time, so the peak memory is one event's JSON rather than a second
/// copy of the whole trace — traced full-length experiments run to millions
/// of events.
pub fn chrome_trace_string(scenarios: &[(String, Trace)]) -> String {
    let total: usize = scenarios.iter().map(|(_, t)| t.events.len()).sum();
    let mut out = String::with_capacity(64 + total * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let push = |j: Json, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&j.render());
    };
    for (idx, (label, trace)) in scenarios.iter().enumerate() {
        let base = 1 + idx as u64 * PIDS_PER_SCENARIO;
        for (off, endpoint) in ["server", "faas", "db", "sim"].iter().enumerate() {
            push(
                metadata_json(base + off as u64, &format!("{label} · {endpoint}")),
                &mut out,
                &mut first,
            );
        }
        for e in &trace.events {
            push(event_json(e, base), &mut out, &mut first);
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use beehive_sim::{Duration, SimTime};

    fn sample() -> Vec<(String, Trace)> {
        let at = |us: u64| SimTime::ZERO + Duration::from_micros(us);
        let t = Trace {
            events: vec![
                TraceEvent {
                    at: at(10),
                    track: Track::Request(3),
                    name: "req:offload",
                    kind: EventKind::Begin,
                    args: vec![("instance", Arg::UInt(2))],
                },
                TraceEvent {
                    at: at(12),
                    track: Track::Instance(2),
                    name: "gc",
                    kind: EventKind::Complete(Duration::from_micros(4)),
                    args: vec![("copied_bytes", Arg::UInt(4096))],
                },
                TraceEvent {
                    at: at(20),
                    track: Track::Request(3),
                    name: "req:offload",
                    kind: EventKind::End,
                    args: vec![],
                },
                TraceEvent {
                    at: at(21),
                    track: Track::Sim,
                    name: "event_queue",
                    kind: EventKind::Counter(17),
                    args: vec![],
                },
                TraceEvent {
                    at: at(22),
                    track: Track::Db,
                    name: "db:execute",
                    kind: EventKind::Instant,
                    args: vec![("query", Arg::Int(1))],
                },
            ],
        };
        vec![("BeeHive/OW".to_string(), t)]
    }

    #[test]
    fn export_matches_chrome_schema() {
        let doc = chrome_trace(&sample());
        let Json::Obj(fields) = &doc else {
            panic!("top level must be an object")
        };
        assert_eq!(fields[0].0, "traceEvents");
        let Json::Arr(events) = &fields[0].1 else {
            panic!("traceEvents must be an array")
        };
        // 4 process_name metadata records + 5 events.
        assert_eq!(events.len(), 9);
        let rendered = doc.render();
        assert!(rendered.contains("\"ph\":\"B\""));
        assert!(rendered.contains("\"ph\":\"E\""));
        assert!(rendered.contains("\"ph\":\"X\""));
        assert!(rendered.contains("\"ph\":\"i\""));
        assert!(rendered.contains("\"ph\":\"C\""));
        assert!(rendered.contains("\"name\":\"BeeHive/OW · server\""));
        // Request 3 renders as tid 4 under the server pid 1.
        assert!(rendered.contains("\"pid\":1,\"tid\":4"));
        // Instance 2 renders as tid 3 under the faas pid 2.
        assert!(rendered.contains("\"pid\":2,\"tid\":3"));
    }

    #[test]
    fn string_rendering_equals_tree_rendering() {
        let scenarios = sample();
        assert_eq!(
            chrome_trace_string(&scenarios),
            chrome_trace(&scenarios).render()
        );
    }

    #[test]
    fn round_trips_through_the_strict_parser() {
        let s = chrome_trace_string(&sample());
        let parsed = Json::parse(&s).expect("exporter must emit valid RFC 8259 JSON");
        assert_eq!(parsed.render(), s);
    }

    #[test]
    fn empty_trace_is_well_formed() {
        // A scenario with no events still gets its metadata block, and both
        // renderers agree and emit valid JSON.
        let scenarios = vec![("empty".to_string(), Trace { events: Vec::new() })];
        let s = chrome_trace_string(&scenarios);
        assert_eq!(s, chrome_trace(&scenarios).render());
        let parsed = Json::parse(&s).expect("empty trace must render valid JSON");
        assert_eq!(parsed.render(), s);
        assert!(s.contains("\"name\":\"empty · server\""));
        // No scenarios at all is also fine.
        let none = chrome_trace_string(&[]);
        assert_eq!(Json::parse(&none).expect("must parse").render(), none);
        assert!(none.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn counter_only_track_is_well_formed() {
        let at = |us: u64| SimTime::ZERO + Duration::from_micros(us);
        let t = Trace {
            events: (0..3)
                .map(|i| TraceEvent {
                    at: at(10 * (i + 1)),
                    track: Track::Sim,
                    name: "server_pool",
                    kind: EventKind::Counter(i as i64 * 5),
                    args: vec![],
                })
                .collect(),
        };
        let scenarios = vec![("counters".to_string(), t)];
        let s = chrome_trace_string(&scenarios);
        let parsed = Json::parse(&s).expect("counter-only trace must parse");
        assert_eq!(parsed.render(), s);
        // All three samples render as C-phase events with a value arg.
        assert_eq!(s.matches("\"ph\":\"C\"").count(), 3);
        assert!(s.contains("\"args\":{\"value\":10}"));
    }

    #[test]
    fn unmatched_begin_is_well_formed() {
        // A span still open at the end of the run (request in flight at the
        // horizon) renders as a lone B event; viewers auto-close these, and
        // the document must stay valid JSON.
        let t = Trace {
            events: vec![TraceEvent {
                at: SimTime::ZERO + Duration::from_micros(7),
                track: Track::Request(1),
                name: "req:offload",
                kind: EventKind::Begin,
                args: vec![],
            }],
        };
        let scenarios = vec![("open-span".to_string(), t)];
        let s = chrome_trace_string(&scenarios);
        let parsed = Json::parse(&s).expect("unmatched begin must render valid JSON");
        assert_eq!(parsed.render(), s);
        assert_eq!(s.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(s.matches("\"ph\":\"E\"").count(), 0);
    }

    #[test]
    fn second_scenario_gets_its_own_pid_block() {
        let mut scenarios = sample();
        scenarios.push(("Vanilla".to_string(), scenarios[0].1.clone()));
        let rendered = chrome_trace(&scenarios).render();
        assert!(rendered.contains("\"name\":\"Vanilla · server\""));
        // Scenario 1's server pid is 1 + 1*4 = 5.
        assert!(rendered.contains("\"pid\":5,\"tid\":4"));
    }
}
