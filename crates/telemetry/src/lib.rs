//! # beehive-telemetry — virtual-time tracing and metrics
//!
//! Spans, instant events and counters keyed to the simulation's virtual
//! clock, recorded deterministically so that a traced run is byte-identical
//! for a fixed seed at any worker count.
//!
//! The design is sink-per-thread: every [`Sim`](../beehive_workload/driver/struct.Sim.html)
//! runs entirely on one worker thread, so the recording sink is a
//! thread-local buffer. [`install`] arms it, the instrumented crates emit
//! through the free functions below, and [`take`] hands the finished
//! [`Trace`] back to the embedder. With no recorder installed every probe is
//! a thread-local read plus a branch (the no-op sink); building with the
//! `compile-off` feature removes even that, which is what the
//! `telemetry` bench compares against.
//!
//! Probes never allocate or do work unless a recorder is armed; call sites
//! that must build argument lists guard with [`enabled`].
//!
//! Exporters live in [`chrome`] (Chrome trace-event JSON for
//! `chrome://tracing` / Perfetto) and [`summary`] (per-request critical-path
//! tables), both rendered through the in-tree `beehive_sim::json`.
//!
//! # Example
//!
//! ```
//! use beehive_sim::{Duration, SimTime};
//! use beehive_telemetry as telemetry;
//!
//! telemetry::install();
//! telemetry::set_now(SimTime::ZERO + Duration::from_millis(3));
//! telemetry::begin(telemetry::Track::Request(7), "req:server", &[]);
//! telemetry::set_now(SimTime::ZERO + Duration::from_millis(9));
//! telemetry::end(telemetry::Track::Request(7), "req:server", &[]);
//! let trace = telemetry::take().unwrap();
//! assert_eq!(trace.events.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod summary;

use std::cell::RefCell;

use beehive_sim::{Duration, SimTime};

/// `true` when the crate was built with the `compile-off` feature and every
/// probe is an empty function.
pub const COMPILED_OFF: bool = cfg!(feature = "compile-off");

/// Which timeline an event belongs to. Tracks map to Chrome `pid`/`tid`
/// pairs in the exporter: one process per endpoint, one thread per request
/// or instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Track {
    /// The monolith server endpoint (GC, closure builds, admission).
    Server,
    /// One request, identified by its server-issued request id. Request
    /// spans (`req:*`, needs, fallbacks) live here.
    Request(u64),
    /// One FaaS instance (boot span, lifecycle, function-side GC).
    Instance(u32),
    /// The FaaS platform as a whole (acquire/expire/prewarm).
    Platform,
    /// The database endpoint (proxy rounds).
    Db,
    /// The simulation kernel itself (event-queue and pool-load counters).
    Sim,
}

/// One event argument value.
#[derive(Clone, Debug, PartialEq)]
pub enum Arg {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Static string (no allocation on the hot path).
    Str(&'static str),
}

impl From<bool> for Arg {
    fn from(v: bool) -> Arg {
        Arg::Bool(v)
    }
}
impl From<i64> for Arg {
    fn from(v: i64) -> Arg {
        Arg::Int(v)
    }
}
impl From<u64> for Arg {
    fn from(v: u64) -> Arg {
        Arg::UInt(v)
    }
}
impl From<u32> for Arg {
    fn from(v: u32) -> Arg {
        Arg::UInt(v as u64)
    }
}
impl From<usize> for Arg {
    fn from(v: usize) -> Arg {
        Arg::UInt(v as u64)
    }
}
impl From<f64> for Arg {
    fn from(v: f64) -> Arg {
        Arg::Float(v)
    }
}
impl From<&'static str> for Arg {
    fn from(v: &'static str) -> Arg {
        Arg::Str(v)
    }
}

/// The event kind (maps onto Chrome trace-event phases).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// Span open (`ph: "B"`).
    Begin,
    /// Span close (`ph: "E"`).
    End,
    /// Complete span of a known duration (`ph: "X"`).
    Complete(Duration),
    /// Instant event (`ph: "i"`).
    Instant,
    /// Counter sample (`ph: "C"`).
    Counter(i64),
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual time of the event (for [`EventKind::Complete`], the start).
    pub at: SimTime,
    /// The timeline it belongs to.
    pub track: Track,
    /// Event name. Static by construction: names are a closed vocabulary,
    /// and `&'static str` keeps the disabled path allocation-free.
    pub name: &'static str,
    /// The kind.
    pub kind: EventKind,
    /// Arguments (name/value pairs).
    pub args: Vec<(&'static str, Arg)>,
}

/// A finished recording: every event one simulation emitted, in emission
/// order (which is virtual-time order, since the driver advances the clock
/// monotonically).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// The events.
    pub events: Vec<TraceEvent>,
}

struct Recorder {
    now: SimTime,
    events: Vec<TraceEvent>,
}

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

#[inline]
fn with_recorder(f: impl FnOnce(&mut Recorder)) {
    if cfg!(feature = "compile-off") {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Arm the recording sink on the current thread (idempotent: re-installing
/// discards any previous buffer). Until this is called — or after [`take`] —
/// every probe is a no-op.
pub fn install() {
    if cfg!(feature = "compile-off") {
        return;
    }
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(Recorder {
            now: SimTime::ZERO,
            events: Vec::new(),
        });
    });
}

/// Disarm the sink and return what it recorded. `None` if no recorder was
/// installed on this thread (or the crate is compiled off).
pub fn take() -> Option<Trace> {
    if cfg!(feature = "compile-off") {
        return None;
    }
    RECORDER
        .with(|r| r.borrow_mut().take())
        .map(|rec| Trace { events: rec.events })
}

/// Visit the events recorded on this thread since index `from` (a
/// high-water mark from a previous call; start at 0) and return the new
/// mark. This is the second-consumer API: an online checker like
/// `beehive-sentinel` drains new events incrementally between simulation
/// events without disturbing the recording sink. Returns `from` unchanged
/// when no recorder is armed.
pub fn visit_from(from: usize, mut f: impl FnMut(&TraceEvent)) -> usize {
    if cfg!(feature = "compile-off") {
        return from;
    }
    RECORDER.with(|r| match r.borrow().as_ref() {
        Some(rec) => {
            for e in rec.events.iter().skip(from) {
                f(e);
            }
            rec.events.len()
        }
        None => from,
    })
}

/// `true` while a recorder is armed on this thread. Call sites that build
/// argument lists guard on this so the disabled path stays allocation-free.
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "compile-off") {
        return false;
    }
    RECORDER.with(|r| r.borrow().is_some())
}

/// Advance the recorder's virtual clock; subsequent events are stamped with
/// `now`. The driver calls this once per dispatched simulation event.
#[inline]
pub fn set_now(now: SimTime) {
    with_recorder(|rec| rec.now = now);
}

#[inline]
fn emit(track: Track, name: &'static str, kind: EventKind, args: &[(&'static str, Arg)]) {
    with_recorder(|rec| {
        let at = rec.now;
        rec.events.push(TraceEvent {
            at,
            track,
            name,
            kind,
            args: args.to_vec(),
        });
    });
}

/// Open a span on `track`.
#[inline]
pub fn begin(track: Track, name: &'static str, args: &[(&'static str, Arg)]) {
    emit(track, name, EventKind::Begin, args);
}

/// Close the innermost open span named `name` on `track`.
#[inline]
pub fn end(track: Track, name: &'static str, args: &[(&'static str, Arg)]) {
    emit(track, name, EventKind::End, args);
}

/// Record a complete span that started at the current virtual time and
/// lasted `dur` (e.g. a GC pause measured by the collector itself).
#[inline]
pub fn complete(track: Track, name: &'static str, dur: Duration, args: &[(&'static str, Arg)]) {
    emit(track, name, EventKind::Complete(dur), args);
}

/// Record an instant event.
#[inline]
pub fn instant(track: Track, name: &'static str, args: &[(&'static str, Arg)]) {
    emit(track, name, EventKind::Instant, args);
}

/// Record a counter sample.
#[inline]
pub fn counter(track: Track, name: &'static str, value: i64) {
    emit(track, name, EventKind::Counter(value), &[]);
}

// ---------------------------------------------------------------------------
// Log-scale histogram
// ---------------------------------------------------------------------------

/// A power-of-two (log₂) duration histogram: bucket `i` counts durations in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also takes zero). Sixty-four
/// buckets cover the whole `u64` nanosecond range, recording is a
/// leading-zeros instruction, and merging is element-wise — the shape the
/// summary exporter uses for per-phase latency distributions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; 64],
    total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: [0; 64],
            total: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(nanos: u64) -> usize {
        63 - (nanos | 1).leading_zeros() as usize
    }

    /// Record one duration.
    pub fn record(&mut self, d: Duration) {
        self.counts[Self::bucket(d.as_nanos())] += 1;
        self.total += 1;
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The upper bound (exclusive, in nanoseconds) of the bucket holding the
    /// `q`-quantile, or `None` when empty. A bucketed quantile: exact to
    /// within a factor of two, deterministic, and integer-valued — the form
    /// the golden summary files store.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
                return Some(Duration::from_nanos(bound));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_are_noops_without_a_recorder() {
        assert!(take().is_none());
        assert!(!enabled());
        begin(Track::Server, "x", &[]);
        instant(Track::Db, "y", &[("k", Arg::Int(1))]);
        counter(Track::Sim, "z", 3);
        assert!(take().is_none());
    }

    #[test]
    fn recorder_buffers_in_order_with_timestamps() {
        install();
        assert!(enabled());
        set_now(SimTime::ZERO + Duration::from_micros(5));
        begin(Track::Request(1), "req:server", &[]);
        complete(
            Track::Server,
            "gc",
            Duration::from_micros(2),
            &[("copied_bytes", Arg::UInt(128))],
        );
        set_now(SimTime::ZERO + Duration::from_micros(9));
        end(Track::Request(1), "req:server", &[]);
        let t = take().expect("recorder was installed");
        assert!(!enabled());
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.events[0].kind, EventKind::Begin);
        assert_eq!(t.events[0].at.as_nanos(), 5_000);
        assert_eq!(t.events[2].at.as_nanos(), 9_000);
        assert_eq!(t.events[1].args, vec![("copied_bytes", Arg::UInt(128))]);
    }

    #[test]
    fn visit_from_drains_incrementally_without_disturbing_the_sink() {
        assert_eq!(visit_from(0, |_| panic!("no recorder, no visits")), 0);
        install();
        instant(Track::Server, "a", &[]);
        instant(Track::Server, "b", &[]);
        let mut seen = Vec::new();
        let mark = visit_from(0, |e| seen.push(e.name));
        assert_eq!((mark, seen.as_slice()), (2, &["a", "b"][..]));
        instant(Track::Server, "c", &[]);
        let mut seen = Vec::new();
        let mark = visit_from(mark, |e| seen.push(e.name));
        assert_eq!((mark, seen.as_slice()), (3, &["c"][..]));
        assert_eq!(visit_from(mark, |_| panic!("nothing new")), 3);
        // The recorder still holds everything: visiting is read-only.
        let t = take().unwrap();
        assert_eq!(t.events.len(), 3);
    }

    #[test]
    fn reinstall_discards_previous_buffer() {
        install();
        instant(Track::Server, "a", &[]);
        install();
        instant(Track::Server, "b", &[]);
        let t = take().unwrap();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].name, "b");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile_upper_bound(0.5), None);
        for micros in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 10);
        // 9 of 10 samples sit in the bucket [512, 1024) holding 1000 ns.
        let p50 = h.quantile_upper_bound(0.5).unwrap().as_nanos();
        assert_eq!(p50, 1024);
        let p99 = h.quantile_upper_bound(0.99).unwrap().as_nanos();
        assert!(p99 >= 1_000_000, "p99 bound {p99}");
        let mut other = LogHistogram::new();
        other.record(Duration::ZERO);
        h.merge(&other);
        assert_eq!(h.count(), 11);
    }

    #[test]
    fn zero_duration_lands_in_bucket_zero() {
        assert_eq!(LogHistogram::bucket(0), 0);
        assert_eq!(LogHistogram::bucket(1), 0);
        assert_eq!(LogHistogram::bucket(2), 1);
        assert_eq!(LogHistogram::bucket(u64::MAX), 63);
    }
}
