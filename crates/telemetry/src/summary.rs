//! Per-request critical-path summary.
//!
//! Folds a trace down to the table the evaluation sections of the paper are
//! built from: where did each request's latency go (CPU, network, database,
//! fallbacks, synchronization), per scenario and for the slowest individual
//! requests. All durations are integer microseconds and all aggregates use
//! the log-scale [`LogHistogram`], so the rendered JSON is byte-stable — it
//! is what `scripts/verify.sh` diffs against a golden file.
//!
//! The per-request fold is exposed as [`request_timelines`]: one
//! [`RequestTimeline`] per request track, carrying the closed span
//! intervals, completes, and instants in recorded order. The summary
//! renders from timelines, and `beehive-insight` consumes the same
//! extraction to attribute every nanosecond of a request's latency to a
//! typed component — both views are guaranteed to read the trace the same
//! way because there is only one reader.

use std::collections::BTreeMap;
use std::collections::HashMap;

use beehive_sim::json::Json;
use beehive_sim::{Duration, SimTime};

use crate::{EventKind, LogHistogram, Trace, Track};

/// One closed `Begin`/`End` span on a request track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanInterval {
    /// Span name, e.g. `"wait:net"` or `"fallback:data"`.
    pub name: &'static str,
    /// Virtual time the span opened.
    pub begin: SimTime,
    /// Virtual time the span closed.
    pub end: SimTime,
}

impl SpanInterval {
    /// Wall (virtual) time the span covered.
    pub fn duration(&self) -> Duration {
        self.end.saturating_since(self.begin)
    }
}

/// Everything a trace recorded about one request, in recorded order.
///
/// Spans left open at the horizon are dropped (the request never finished
/// them); `End` events with no matching `Begin` are ignored, mirroring the
/// tolerance of the rendered summary.
#[derive(Clone, Debug)]
pub struct RequestTimeline {
    /// Request id (the server-issued rid stamped on the track).
    pub rid: u64,
    /// Session kind (`req:server` / `req:offload` / `req:shadow`), when the
    /// request track carried one.
    pub kind: Option<&'static str>,
    /// Virtual time the session span opened.
    pub start: SimTime,
    /// Virtual time the session span closed; `None` while in flight.
    pub end: Option<SimTime>,
    /// Closed sub-spans, in close order.
    pub spans: Vec<SpanInterval>,
    /// `Complete` events: `(name, start, duration)`.
    pub completes: Vec<(&'static str, SimTime, Duration)>,
    /// `Instant` events: `(name, at)`.
    pub instants: Vec<(&'static str, SimTime)>,
}

impl RequestTimeline {
    fn new(rid: u64) -> Self {
        RequestTimeline {
            rid,
            kind: None,
            start: SimTime::ZERO,
            end: None,
            spans: Vec::new(),
            completes: Vec::new(),
            instants: Vec::new(),
        }
    }

    /// End-to-end latency of the session span; `None` while in flight.
    pub fn latency(&self) -> Option<Duration> {
        self.end.map(|end| end.saturating_since(self.start))
    }

    /// Phase table: `name -> (count, total nanoseconds)`. Spans and
    /// completes contribute their durations; instants count with zero time.
    pub fn phases(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let mut phases: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = phases.entry(s.name).or_default();
            e.0 += 1;
            e.1 += s.duration().as_nanos();
        }
        for (name, _, d) in &self.completes {
            let e = phases.entry(name).or_default();
            e.0 += 1;
            e.1 += d.as_nanos();
        }
        for (name, _) in &self.instants {
            phases.entry(name).or_default().0 += 1;
        }
        phases
    }
}

/// Extract one [`RequestTimeline`] per request track, sorted by request id.
///
/// This is the single reader of request tracks: the rendered summary and
/// the insight attribution engine both build on it, so they cannot drift in
/// how they interpret a trace.
pub fn request_timelines(trace: &Trace) -> Vec<RequestTimeline> {
    let mut reqs: HashMap<u64, RequestTimeline> = HashMap::new();
    let mut open: HashMap<u64, Vec<(&'static str, SimTime)>> = HashMap::new();
    for e in &trace.events {
        let Track::Request(rid) = e.track else {
            continue;
        };
        let r = reqs.entry(rid).or_insert_with(|| RequestTimeline::new(rid));
        match e.kind {
            EventKind::Begin if e.name.starts_with("req:") => {
                r.kind = Some(e.name);
                r.start = e.at;
            }
            EventKind::End if e.name.starts_with("req:") => {
                r.end = Some(e.at);
            }
            EventKind::Begin => open.entry(rid).or_default().push((e.name, e.at)),
            EventKind::End => {
                if let Some(stack) = open.get_mut(&rid) {
                    if let Some(pos) = stack.iter().rposition(|(n, _)| *n == e.name) {
                        let (name, began) = stack.remove(pos);
                        r.spans.push(SpanInterval {
                            name,
                            begin: began,
                            end: e.at,
                        });
                    }
                }
            }
            EventKind::Complete(d) => r.completes.push((e.name, e.at, d)),
            EventKind::Instant => r.instants.push((e.name, e.at)),
            EventKind::Counter(_) => {}
        }
    }
    let mut timelines: Vec<RequestTimeline> = reqs.into_values().collect();
    timelines.sort_by_key(|r| r.rid);
    timelines
}

#[derive(Default)]
struct PhaseAgg {
    count: u64,
    total_nanos: u64,
    hist: LogHistogram,
}

impl PhaseAgg {
    fn add(&mut self, d: Duration) {
        self.count += 1;
        self.total_nanos += d.as_nanos();
        self.hist.record(d);
    }

    fn tick(&mut self) {
        self.count += 1;
    }
}

fn us(nanos: u64) -> Json {
    Json::Int((nanos / 1_000) as i128)
}

fn hist_quantiles(h: &LogHistogram) -> Vec<(String, Json)> {
    let q = |p: f64| {
        h.quantile_upper_bound(p)
            .map_or(Json::Null, |d| us(d.as_nanos()))
    };
    vec![("p50_us".into(), q(0.5)), ("p99_us".into(), q(0.99))]
}

/// Summarize labelled traces into one critical-path document:
///
/// ```text
/// {"scenarios": [{"label", "requests", "phases", "endpoint_events", "slowest"}, ...]}
/// ```
///
/// * `requests` — completed request counts and latency quantiles per session
///   kind (`req:server` / `req:offload` / `req:shadow`),
/// * `phases` — request-track spans aggregated by name (where the time of
///   all requests went),
/// * `endpoint_events` — server/instance/platform/db events (GC pauses,
///   boots, proxy rounds) aggregated by name,
/// * `slowest` — the slowest completed requests with their own breakdown.
pub fn critical_path(scenarios: &[(String, Trace)]) -> Json {
    critical_path_with(scenarios, &|_| None)
}

/// [`critical_path`] with a per-scenario extension hook: when `extras`
/// returns a value for a scenario label, it is appended to that scenario's
/// object under a `"hottest"` key. `repro --profile` uses this to surface
/// the top methods per request lane next to the phase breakdown; plain
/// traced runs (`extras` always `None`) render byte-identically to
/// [`critical_path`].
pub fn critical_path_with(
    scenarios: &[(String, Trace)],
    extras: &dyn Fn(&str) -> Option<Json>,
) -> Json {
    let rendered: Vec<Json> = scenarios
        .iter()
        .map(|(label, trace)| {
            let mut doc = scenario_summary(label, trace);
            if let (Json::Obj(fields), Some(extra)) = (&mut doc, extras(label)) {
                fields.push(("hottest".into(), extra));
            }
            doc
        })
        .collect();
    Json::obj([("scenarios".into(), Json::Arr(rendered))])
}

fn scenario_summary(label: &str, trace: &Trace) -> Json {
    let timelines = request_timelines(trace);

    // Phase aggregates across all requests.
    let mut phase_aggs: BTreeMap<&'static str, PhaseAgg> = BTreeMap::new();
    for t in &timelines {
        for s in &t.spans {
            phase_aggs.entry(s.name).or_default().add(s.duration());
        }
        for (name, _, d) in &t.completes {
            phase_aggs.entry(name).or_default().add(*d);
        }
        for (name, _) in &t.instants {
            phase_aggs.entry(name).or_default().tick();
        }
    }

    // Open B/E spans on non-request tracks (e.g. instance boot spans).
    let mut open_endpoint: HashMap<(Track, &'static str), Vec<SimTime>> = HashMap::new();
    let mut endpoint_aggs: BTreeMap<&'static str, PhaseAgg> = BTreeMap::new();
    for e in &trace.events {
        if matches!(e.track, Track::Request(_)) {
            continue;
        }
        match e.kind {
            EventKind::Begin => open_endpoint
                .entry((e.track, e.name))
                .or_default()
                .push(e.at),
            EventKind::End => {
                if let Some(stack) = open_endpoint.get_mut(&(e.track, e.name)) {
                    if let Some(began) = stack.pop() {
                        endpoint_aggs
                            .entry(e.name)
                            .or_default()
                            .add(e.at.saturating_since(began));
                    }
                }
            }
            EventKind::Complete(d) => endpoint_aggs.entry(e.name).or_default().add(d),
            EventKind::Instant => endpoint_aggs.entry(e.name).or_default().tick(),
            EventKind::Counter(_) => {}
        }
    }

    // Completed requests by session kind.
    let mut by_kind: BTreeMap<&'static str, (u64, LogHistogram)> = BTreeMap::new();
    let mut completed: Vec<(u64, &RequestTimeline, u64)> = Vec::new(); // (rid, timeline, latency)
    for t in &timelines {
        let (Some(kind), Some(latency)) = (t.kind, t.latency()) else {
            continue;
        };
        let e = by_kind.entry(kind).or_default();
        e.0 += 1;
        e.1.record(latency);
        completed.push((t.rid, t, latency.as_nanos()));
    }
    completed.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    completed.truncate(8);

    let requests = Json::Obj(
        by_kind
            .iter()
            .map(|(kind, (count, hist))| {
                let mut fields = vec![("count".into(), Json::Int(*count as i128))];
                fields.extend(hist_quantiles(hist));
                ((*kind).to_string(), Json::Obj(fields))
            })
            .collect(),
    );

    let agg_json = |aggs: &BTreeMap<&'static str, PhaseAgg>| {
        Json::Arr(
            aggs.iter()
                .map(|(name, a)| {
                    let mut fields = vec![
                        ("name".into(), Json::from(*name)),
                        ("count".into(), Json::Int(a.count as i128)),
                        ("total_us".into(), us(a.total_nanos)),
                    ];
                    if !a.hist.is_empty() {
                        fields.extend(hist_quantiles(&a.hist));
                    }
                    Json::Obj(fields)
                })
                .collect(),
        )
    };

    let slowest = Json::Arr(
        completed
            .iter()
            .map(|(rid, t, latency)| {
                let mut phases: Vec<(&'static str, (u64, u64))> =
                    t.phases().iter().map(|(n, v)| (*n, *v)).collect();
                phases.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
                Json::obj([
                    ("request".into(), Json::Int(*rid as i128)),
                    (
                        "kind".into(),
                        Json::from(t.kind.expect("completed requests have a kind")),
                    ),
                    ("total_us".into(), us(*latency)),
                    (
                        "phases".into(),
                        Json::Arr(
                            phases
                                .iter()
                                .map(|(n, (c, nanos))| {
                                    Json::obj([
                                        ("name".into(), Json::from(*n)),
                                        ("count".into(), Json::Int(*c as i128)),
                                        ("total_us".into(), us(*nanos)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );

    Json::obj([
        ("label".into(), Json::from(label)),
        ("requests".into(), requests),
        ("phases".into(), agg_json(&phase_aggs)),
        ("endpoint_events".into(), agg_json(&endpoint_aggs)),
        ("slowest".into(), slowest),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Arg, TraceEvent};

    fn at(us: u64) -> SimTime {
        SimTime::ZERO + Duration::from_micros(us)
    }

    fn ev(t: u64, track: Track, name: &'static str, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: at(t),
            track,
            name,
            kind,
            args: vec![],
        }
    }

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                ev(0, Track::Request(1), "req:offload", EventKind::Begin),
                ev(0, Track::Request(1), "net", EventKind::Begin),
                ev(5, Track::Request(1), "net", EventKind::End),
                ev(5, Track::Request(1), "fallback:data", EventKind::Begin),
                ev(9, Track::Request(1), "fallback:data", EventKind::End),
                ev(
                    9,
                    Track::Instance(0),
                    "gc",
                    EventKind::Complete(Duration::from_micros(2)),
                ),
                ev(12, Track::Request(1), "req:offload", EventKind::End),
                ev(1, Track::Request(2), "req:server", EventKind::Begin),
                ev(3, Track::Request(2), "req:server", EventKind::End),
                // In flight at the horizon: excluded from request stats.
                ev(2, Track::Request(3), "req:server", EventKind::Begin),
                ev(2, Track::Db, "db:execute", EventKind::Instant),
            ],
        }
    }

    #[test]
    fn summarizes_requests_phases_and_endpoints() {
        let doc = critical_path(&[("s".into(), sample_trace())]);
        let rendered = doc.render();
        assert!(rendered.contains("\"label\":\"s\""));
        // Two completed requests, one per kind.
        assert!(rendered.contains("\"req:offload\":{\"count\":1"));
        assert!(rendered.contains("\"req:server\":{\"count\":1"));
        // The fallback span measured 4 µs.
        assert!(
            rendered.contains("{\"name\":\"fallback:data\",\"count\":1,\"total_us\":4"),
            "{rendered}"
        );
        // Endpoint events carry the GC pause and the DB instant.
        assert!(rendered.contains("{\"name\":\"db:execute\",\"count\":1,\"total_us\":0}"));
        assert!(rendered.contains("\"name\":\"gc\",\"count\":1,\"total_us\":2"));
        // Slowest list leads with the 12 µs offload request.
        assert!(rendered.contains("\"request\":1,\"kind\":\"req:offload\",\"total_us\":12"));
    }

    #[test]
    fn deterministic_rendering() {
        let a = critical_path(&[("s".into(), sample_trace())]).render();
        let b = critical_path(&[("s".into(), sample_trace())]).render();
        assert_eq!(a, b);
    }

    #[test]
    fn round_trips_through_the_parser() {
        let s = critical_path(&[("s".into(), sample_trace())]).render();
        let parsed = Json::parse(&s).expect("summary must be valid JSON");
        assert_eq!(parsed.render(), s);
    }

    #[test]
    fn extras_hook_appends_hottest_and_none_is_identity() {
        let plain = critical_path(&[("s".into(), sample_trace())]).render();
        let none = critical_path_with(&[("s".into(), sample_trace())], &|_| None).render();
        assert_eq!(plain, none, "a None hook must not change the rendering");
        let with = critical_path_with(&[("s".into(), sample_trace())], &|label| {
            assert_eq!(label, "s");
            Some(Json::from("tables"))
        })
        .render();
        assert!(with.contains("\"hottest\":\"tables\""), "{with}");
    }

    #[test]
    fn args_do_not_affect_summaries() {
        let mut t = sample_trace();
        for e in &mut t.events {
            e.args.push(("k", Arg::Int(1)));
        }
        assert_eq!(
            critical_path(&[("s".into(), t)]).render(),
            critical_path(&[("s".into(), sample_trace())]).render()
        );
    }

    #[test]
    fn timelines_expose_spans_completes_and_instants() {
        let timelines = request_timelines(&sample_trace());
        assert_eq!(timelines.len(), 3, "one timeline per request track");
        assert_eq!(timelines[0].rid, 1);
        assert_eq!(timelines[0].kind, Some("req:offload"));
        assert_eq!(timelines[0].latency(), Some(Duration::from_micros(12)));
        assert_eq!(
            timelines[0].spans,
            vec![
                SpanInterval {
                    name: "net",
                    begin: at(0),
                    end: at(5)
                },
                SpanInterval {
                    name: "fallback:data",
                    begin: at(5),
                    end: at(9)
                },
            ]
        );
        // Request 3 never completed: kind is known, latency is not.
        assert_eq!(timelines[2].rid, 3);
        assert_eq!(timelines[2].kind, Some("req:server"));
        assert_eq!(timelines[2].latency(), None);
    }

    #[test]
    fn request_with_zero_recorded_phases_summarizes_cleanly() {
        // A bare session span — no sub-spans, completes, or instants — is a
        // legal trace (e.g. a server request that never waited on anything).
        let t = Trace {
            events: vec![
                ev(4, Track::Request(9), "req:server", EventKind::Begin),
                ev(7, Track::Request(9), "req:server", EventKind::End),
            ],
        };
        let timelines = request_timelines(&t);
        assert_eq!(timelines.len(), 1);
        assert!(timelines[0].phases().is_empty());
        assert_eq!(timelines[0].latency(), Some(Duration::from_micros(3)));
        let rendered = critical_path(&[("s".into(), t)]).render();
        // The request counts and appears in the slowest list with an empty
        // phase breakdown.
        assert!(
            rendered.contains("\"req:server\":{\"count\":1"),
            "{rendered}"
        );
        assert!(
            rendered.contains("\"request\":9,\"kind\":\"req:server\",\"total_us\":3,\"phases\":[]"),
            "{rendered}"
        );
    }

    #[test]
    fn slowest_k_ties_break_by_request_id_regardless_of_event_order() {
        // Twelve requests, all with identical 5 µs latencies: the slowest-8
        // list must keep the lowest request ids in ascending order, and the
        // rendering must not depend on the order request tracks appear in
        // the trace (requests land in a HashMap before the final sort).
        let mut forward = Vec::new();
        for rid in 0..12u64 {
            forward.push(ev(rid, Track::Request(rid), "req:server", EventKind::Begin));
            forward.push(ev(
                rid + 5,
                Track::Request(rid),
                "req:server",
                EventKind::End,
            ));
        }
        let mut backward = Vec::new();
        for rid in (0..12u64).rev() {
            backward.push(ev(rid, Track::Request(rid), "req:server", EventKind::Begin));
            backward.push(ev(
                rid + 5,
                Track::Request(rid),
                "req:server",
                EventKind::End,
            ));
        }
        let a = critical_path(&[("s".into(), Trace { events: forward })]).render();
        let b = critical_path(&[("s".into(), Trace { events: backward })]).render();
        assert_eq!(a, b, "interleaving must not change the slowest list");
        // Lowest ids win the tie, in ascending order.
        for rid in 0..8 {
            assert!(a.contains(&format!("\"request\":{rid},")), "{a}");
        }
        assert!(!a.contains("\"request\":8,"), "{a}");
        let r0 = a.find("\"request\":0,").unwrap();
        let r7 = a.find("\"request\":7,").unwrap();
        assert!(r0 < r7, "ties must render in ascending request id");
    }
}
