//! Per-request critical-path summary.
//!
//! Folds a trace down to the table the evaluation sections of the paper are
//! built from: where did each request's latency go (CPU, network, database,
//! fallbacks, synchronization), per scenario and for the slowest individual
//! requests. All durations are integer microseconds and all aggregates use
//! the log-scale [`LogHistogram`], so the rendered JSON is byte-stable — it
//! is what `scripts/verify.sh` diffs against a golden file.

use std::collections::BTreeMap;
use std::collections::HashMap;

use beehive_sim::json::Json;
use beehive_sim::{Duration, SimTime};

use crate::{EventKind, LogHistogram, Trace, Track};

#[derive(Default)]
struct PhaseAgg {
    count: u64,
    total_nanos: u64,
    hist: LogHistogram,
}

impl PhaseAgg {
    fn add(&mut self, d: Duration) {
        self.count += 1;
        self.total_nanos += d.as_nanos();
        self.hist.record(d);
    }

    fn tick(&mut self) {
        self.count += 1;
    }
}

#[derive(Default)]
struct ReqState {
    kind: Option<&'static str>,
    start: SimTime,
    end: Option<SimTime>,
    open: Vec<(&'static str, SimTime)>,
    phases: BTreeMap<&'static str, (u64, u64)>, // name -> (count, nanos)
}

fn us(nanos: u64) -> Json {
    Json::Int((nanos / 1_000) as i128)
}

fn hist_quantiles(h: &LogHistogram) -> Vec<(String, Json)> {
    let q = |p: f64| {
        h.quantile_upper_bound(p)
            .map_or(Json::Null, |d| us(d.as_nanos()))
    };
    vec![("p50_us".into(), q(0.5)), ("p99_us".into(), q(0.99))]
}

/// Summarize labelled traces into one critical-path document:
///
/// ```text
/// {"scenarios": [{"label", "requests", "phases", "endpoint_events", "slowest"}, ...]}
/// ```
///
/// * `requests` — completed request counts and latency quantiles per session
///   kind (`req:server` / `req:offload` / `req:shadow`),
/// * `phases` — request-track spans aggregated by name (where the time of
///   all requests went),
/// * `endpoint_events` — server/instance/platform/db events (GC pauses,
///   boots, proxy rounds) aggregated by name,
/// * `slowest` — the slowest completed requests with their own breakdown.
pub fn critical_path(scenarios: &[(String, Trace)]) -> Json {
    critical_path_with(scenarios, &|_| None)
}

/// [`critical_path`] with a per-scenario extension hook: when `extras`
/// returns a value for a scenario label, it is appended to that scenario's
/// object under a `"hottest"` key. `repro --profile` uses this to surface
/// the top methods per request lane next to the phase breakdown; plain
/// traced runs (`extras` always `None`) render byte-identically to
/// [`critical_path`].
pub fn critical_path_with(
    scenarios: &[(String, Trace)],
    extras: &dyn Fn(&str) -> Option<Json>,
) -> Json {
    let rendered: Vec<Json> = scenarios
        .iter()
        .map(|(label, trace)| {
            let mut doc = scenario_summary(label, trace);
            if let (Json::Obj(fields), Some(extra)) = (&mut doc, extras(label)) {
                fields.push(("hottest".into(), extra));
            }
            doc
        })
        .collect();
    Json::obj([("scenarios".into(), Json::Arr(rendered))])
}

fn scenario_summary(label: &str, trace: &Trace) -> Json {
    let mut reqs: HashMap<u64, ReqState> = HashMap::new();
    let mut phase_aggs: BTreeMap<&'static str, PhaseAgg> = BTreeMap::new();
    // Open B/E spans on non-request tracks (e.g. instance boot spans).
    let mut open_endpoint: HashMap<(Track, &'static str), Vec<SimTime>> = HashMap::new();
    let mut endpoint_aggs: BTreeMap<&'static str, PhaseAgg> = BTreeMap::new();

    for e in &trace.events {
        match e.track {
            Track::Request(rid) => {
                let r = reqs.entry(rid).or_default();
                match e.kind {
                    EventKind::Begin if e.name.starts_with("req:") => {
                        r.kind = Some(e.name);
                        r.start = e.at;
                    }
                    EventKind::End if e.name.starts_with("req:") => {
                        r.end = Some(e.at);
                    }
                    EventKind::Begin => r.open.push((e.name, e.at)),
                    EventKind::End => {
                        if let Some(pos) = r.open.iter().rposition(|(n, _)| *n == e.name) {
                            let (_, began) = r.open.remove(pos);
                            let d = e.at.saturating_since(began);
                            let entry = r.phases.entry(e.name).or_default();
                            entry.0 += 1;
                            entry.1 += d.as_nanos();
                            phase_aggs.entry(e.name).or_default().add(d);
                        }
                    }
                    EventKind::Complete(d) => {
                        let entry = r.phases.entry(e.name).or_default();
                        entry.0 += 1;
                        entry.1 += d.as_nanos();
                        phase_aggs.entry(e.name).or_default().add(d);
                    }
                    EventKind::Instant => {
                        r.phases.entry(e.name).or_default().0 += 1;
                        phase_aggs.entry(e.name).or_default().tick();
                    }
                    EventKind::Counter(_) => {}
                }
            }
            _ => match e.kind {
                EventKind::Begin => open_endpoint
                    .entry((e.track, e.name))
                    .or_default()
                    .push(e.at),
                EventKind::End => {
                    if let Some(stack) = open_endpoint.get_mut(&(e.track, e.name)) {
                        if let Some(began) = stack.pop() {
                            endpoint_aggs
                                .entry(e.name)
                                .or_default()
                                .add(e.at.saturating_since(began));
                        }
                    }
                }
                EventKind::Complete(d) => endpoint_aggs.entry(e.name).or_default().add(d),
                EventKind::Instant => endpoint_aggs.entry(e.name).or_default().tick(),
                EventKind::Counter(_) => {}
            },
        }
    }

    // Completed requests by session kind.
    let mut by_kind: BTreeMap<&'static str, (u64, LogHistogram)> = BTreeMap::new();
    let mut completed: Vec<(u64, &ReqState, u64)> = Vec::new(); // (rid, state, latency)
    for (&rid, r) in &reqs {
        let (Some(kind), Some(end)) = (r.kind, r.end) else {
            continue;
        };
        let latency = end.saturating_since(r.start);
        let e = by_kind.entry(kind).or_default();
        e.0 += 1;
        e.1.record(latency);
        completed.push((rid, r, latency.as_nanos()));
    }
    completed.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    completed.truncate(8);

    let requests = Json::Obj(
        by_kind
            .iter()
            .map(|(kind, (count, hist))| {
                let mut fields = vec![("count".into(), Json::Int(*count as i128))];
                fields.extend(hist_quantiles(hist));
                ((*kind).to_string(), Json::Obj(fields))
            })
            .collect(),
    );

    let agg_json = |aggs: &BTreeMap<&'static str, PhaseAgg>| {
        Json::Arr(
            aggs.iter()
                .map(|(name, a)| {
                    let mut fields = vec![
                        ("name".into(), Json::from(*name)),
                        ("count".into(), Json::Int(a.count as i128)),
                        ("total_us".into(), us(a.total_nanos)),
                    ];
                    if !a.hist.is_empty() {
                        fields.extend(hist_quantiles(&a.hist));
                    }
                    Json::Obj(fields)
                })
                .collect(),
        )
    };

    let slowest = Json::Arr(
        completed
            .iter()
            .map(|(rid, r, latency)| {
                let mut phases: Vec<(&'static str, (u64, u64))> =
                    r.phases.iter().map(|(n, v)| (*n, *v)).collect();
                phases.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
                Json::obj([
                    ("request".into(), Json::Int(*rid as i128)),
                    (
                        "kind".into(),
                        Json::from(r.kind.expect("completed requests have a kind")),
                    ),
                    ("total_us".into(), us(*latency)),
                    (
                        "phases".into(),
                        Json::Arr(
                            phases
                                .iter()
                                .map(|(n, (c, nanos))| {
                                    Json::obj([
                                        ("name".into(), Json::from(*n)),
                                        ("count".into(), Json::Int(*c as i128)),
                                        ("total_us".into(), us(*nanos)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );

    Json::obj([
        ("label".into(), Json::from(label)),
        ("requests".into(), requests),
        ("phases".into(), agg_json(&phase_aggs)),
        ("endpoint_events".into(), agg_json(&endpoint_aggs)),
        ("slowest".into(), slowest),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Arg, TraceEvent};

    fn at(us: u64) -> SimTime {
        SimTime::ZERO + Duration::from_micros(us)
    }

    fn ev(t: u64, track: Track, name: &'static str, kind: EventKind) -> TraceEvent {
        TraceEvent {
            at: at(t),
            track,
            name,
            kind,
            args: vec![],
        }
    }

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                ev(0, Track::Request(1), "req:offload", EventKind::Begin),
                ev(0, Track::Request(1), "net", EventKind::Begin),
                ev(5, Track::Request(1), "net", EventKind::End),
                ev(5, Track::Request(1), "fallback:data", EventKind::Begin),
                ev(9, Track::Request(1), "fallback:data", EventKind::End),
                ev(
                    9,
                    Track::Instance(0),
                    "gc",
                    EventKind::Complete(Duration::from_micros(2)),
                ),
                ev(12, Track::Request(1), "req:offload", EventKind::End),
                ev(1, Track::Request(2), "req:server", EventKind::Begin),
                ev(3, Track::Request(2), "req:server", EventKind::End),
                // In flight at the horizon: excluded from request stats.
                ev(2, Track::Request(3), "req:server", EventKind::Begin),
                ev(2, Track::Db, "db:execute", EventKind::Instant),
            ],
        }
    }

    #[test]
    fn summarizes_requests_phases_and_endpoints() {
        let doc = critical_path(&[("s".into(), sample_trace())]);
        let rendered = doc.render();
        assert!(rendered.contains("\"label\":\"s\""));
        // Two completed requests, one per kind.
        assert!(rendered.contains("\"req:offload\":{\"count\":1"));
        assert!(rendered.contains("\"req:server\":{\"count\":1"));
        // The fallback span measured 4 µs.
        assert!(
            rendered.contains("{\"name\":\"fallback:data\",\"count\":1,\"total_us\":4"),
            "{rendered}"
        );
        // Endpoint events carry the GC pause and the DB instant.
        assert!(rendered.contains("{\"name\":\"db:execute\",\"count\":1,\"total_us\":0}"));
        assert!(rendered.contains("\"name\":\"gc\",\"count\":1,\"total_us\":2"));
        // Slowest list leads with the 12 µs offload request.
        assert!(rendered.contains("\"request\":1,\"kind\":\"req:offload\",\"total_us\":12"));
    }

    #[test]
    fn deterministic_rendering() {
        let a = critical_path(&[("s".into(), sample_trace())]).render();
        let b = critical_path(&[("s".into(), sample_trace())]).render();
        assert_eq!(a, b);
    }

    #[test]
    fn round_trips_through_the_parser() {
        let s = critical_path(&[("s".into(), sample_trace())]).render();
        let parsed = Json::parse(&s).expect("summary must be valid JSON");
        assert_eq!(parsed.render(), s);
    }

    #[test]
    fn extras_hook_appends_hottest_and_none_is_identity() {
        let plain = critical_path(&[("s".into(), sample_trace())]).render();
        let none = critical_path_with(&[("s".into(), sample_trace())], &|_| None).render();
        assert_eq!(plain, none, "a None hook must not change the rendering");
        let with = critical_path_with(&[("s".into(), sample_trace())], &|label| {
            assert_eq!(label, "s");
            Some(Json::from("tables"))
        })
        .render();
        assert!(with.contains("\"hottest\":\"tables\""), "{with}");
    }

    #[test]
    fn args_do_not_affect_summaries() {
        let mut t = sample_trace();
        for e in &mut t.events {
            e.args.push(("k", Arg::Int(1)));
        }
        assert_eq!(
            critical_path(&[("s".into(), t)]).render(),
            critical_path(&[("s".into(), sample_trace())]).render()
        );
    }
}
