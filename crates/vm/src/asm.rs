//! A tiny bytecode assembler with label patching, used by tests and the
//! evaluation applications.

use crate::ids::{ClassId, MethodId, NativeId, StaticSlot, StubId};
use crate::op::Op;

/// A forward-jump label returned by the `*_fwd` methods; resolve it with
/// [`Asm::bind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "bind the label or the jump stays dangling"]
pub struct Label(usize);

/// Builds a method body instruction by instruction.
///
/// # Example
///
/// ```
/// use beehive_vm::Asm;
///
/// let mut a = Asm::new();
/// // return arg0 < 10 ? 1 : 0
/// a.load(0).const_i(10).cmp_lt().return_val();
/// let code = a.finish();
/// assert_eq!(code.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    ops: Vec<Op>,
    open_labels: usize,
}

impl Asm {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current instruction index (use with [`Asm::jump_back`]).
    pub fn here(&self) -> usize {
        self.ops.len()
    }

    fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Push a constant.
    pub fn const_i(&mut self, x: i64) -> &mut Self {
        self.push(Op::ConstI(x))
    }

    /// Push null.
    pub fn const_null(&mut self) -> &mut Self {
        self.push(Op::ConstNull)
    }

    /// Push local `slot`.
    pub fn load(&mut self, slot: u8) -> &mut Self {
        self.push(Op::Load(slot))
    }

    /// Pop into local `slot`.
    pub fn store(&mut self, slot: u8) -> &mut Self {
        self.push(Op::Store(slot))
    }

    /// Duplicate top of stack.
    pub fn dup(&mut self) -> &mut Self {
        self.push(Op::Dup)
    }

    /// Discard top of stack.
    pub fn pop(&mut self) -> &mut Self {
        self.push(Op::Pop)
    }

    /// Addition.
    pub fn add(&mut self) -> &mut Self {
        self.push(Op::Add)
    }

    /// Subtraction.
    pub fn sub(&mut self) -> &mut Self {
        self.push(Op::Sub)
    }

    /// Multiplication.
    pub fn mul(&mut self) -> &mut Self {
        self.push(Op::Mul)
    }

    /// Division.
    pub fn div(&mut self) -> &mut Self {
        self.push(Op::Div)
    }

    /// Remainder.
    pub fn rem(&mut self) -> &mut Self {
        self.push(Op::Rem)
    }

    /// Less-than comparison.
    pub fn cmp_lt(&mut self) -> &mut Self {
        self.push(Op::CmpLt)
    }

    /// Equality comparison.
    pub fn cmp_eq(&mut self) -> &mut Self {
        self.push(Op::CmpEq)
    }

    /// Backward jump to an index previously captured with [`Asm::here`].
    ///
    /// # Panics
    ///
    /// Panics if `target` is in the future (use a forward label instead).
    pub fn jump_back(&mut self, target: usize) -> &mut Self {
        assert!(target <= self.ops.len(), "jump_back into the future");
        self.push(Op::Jump(target as u32))
    }

    /// Forward unconditional jump; bind the label later.
    pub fn jump_fwd(&mut self) -> Label {
        let l = Label(self.ops.len());
        self.ops.push(Op::Jump(u32::MAX));
        self.open_labels += 1;
        l
    }

    /// Forward jump-if-zero; bind the label later.
    pub fn jump_if_zero_fwd(&mut self) -> Label {
        let l = Label(self.ops.len());
        self.ops.push(Op::JumpIfZero(u32::MAX));
        self.open_labels += 1;
        l
    }

    /// Forward jump-if-non-zero; bind the label later.
    pub fn jump_if_nonzero_fwd(&mut self) -> Label {
        let l = Label(self.ops.len());
        self.ops.push(Op::JumpIfNonZero(u32::MAX));
        self.open_labels += 1;
        l
    }

    /// Backward conditional jump-if-non-zero to a captured index.
    pub fn jump_if_nonzero_back(&mut self, target: usize) -> &mut Self {
        assert!(target <= self.ops.len(), "jump into the future");
        self.push(Op::JumpIfNonZero(target as u32))
    }

    /// Resolve a forward label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let target = self.ops.len() as u32;
        let patched = match &mut self.ops[label.0] {
            Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNonZero(t) if *t == u32::MAX => {
                *t = target;
                true
            }
            _ => false,
        };
        assert!(patched, "label {label:?} already bound or not a jump");
        self.open_labels -= 1;
        self
    }

    /// Direct call.
    pub fn call(&mut self, m: MethodId) -> &mut Self {
        self.push(Op::Call(m))
    }

    /// Stub (interceptor) call; selector must be on the stack.
    pub fn call_stub(&mut self, s: StubId) -> &mut Self {
        self.push(Op::CallStub(s))
    }

    /// Void return.
    pub fn return_void(&mut self) -> &mut Self {
        self.push(Op::Return)
    }

    /// Value return.
    pub fn return_val(&mut self) -> &mut Self {
        self.push(Op::ReturnVal)
    }

    /// Allocate an object.
    pub fn new_obj(&mut self, c: ClassId) -> &mut Self {
        self.push(Op::New(c))
    }

    /// Allocate an array (length on stack).
    pub fn new_array(&mut self) -> &mut Self {
        self.push(Op::NewArray)
    }

    /// Read a field.
    pub fn get_field(&mut self, slot: u16) -> &mut Self {
        self.push(Op::GetField(slot))
    }

    /// Write a field.
    pub fn put_field(&mut self, slot: u16) -> &mut Self {
        self.push(Op::PutField(slot))
    }

    /// Array element load.
    pub fn arr_load(&mut self) -> &mut Self {
        self.push(Op::ArrLoad)
    }

    /// Array element store.
    pub fn arr_store(&mut self) -> &mut Self {
        self.push(Op::ArrStore)
    }

    /// Array length.
    pub fn arr_len(&mut self) -> &mut Self {
        self.push(Op::ArrLen)
    }

    /// Static read.
    pub fn get_static(&mut self, s: StaticSlot) -> &mut Self {
        self.push(Op::GetStatic(s))
    }

    /// Static write.
    pub fn put_static(&mut self, s: StaticSlot) -> &mut Self {
        self.push(Op::PutStatic(s))
    }

    /// Volatile static read (synchronization point).
    pub fn get_static_volatile(&mut self, s: StaticSlot) -> &mut Self {
        self.push(Op::GetStaticVolatile(s))
    }

    /// Volatile static write (synchronization point).
    pub fn put_static_volatile(&mut self, s: StaticSlot) -> &mut Self {
        self.push(Op::PutStaticVolatile(s))
    }

    /// Monitor acquire (object on stack).
    pub fn monitor_enter(&mut self) -> &mut Self {
        self.push(Op::MonitorEnter)
    }

    /// Monitor release (object on stack).
    pub fn monitor_exit(&mut self) -> &mut Self {
        self.push(Op::MonitorExit)
    }

    /// Native invocation.
    pub fn native(&mut self, n: NativeId) -> &mut Self {
        self.push(Op::NativeCall(n))
    }

    /// Pure CPU work of `nanos` nanoseconds.
    pub fn work(&mut self, nanos: u32) -> &mut Self {
        self.push(Op::Work(nanos))
    }

    /// Database round trip (connection in local `conn`, argument on stack).
    pub fn db_call(&mut self, conn: u8, query: u16) -> &mut Self {
        self.push(Op::DbCall { conn, query })
    }

    /// Emit `body` `n` times (loop unrolling for bulk native invocations).
    pub fn repeat(&mut self, n: usize, body: impl Fn(&mut Asm)) -> &mut Self {
        for _ in 0..n {
            body(self);
        }
        self
    }

    /// Finish, returning the instruction vector.
    ///
    /// # Panics
    ///
    /// Panics if any forward label is still unbound.
    pub fn finish(self) -> Vec<Op> {
        assert_eq!(self.open_labels, 0, "unbound forward labels remain");
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_labels_patch() {
        let mut a = Asm::new();
        a.const_i(0);
        let l = a.jump_if_zero_fwd();
        a.const_i(111);
        a.bind(l);
        a.const_i(222).return_val();
        let code = a.finish();
        assert_eq!(code[1], Op::JumpIfZero(3));
    }

    #[test]
    #[should_panic(expected = "unbound forward labels")]
    fn unbound_label_panics() {
        let mut a = Asm::new();
        let _l = a.jump_fwd();
        a.finish();
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.jump_fwd();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn repeat_emits_n_copies() {
        let mut a = Asm::new();
        a.repeat(3, |a| {
            a.const_i(1).pop();
        });
        assert_eq!(a.finish().len(), 6);
    }

    #[test]
    fn here_tracks_position() {
        let mut a = Asm::new();
        assert_eq!(a.here(), 0);
        a.const_i(1);
        assert_eq!(a.here(), 1);
    }
}
