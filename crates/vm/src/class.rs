//! Classes, methods and the `Packageable` native-state specification.

use crate::ids::{ClassId, MethodId, NativeId};
use crate::op::Op;

/// Where a class came from. Web applications are dominated by framework and
/// generated classes (99.6% of pybbs' jar — §2.2); root-method selection must
/// filter down to user-annotated business logic (§4.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Origin {
    /// Application code written by the user; `annotation` carries the
    /// framework annotation (`@PostMapping`, ...) when present.
    User {
        /// The framework annotation on the class's handler, if any.
        annotation: Option<String>,
    },
    /// Shipped framework code (Spring, MyBatis, HikariCP, ...).
    Framework,
    /// Dynamically generated helper/stub classes (proxies, accessors).
    Generated,
    /// Java system library classes.
    Jdk,
}

/// The kind of native state a packageable class owns, determining how its
/// marshal/unmarshal pair behaves (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PackKind {
    /// Reflection metadata (e.g. `java.lang.reflect.Method`): marshals the
    /// method name/signature so `invoke0` works remotely.
    MethodMeta,
    /// A socket implementation (`SocketImpl`): marshals the proxy connection
    /// ID obtained from the connection proxy (§3.3).
    Socket,
}

/// Declares that instances of a class carry native state in field
/// `handle_slot` and how to marshal it into closures.
///
/// This is the paper's `packageable` interface: classes implementing it marshal
/// their native state into the closure and unmarshal it on the FaaS side,
/// avoiding a fallback per native invocation. The paper enhanced 15 JDK
/// classes this way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackSpec {
    /// Field slot holding the native-state handle (an integer key into the
    /// owning instance's native-state table).
    pub handle_slot: u16,
    /// What the native state is.
    pub kind: PackKind,
    /// Marshalled size in bytes (charged to the closure transfer).
    pub marshalled_bytes: u32,
}

/// A class definition.
#[derive(Clone, Debug)]
pub struct ClassDef {
    /// Fully qualified name.
    pub name: String,
    /// Provenance (user / framework / generated / JDK).
    pub origin: Origin,
    /// Number of instance fields.
    pub field_count: u16,
    /// Packageable declaration, if the class owns native state that can be
    /// marshalled (§3.2). `None` for classes without native state — and for
    /// the ablation where native state exists but cannot be packed.
    pub packageable: Option<PackSpec>,
    /// Approximate class-file size in bytes (charged when the class is
    /// fetched by a FaaS function on a missing-code fallback).
    pub bytes: u32,
}

/// How a method executes.
#[derive(Clone, Debug)]
pub enum MethodBody {
    /// Interpreted bytecode.
    Bytecode(Vec<Op>),
    /// A native method (body defined by its [`NativeDef`]).
    ///
    /// [`NativeDef`]: crate::natives::NativeDef
    Native(NativeId),
}

/// A method definition.
#[derive(Clone, Debug)]
pub struct MethodDef {
    /// Method name (diagnostics only; dispatch is by id).
    pub name: String,
    /// Declaring class.
    pub class: ClassId,
    /// Number of parameters (popped into locals 0..params on call).
    pub params: u8,
    /// Number of additional local slots.
    pub locals: u8,
    /// The body.
    pub body: MethodBody,
    /// Framework annotation on the method, making it an *offloading
    /// candidate* (§4.3), e.g. `@PostMapping("/comment")`.
    pub annotation: Option<String>,
}

impl MethodDef {
    /// Total local slots (parameters + declared locals).
    pub fn frame_slots(&self) -> usize {
        self.params as usize + self.locals as usize
    }

    /// Approximate bytecode size in bytes (for closure/code transfer
    /// accounting): 4 bytes per instruction, minimum 16.
    pub fn code_bytes(&self) -> u32 {
        match &self.body {
            MethodBody::Bytecode(code) => (code.len() as u32 * 4).max(16),
            MethodBody::Native(_) => 16,
        }
    }

    /// `true` when the method carries a framework annotation and is thus an
    /// offloading candidate (§4.3).
    pub fn is_candidate(&self) -> bool {
        self.annotation.is_some()
    }
}

/// A dynamic-dispatch stub (framework interceptor) with its possible targets.
#[derive(Clone, Debug)]
pub struct StubDef {
    /// Stub name (e.g. `MethodInterceptor`).
    pub name: String,
    /// Possible call targets; the selector operand picks one at run time.
    pub targets: Vec<MethodId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_slots_sum_params_and_locals() {
        let m = MethodDef {
            name: "m".into(),
            class: ClassId(0),
            params: 2,
            locals: 3,
            body: MethodBody::Bytecode(vec![Op::Return]),
            annotation: None,
        };
        assert_eq!(m.frame_slots(), 5);
        assert!(!m.is_candidate());
        assert_eq!(m.code_bytes(), 16);
    }

    #[test]
    fn code_bytes_scale_with_length() {
        let m = MethodDef {
            name: "m".into(),
            class: ClassId(0),
            params: 0,
            locals: 0,
            body: MethodBody::Bytecode(vec![Op::ConstI(1); 100]),
            annotation: Some("@GetMapping".into()),
        };
        assert_eq!(m.code_bytes(), 400);
        assert!(m.is_candidate());
    }
}
