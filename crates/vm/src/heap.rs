//! The object heap: a never-collected **closure space** plus a
//! semispace-collected **allocation space**, with a 512-byte card table
//! limiting GC root scans — the memory-management design of §4.4.
//!
//! * Objects arriving in the initial closure (and everything later fetched
//!   from remote endpoints) are copied into the closure space, which is
//!   append-only: the paper treats all closure objects as alive for the
//!   lifetime of the FaaS instance.
//! * Objects allocated during execution go to the allocation space and die
//!   young; when it fills up, a copying collection from the roots (stacks,
//!   statics, dirty closure-space cards) empties it.
//! * A card table over the closure space (512-byte cards) records where
//!   closure-space objects may reference allocation-space objects, so GC
//!   scans only dirty cards instead of the whole space.
//!
//! Addresses are 8-byte-aligned byte addresses in disjoint ranges per space;
//! bit 63 marks remote references (see [`crate::value`]).

use std::collections::HashMap;

use beehive_sim::Duration;

use crate::ids::ClassId;
use crate::value::{Addr, Value};

/// Which space an address belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Space {
    /// The never-collected closure space.
    Closure,
    /// The semispace-collected allocation space.
    Alloc,
}

/// Base address of the closure space.
pub const CLOSURE_BASE: u64 = 0x1000_0000_0000;
/// Base address of allocation semispace A.
pub const ALLOC_BASE_A: u64 = 0x2000_0000_0000;
/// Base address of allocation semispace B.
pub const ALLOC_BASE_B: u64 = 0x3000_0000_0000;
/// Exclusive upper bound of the address ranges (1 TiB per space is plenty).
const SPACE_SIZE: u64 = 0x1000_0000_0000;

/// Card granularity: 512 bytes = 64 words (paper §4.4).
pub const CARD_BYTES: u64 = 512;
const CARD_WORDS: usize = (CARD_BYTES / 8) as usize;

/// Header flag: object is an array (length in the `len` field, elements as
/// slots).
const FLAG_ARRAY: u64 = 1 << 56;
/// Header flag: object is on the endpoint's dirty list (§4.2).
const FLAG_DIRTY: u64 = 1 << 57;

const LEN_SHIFT: u32 = 32;
const LEN_MASK: u64 = 0xFF_FFFF;

/// The visitor [`Heap::collect`] hands to its root walker; the walker must
/// call it on every root slot so the collector can relocate references.
pub type RootVisitor<'a> = dyn FnMut(&mut Value) + 'a;

/// Statistics from one collection.
#[derive(Clone, Copy, Debug, Default)]
pub struct GcStats {
    /// Bytes of surviving (copied) objects.
    pub live_bytes: u64,
    /// Bytes reclaimed.
    pub freed_bytes: u64,
    /// Number of objects copied.
    pub copied_objects: u64,
    /// Dirty closure-space cards scanned.
    pub cards_scanned: u64,
    /// Modelled pause duration (charged as virtual time).
    pub pause: Duration,
}

/// Cost model for the modelled GC pause.
#[derive(Clone, Copy, Debug)]
pub struct GcCosts {
    /// Fixed pause component.
    pub base: Duration,
    /// Per-copied-word cost.
    pub per_word: Duration,
    /// Per-scanned-card cost.
    pub per_card: Duration,
}

impl Default for GcCosts {
    fn default() -> Self {
        // Calibrated so that the per-request footprints of the evaluated
        // applications produce the paper's §5.6 pause medians (0.92/2.64/1.42
        // ms for thumbnail/pybbs/blog at ~3/29/22 MB heaps).
        GcCosts {
            base: Duration::from_micros(150),
            per_word: Duration::from_nanos(6),
            per_card: Duration::from_nanos(120),
        }
    }
}

/// The two-space heap of one VM instance.
#[derive(Debug, Clone)]
pub struct Heap {
    closure: Vec<u64>,
    alloc: Vec<u64>,
    alloc_base: u64,
    alloc_capacity_words: usize,
    cards: Vec<bool>,
    gc_costs: GcCosts,
    /// Running count of allocated bytes (both spaces, monotonic).
    allocated_bytes: u64,
    /// High-water mark of live alloc-space bytes observed at GC.
    peak_used_bytes: u64,
}

impl Heap {
    /// A heap whose allocation space holds `alloc_capacity_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than one object.
    pub fn new(alloc_capacity_bytes: u64, gc_costs: GcCosts) -> Self {
        assert!(alloc_capacity_bytes >= 64, "allocation space too small");
        assert!(
            alloc_capacity_bytes < SPACE_SIZE,
            "allocation space too big"
        );
        Heap {
            closure: Vec::new(),
            alloc: Vec::new(),
            alloc_base: ALLOC_BASE_A,
            alloc_capacity_words: (alloc_capacity_bytes / 8) as usize,
            cards: Vec::new(),
            gc_costs,
            allocated_bytes: 0,
            peak_used_bytes: 0,
        }
    }

    /// Which space `addr` points into.
    ///
    /// # Panics
    ///
    /// Panics on remote or out-of-range addresses.
    pub fn space_of(&self, addr: Addr) -> Space {
        assert!(!addr.is_remote(), "space_of on remote address {addr:?}");
        let a = addr.raw();
        if (CLOSURE_BASE..CLOSURE_BASE + SPACE_SIZE).contains(&a) {
            Space::Closure
        } else if (self.alloc_base..self.alloc_base + SPACE_SIZE).contains(&a) {
            Space::Alloc
        } else {
            panic!(
                "address {addr:?} outside this heap (alloc base {:#x})",
                self.alloc_base
            )
        }
    }

    fn words(&self, space: Space) -> &Vec<u64> {
        match space {
            Space::Closure => &self.closure,
            Space::Alloc => &self.alloc,
        }
    }

    fn words_mut(&mut self, space: Space) -> &mut Vec<u64> {
        match space {
            Space::Closure => &mut self.closure,
            Space::Alloc => &mut self.alloc,
        }
    }

    fn base(&self, space: Space) -> u64 {
        match space {
            Space::Closure => CLOSURE_BASE,
            Space::Alloc => self.alloc_base,
        }
    }

    fn index(&self, addr: Addr) -> (Space, usize) {
        let space = self.space_of(addr);
        ((space), ((addr.raw() - self.base(space)) / 8) as usize)
    }

    fn read_word(&self, addr: Addr, offset: usize) -> u64 {
        let (space, idx) = self.index(addr);
        self.words(space)[idx + offset]
    }

    fn write_word(&mut self, addr: Addr, offset: usize, word: u64) {
        let (space, idx) = self.index(addr);
        self.words_mut(space)[idx + offset] = word;
    }

    fn header(&self, addr: Addr) -> u64 {
        self.read_word(addr, 0)
    }

    /// Allocate an object with `slots` fields in `space`.
    ///
    /// Returns `None` when the allocation space is full (the caller must
    /// trigger a collection); closure-space allocation always succeeds.
    pub fn alloc_object(&mut self, class: ClassId, slots: u32, space: Space) -> Option<Addr> {
        self.alloc_raw(class.0, slots, space, false)
    }

    /// Allocate an array of `len` elements in `space`.
    ///
    /// Returns `None` when the allocation space is full.
    pub fn alloc_array(&mut self, len: u32, space: Space) -> Option<Addr> {
        self.alloc_raw(0, len, space, true)
    }

    fn alloc_raw(
        &mut self,
        class_bits: u32,
        slots: u32,
        space: Space,
        array: bool,
    ) -> Option<Addr> {
        assert!(slots as u64 <= LEN_MASK, "object too large: {slots} slots");
        let need = 1 + slots as usize;
        if space == Space::Alloc && self.alloc.len() + need > self.alloc_capacity_words {
            return None;
        }
        let base = self.base(space);
        let words = self.words_mut(space);
        let idx = words.len();
        let mut header = class_bits as u64 | ((slots as u64) << LEN_SHIFT);
        if array {
            header |= FLAG_ARRAY;
        }
        words.push(header);
        words.extend(std::iter::repeat_n(0, slots as usize));
        if space == Space::Closure {
            let cards_needed = (idx + need).div_ceil(CARD_WORDS);
            if self.cards.len() < cards_needed {
                self.cards.resize(cards_needed, false);
            }
        }
        self.allocated_bytes += need as u64 * 8;
        Some(Addr(base + idx as u64 * 8))
    }

    /// The class of the object at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is an array or not a valid object.
    pub fn class_of(&self, addr: Addr) -> ClassId {
        let h = self.header(addr);
        assert_eq!(h & FLAG_ARRAY, 0, "class_of on array {addr:?}");
        ClassId(h as u32)
    }

    /// `true` when the object at `addr` is an array.
    pub fn is_array(&self, addr: Addr) -> bool {
        self.header(addr) & FLAG_ARRAY != 0
    }

    /// Number of fields / array elements.
    pub fn len_of(&self, addr: Addr) -> u32 {
        ((self.header(addr) >> LEN_SHIFT) & LEN_MASK) as u32
    }

    /// Read field/element `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    pub fn get(&self, addr: Addr, slot: u32) -> Value {
        assert!(
            slot < self.len_of(addr),
            "slot {slot} out of bounds at {addr:?}"
        );
        Value::decode(self.read_word(addr, 1 + slot as usize))
    }

    /// Write field/element `slot`, maintaining the card table.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of bounds.
    pub fn set(&mut self, addr: Addr, slot: u32, value: Value) {
        assert!(
            slot < self.len_of(addr),
            "slot {slot} out of bounds at {addr:?}"
        );
        self.write_word(addr, 1 + slot as usize, value.encode());
        // Card marking: a reference stored into the closure space may create
        // a closure→alloc edge the next GC must treat as a root.
        if matches!(value, Value::Ref(a) if !a.is_remote()) && self.space_of(addr) == Space::Closure
        {
            let (_, idx) = self.index(addr);
            self.cards[(idx + 1 + slot as usize) / CARD_WORDS] = true;
        }
    }

    /// Mark the object dirty (it will be shipped at the next synchronization,
    /// §4.2). Returns `true` if it was newly marked.
    pub fn mark_dirty(&mut self, addr: Addr) -> bool {
        let h = self.header(addr);
        if h & FLAG_DIRTY != 0 {
            false
        } else {
            self.write_word(addr, 0, h | FLAG_DIRTY);
            true
        }
    }

    /// Clear the dirty mark.
    pub fn clear_dirty(&mut self, addr: Addr) {
        let h = self.header(addr);
        self.write_word(addr, 0, h & !FLAG_DIRTY);
    }

    /// Bytes currently used in the allocation space.
    pub fn used_alloc_bytes(&self) -> u64 {
        self.alloc.len() as u64 * 8
    }

    /// Bytes used in the closure space.
    pub fn used_closure_bytes(&self) -> u64 {
        self.closure.len() as u64 * 8
    }

    /// Monotonic count of all bytes ever allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// Peak combined footprint observed (updated at each GC and on query).
    pub fn peak_used_bytes(&self) -> u64 {
        self.peak_used_bytes
            .max(self.used_alloc_bytes() + self.used_closure_bytes())
    }

    /// `true` when an allocation of `slots` fields would fail right now.
    pub fn needs_gc(&self, slots: u32) -> bool {
        self.alloc.len() + 1 + slots as usize > self.alloc_capacity_words
    }

    /// Semispace collection of the allocation space.
    ///
    /// `each_root` must invoke its visitor on **every** root slot: operand
    /// stacks and locals of live executions, statics, and any embedder
    /// tables (e.g. the server's object-mapping tables, §4.4). Closure-space
    /// objects are additional roots discovered through dirty cards.
    pub fn collect(&mut self, each_root: &mut dyn FnMut(&mut RootVisitor)) -> GcStats {
        self.peak_used_bytes = self
            .peak_used_bytes
            .max(self.used_alloc_bytes() + self.used_closure_bytes());

        let from_base = self.alloc_base;
        let to_base = if from_base == ALLOC_BASE_A {
            ALLOC_BASE_B
        } else {
            ALLOC_BASE_A
        };
        let from = std::mem::take(&mut self.alloc);
        let old_used = from.len() as u64 * 8;
        self.alloc_base = to_base;

        let mut forwarding: HashMap<u64, u64> = HashMap::new();
        let mut copied_objects = 0u64;

        // Copy one object from from-space, returning its new address.
        let copy = |heap: &mut Heap,
                    forwarding: &mut HashMap<u64, u64>,
                    copied: &mut u64,
                    old: u64|
         -> u64 {
            if let Some(&new) = forwarding.get(&old) {
                return new;
            }
            let idx = ((old - from_base) / 8) as usize;
            let header = from[idx];
            let len = ((header >> LEN_SHIFT) & LEN_MASK) as usize;
            let new_idx = heap.alloc.len();
            heap.alloc.extend_from_slice(&from[idx..idx + 1 + len]);
            let new = to_base + new_idx as u64 * 8;
            forwarding.insert(old, new);
            *copied += 1;
            new
        };

        let in_from = |w: u64| -> bool {
            w != 0
                && w & 1 == 0
                && !Addr(w).is_remote()
                && (from_base..from_base + SPACE_SIZE).contains(&w)
        };

        // Phase 1: roots.
        {
            let mut visit = |v: &mut Value| {
                if let Value::Ref(a) = *v {
                    if !a.is_remote() && (from_base..from_base + SPACE_SIZE).contains(&a.raw()) {
                        let new = copy(self, &mut forwarding, &mut copied_objects, a.raw());
                        *v = Value::Ref(Addr(new));
                    }
                }
            };
            each_root(&mut visit);
        }

        // Phase 2: dirty closure-space cards.
        let mut cards_scanned = 0u64;
        for card in 0..self.cards.len() {
            if !self.cards[card] {
                continue;
            }
            cards_scanned += 1;
            let start = card * CARD_WORDS;
            let end = ((card + 1) * CARD_WORDS).min(self.closure.len());
            let mut still_dirty = false;
            for i in start..end {
                let w = self.closure[i];
                if in_from(w) {
                    let new = copy(self, &mut forwarding, &mut copied_objects, w);
                    self.closure[i] = new;
                    still_dirty = true;
                }
            }
            self.cards[card] = still_dirty;
        }

        // Phase 3: Cheney scan of to-space.
        let mut scan = 0usize;
        while scan < self.alloc.len() {
            let header = self.alloc[scan];
            let len = ((header >> LEN_SHIFT) & LEN_MASK) as usize;
            for slot in 0..len {
                let w = self.alloc[scan + 1 + slot];
                if in_from(w) {
                    let new = copy(self, &mut forwarding, &mut copied_objects, w);
                    self.alloc[scan + 1 + slot] = new;
                }
            }
            scan += 1 + len;
        }

        let live_bytes = self.alloc.len() as u64 * 8;
        GcStats {
            live_bytes,
            freed_bytes: old_used.saturating_sub(live_bytes),
            copied_objects,
            cards_scanned,
            pause: self.gc_costs.base
                + Duration::from_nanos(
                    self.gc_costs.per_word.as_nanos() * (live_bytes / 8)
                        + self.gc_costs.per_card.as_nanos() * cards_scanned,
                ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(4096, GcCosts::default())
    }

    #[test]
    fn alloc_and_field_access() {
        let mut h = heap();
        let obj = h.alloc_object(ClassId(7), 3, Space::Alloc).unwrap();
        assert_eq!(h.class_of(obj), ClassId(7));
        assert_eq!(h.len_of(obj), 3);
        assert_eq!(h.get(obj, 0), Value::Null);
        h.set(obj, 1, Value::I64(99));
        assert_eq!(h.get(obj, 1), Value::I64(99));
    }

    #[test]
    fn arrays() {
        let mut h = heap();
        let arr = h.alloc_array(10, Space::Alloc).unwrap();
        assert!(h.is_array(arr));
        assert_eq!(h.len_of(arr), 10);
        h.set(arr, 9, Value::I64(-1));
        assert_eq!(h.get(arr, 9), Value::I64(-1));
    }

    #[test]
    fn alloc_space_fills_up() {
        let mut h = Heap::new(64, GcCosts::default()); // 8 words
        assert!(h.alloc_object(ClassId(0), 3, Space::Alloc).is_some()); // 4 words
        assert!(h.needs_gc(5));
        assert!(h.alloc_object(ClassId(0), 5, Space::Alloc).is_none());
        // Closure space is unbounded.
        assert!(h.alloc_object(ClassId(0), 100, Space::Closure).is_some());
    }

    #[test]
    fn spaces_are_distinguished() {
        let mut h = heap();
        let a = h.alloc_object(ClassId(0), 1, Space::Alloc).unwrap();
        let c = h.alloc_object(ClassId(0), 1, Space::Closure).unwrap();
        assert_eq!(h.space_of(a), Space::Alloc);
        assert_eq!(h.space_of(c), Space::Closure);
    }

    #[test]
    fn gc_reclaims_garbage_and_preserves_roots() {
        let mut h = heap();
        let keep = h.alloc_object(ClassId(1), 2, Space::Alloc).unwrap();
        h.set(keep, 0, Value::I64(5));
        for _ in 0..10 {
            h.alloc_object(ClassId(2), 4, Space::Alloc).unwrap(); // garbage
        }
        let mut root = Value::Ref(keep);
        let stats = h.collect(&mut |visit| visit(&mut root));
        let new_addr = root.as_ref().unwrap();
        assert_eq!(h.class_of(new_addr), ClassId(1));
        assert_eq!(h.get(new_addr, 0), Value::I64(5));
        assert_eq!(stats.copied_objects, 1);
        assert!(stats.freed_bytes > 0);
        assert_eq!(h.used_alloc_bytes(), 3 * 8);
    }

    #[test]
    fn gc_follows_object_graphs() {
        let mut h = heap();
        let a = h.alloc_object(ClassId(1), 1, Space::Alloc).unwrap();
        let b = h.alloc_object(ClassId(2), 1, Space::Alloc).unwrap();
        h.set(a, 0, Value::Ref(b));
        h.set(b, 0, Value::I64(42));
        h.alloc_array(50, Space::Alloc).unwrap(); // garbage
        let mut root = Value::Ref(a);
        let stats = h.collect(&mut |visit| visit(&mut root));
        assert_eq!(stats.copied_objects, 2);
        let a2 = root.as_ref().unwrap();
        let b2 = h.get(a2, 0).as_ref().unwrap();
        assert_eq!(h.get(b2, 0), Value::I64(42));
    }

    #[test]
    fn gc_handles_cycles_and_sharing() {
        let mut h = heap();
        let a = h.alloc_object(ClassId(1), 2, Space::Alloc).unwrap();
        let b = h.alloc_object(ClassId(2), 1, Space::Alloc).unwrap();
        h.set(a, 0, Value::Ref(b));
        h.set(a, 1, Value::Ref(b)); // shared edge
        h.set(b, 0, Value::Ref(a)); // cycle
        let mut root = Value::Ref(a);
        let stats = h.collect(&mut |visit| visit(&mut root));
        assert_eq!(stats.copied_objects, 2);
        let a2 = root.as_ref().unwrap();
        let b2 = h.get(a2, 0).as_ref().unwrap();
        assert_eq!(h.get(a2, 1).as_ref().unwrap(), b2, "sharing preserved");
        assert_eq!(h.get(b2, 0).as_ref().unwrap(), a2, "cycle preserved");
    }

    #[test]
    fn closure_space_objects_keep_alloc_targets_alive_via_cards() {
        let mut h = heap();
        let holder = h.alloc_object(ClassId(1), 1, Space::Closure).unwrap();
        let target = h.alloc_object(ClassId(2), 1, Space::Alloc).unwrap();
        h.set(target, 0, Value::I64(7));
        h.set(holder, 0, Value::Ref(target)); // marks card
        let stats = h.collect(&mut |_| {}); // no stack roots at all
        assert_eq!(stats.copied_objects, 1);
        assert!(stats.cards_scanned >= 1);
        let target2 = h.get(holder, 0).as_ref().unwrap();
        assert_eq!(h.get(target2, 0), Value::I64(7));
        assert_eq!(h.space_of(target2), Space::Alloc);
    }

    #[test]
    fn remote_refs_are_ignored_by_gc() {
        let mut h = heap();
        let holder = h.alloc_object(ClassId(1), 1, Space::Closure).unwrap();
        let remote = Addr(ALLOC_BASE_A + 0x40).to_remote();
        h.set(holder, 0, Value::Ref(remote));
        let mut root = Value::Ref(remote);
        let stats = h.collect(&mut |visit| visit(&mut root));
        assert_eq!(stats.copied_objects, 0);
        assert_eq!(root.as_ref().unwrap(), remote, "remote ref untouched");
        assert_eq!(h.get(holder, 0).as_ref().unwrap(), remote);
    }

    #[test]
    fn two_successive_gcs_flip_semispaces() {
        let mut h = heap();
        let a = h.alloc_object(ClassId(1), 1, Space::Alloc).unwrap();
        h.set(a, 0, Value::I64(1));
        let mut root = Value::Ref(a);
        h.collect(&mut |v| v(&mut root));
        let first = root.as_ref().unwrap();
        h.collect(&mut |v| v(&mut root));
        let second = root.as_ref().unwrap();
        assert_ne!(
            first.raw() & 0xF000_0000_0000,
            second.raw() & 0xF000_0000_0000
        );
        assert_eq!(h.get(second, 0), Value::I64(1));
    }

    #[test]
    fn dirty_marks() {
        let mut h = heap();
        let o = h.alloc_object(ClassId(0), 1, Space::Closure).unwrap();
        assert!(h.mark_dirty(o));
        assert!(!h.mark_dirty(o), "second mark is a no-op");
        h.clear_dirty(o);
        assert!(h.mark_dirty(o));
    }

    #[test]
    fn gc_pause_grows_with_live_set() {
        let mut h = Heap::new(1 << 20, GcCosts::default());
        let small = {
            let a = h.alloc_object(ClassId(0), 1, Space::Alloc).unwrap();
            let mut root = Value::Ref(a);
            h.collect(&mut |v| v(&mut root)).pause
        };
        let big = {
            let mut roots: Vec<Value> = Vec::new();
            for _ in 0..1000 {
                let a = h.alloc_object(ClassId(0), 7, Space::Alloc).unwrap();
                roots.push(Value::Ref(a));
            }
            h.collect(&mut |v| roots.iter_mut().for_each(&mut *v)).pause
        };
        assert!(big > small, "pause should scale: {small:?} vs {big:?}");
    }

    #[test]
    fn peak_usage_tracks_high_water_mark() {
        let mut h = heap();
        for _ in 0..8 {
            h.alloc_object(ClassId(0), 7, Space::Alloc).unwrap();
        }
        let before = h.peak_used_bytes();
        h.collect(&mut |_| {});
        assert!(h.peak_used_bytes() >= before);
        assert_eq!(h.used_alloc_bytes(), 0);
    }
}
