//! Newtype identifiers used across the runtime.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

id_type!(
    /// Index of a class in a [`Program`](crate::program::Program).
    ClassId,
    "class#"
);
id_type!(
    /// Index of a method in a [`Program`](crate::program::Program).
    MethodId,
    "method#"
);
id_type!(
    /// Index of a native method descriptor in a
    /// [`Program`](crate::program::Program).
    NativeId,
    "native#"
);
id_type!(
    /// Index of a dynamic-dispatch stub (interceptor) in a
    /// [`Program`](crate::program::Program).
    StubId,
    "stub#"
);
id_type!(
    /// Index of a static variable slot in a
    /// [`Program`](crate::program::Program).
    StaticSlot,
    "static#"
);

/// Identifies one endpoint of the distributed execution: the server or a
/// particular FaaS function instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EndpointId {
    /// The long-running monolith server.
    Server,
    /// FaaS function instance number `n`.
    Function(u32),
}

impl EndpointId {
    /// `true` for the server endpoint.
    pub fn is_server(self) -> bool {
        matches!(self, EndpointId::Server)
    }
}

impl fmt::Debug for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndpointId::Server => write!(f, "server"),
            EndpointId::Function(n) => write!(f, "func#{n}"),
        }
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", ClassId(3)), "class#3");
        assert_eq!(format!("{:?}", MethodId(1)), "method#1");
        assert_eq!(format!("{}", EndpointId::Server), "server");
        assert_eq!(format!("{}", EndpointId::Function(2)), "func#2");
    }

    #[test]
    fn endpoint_kind_checks() {
        assert!(EndpointId::Server.is_server());
        assert!(!EndpointId::Function(0).is_server());
    }
}
