//! Per-endpoint VM instances.
//!
//! A [`VmInstance`] is one endpoint's runtime state: heap, statics, loaded
//! classes, native-state table, monitor-ownership cache, dirty-object list
//! and counters. The server has one long-lived instance with every class
//! loaded; each FaaS function gets a fresh instance that starts empty and is
//! populated from the initial closure, growing through fallbacks.

use std::collections::{HashMap, HashSet};

use beehive_sim::Duration;

use crate::heap::{GcCosts, GcStats, Heap, Space};
use crate::ids::MethodId;
use crate::interp::Execution;
use crate::natives::{NativeCounters, NativeState};
use crate::program::Program;
use crate::value::{Addr, Value};

/// Which side of the Semi-FaaS split this instance runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EndpointKind {
    /// The long-running monolith server. Remote-reference checks are compiled
    /// out (§4.1: "the check instructions are only added on the FaaS side").
    Server,
    /// A FaaS function instance: remote-reference checks on, classes loaded
    /// on demand, warmup from cold.
    Function,
}

/// Per-op virtual-time costs, with interpreter/JIT warmup.
///
/// A method's first `warm_threshold` invocations on an instance run at
/// `cold_multiplier`× cost, modelling interpretation before JIT compilation —
/// the JVM warmup that shadow execution hides (§3.4).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cost of a simple op (const, arithmetic, load/store, branch).
    pub simple_op: Duration,
    /// Cost of a call/return.
    pub call_op: Duration,
    /// Cost of an allocation.
    pub alloc_op: Duration,
    /// Cost of a field/array access.
    pub field_op: Duration,
    /// Cost of an uncontended monitor operation.
    pub monitor_op: Duration,
    /// Extra cost per tracked write when write barriers are enabled
    /// (BeeHive's dirty-object instrumentation; causes the paper's 7.14%
    /// pybbs throughput drop, §5.3).
    pub barrier: Duration,
    /// Invocations before a method is considered JIT-compiled.
    pub warm_threshold: u64,
    /// Cost multiplier while cold.
    pub cold_multiplier: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            simple_op: Duration::from_nanos(2),
            call_op: Duration::from_nanos(20),
            alloc_op: Duration::from_nanos(25),
            field_op: Duration::from_nanos(4),
            monitor_op: Duration::from_nanos(30),
            barrier: Duration::from_nanos(25),
            warm_threshold: 10,
            cold_multiplier: 8,
        }
    }
}

impl CostModel {
    /// The same model with write barriers disabled (vanilla JVM).
    pub fn without_barriers(mut self) -> Self {
        self.barrier = Duration::ZERO;
        self
    }
}

/// Aggregate activity counters of an instance.
#[derive(Clone, Copy, Debug, Default)]
pub struct VmCounters {
    /// Bytecode ops executed.
    pub ops: u64,
    /// Objects allocated.
    pub allocs: u64,
    /// Native invocations by category.
    pub natives: NativeCounters,
    /// Monitor acquisitions.
    pub monitor_enters: u64,
    /// Database round trips issued.
    pub db_calls: u64,
    /// Tracked (barrier-instrumented) writes.
    pub tracked_writes: u64,
}

impl VmCounters {
    /// Reset to zero, returning the previous values.
    pub fn take(&mut self) -> VmCounters {
        std::mem::take(self)
    }
}

/// One endpoint's runtime state.
#[derive(Debug, Clone)]
pub struct VmInstance {
    kind: EndpointKind,
    /// The heap.
    pub heap: Heap,
    statics: Vec<Value>,
    statics_fetched: Vec<bool>,
    loaded: Vec<bool>,
    native_states: HashMap<u64, NativeState>,
    next_handle: u64,
    owned_monitors: HashSet<Addr>,
    foreign_monitors: HashSet<Addr>,
    dirty: Vec<Addr>,
    /// Activity counters.
    pub counters: VmCounters,
    /// Cost model.
    pub cost: CostModel,
    invocations: HashMap<MethodId, u64>,
    /// Where `New` allocates (requests allocate in the allocation space;
    /// application init may switch to the closure space for long-lived shared
    /// state).
    pub alloc_target: Space,
    gc_log: Vec<GcStats>,
    barriers: bool,
    trace_id: Option<u32>,
    shadow: bool,
}

/// Default allocation-space capacity for a server instance.
pub const SERVER_ALLOC_BYTES: u64 = 64 << 20;
/// Default allocation-space capacity for a function instance (per-function
/// heaps are small: the paper reports 3–29 MB total footprints, §5.6).
pub const FUNCTION_ALLOC_BYTES: u64 = 8 << 20;

impl VmInstance {
    /// A server instance: all classes loaded, statics initialized to null,
    /// remote-reference checks off.
    pub fn server(program: &Program, cost: CostModel) -> Self {
        Self::new(
            EndpointKind::Server,
            program,
            cost,
            SERVER_ALLOC_BYTES,
            true,
        )
    }

    /// A fresh function instance: nothing loaded, statics unfetched.
    pub fn function(program: &Program, cost: CostModel) -> Self {
        Self::new(
            EndpointKind::Function,
            program,
            cost,
            FUNCTION_ALLOC_BYTES,
            false,
        )
    }

    fn new(
        kind: EndpointKind,
        program: &Program,
        cost: CostModel,
        alloc_bytes: u64,
        loaded: bool,
    ) -> Self {
        VmInstance {
            kind,
            heap: Heap::new(alloc_bytes, GcCosts::default()),
            statics: vec![Value::Null; program.static_count()],
            statics_fetched: vec![kind == EndpointKind::Server; program.static_count()],
            loaded: vec![loaded; program.class_count()],
            native_states: HashMap::new(),
            next_handle: 1,
            owned_monitors: HashSet::new(),
            foreign_monitors: HashSet::new(),
            dirty: Vec::new(),
            counters: VmCounters::default(),
            cost,
            invocations: HashMap::new(),
            alloc_target: Space::Alloc,
            gc_log: Vec::new(),
            barriers: kind == EndpointKind::Function,
            trace_id: None,
            shadow: false,
        }
    }

    /// The endpoint kind.
    pub fn kind(&self) -> EndpointKind {
        self.kind
    }

    /// `true` on FaaS instances, where every reference load checks bit 63.
    pub fn checks_remote_refs(&self) -> bool {
        self.kind == EndpointKind::Function
    }

    /// Tag a function instance with its platform id so trace events land on
    /// that instance's timeline (servers ignore this).
    pub fn set_trace_id(&mut self, id: u32) {
        self.trace_id = Some(id);
    }

    /// The telemetry track this instance's events belong to.
    pub fn trace_track(&self) -> beehive_telemetry::Track {
        match self.kind {
            EndpointKind::Server => beehive_telemetry::Track::Server,
            EndpointKind::Function => {
                beehive_telemetry::Track::Instance(self.trace_id.unwrap_or(u32::MAX))
            }
        }
    }

    /// Mark whether the instance is currently running a shadow execution
    /// (§3.4). Session start sets this; the profiler keys its lane on it.
    pub fn set_shadow(&mut self, shadow: bool) {
        self.shadow = shadow;
    }

    /// The profiler lane this instance's execution belongs to.
    pub fn profile_lane(&self) -> &'static str {
        match (self.kind, self.shadow) {
            (EndpointKind::Server, _) => "server",
            (EndpointKind::Function, false) => "faas:primary",
            (EndpointKind::Function, true) => "faas:shadow",
        }
    }

    /// The FaaS instance id for the profiler's per-instance totals (`None`
    /// on the server).
    pub fn profile_instance(&self) -> Option<u32> {
        match self.kind {
            EndpointKind::Server => None,
            EndpointKind::Function => self.trace_id,
        }
    }

    /// Enable/disable write barriers (dirty-object tracking). BeeHive servers
    /// run with barriers on; the vanilla baseline runs with them off.
    pub fn set_barriers(&mut self, on: bool) {
        self.barriers = on;
    }

    /// `true` when write barriers are active.
    pub fn barriers_enabled(&self) -> bool {
        self.barriers
    }

    // ----- classes ------------------------------------------------------

    /// `true` when the class's code is available on this endpoint.
    pub fn is_loaded(&self, class: crate::ids::ClassId) -> bool {
        self.loaded[class.index()]
    }

    /// Mark a class's code available (after a missing-code fetch).
    pub fn load_class(&mut self, class: crate::ids::ClassId) {
        self.loaded[class.index()] = true;
    }

    /// Number of classes currently loaded.
    pub fn loaded_count(&self) -> usize {
        self.loaded.iter().filter(|&&b| b).count()
    }

    // ----- statics ------------------------------------------------------

    /// Read a static slot (no fetch check; the interpreter does that).
    pub fn static_value(&self, slot: crate::ids::StaticSlot) -> Value {
        self.statics[slot.index()]
    }

    /// Write a static slot.
    pub fn set_static(&mut self, slot: crate::ids::StaticSlot, v: Value) {
        self.statics[slot.index()] = v;
    }

    /// `true` when the slot's value is present on this endpoint.
    pub fn static_fetched(&self, slot: crate::ids::StaticSlot) -> bool {
        self.statics_fetched[slot.index()]
    }

    /// Install a fetched static value.
    pub fn install_static(&mut self, slot: crate::ids::StaticSlot, v: Value) {
        self.statics[slot.index()] = v;
        self.statics_fetched[slot.index()] = true;
    }

    // ----- native state --------------------------------------------------

    /// Register off-heap state, returning its handle (stored in an object
    /// field named by the class's [`PackSpec`](crate::class::PackSpec)).
    pub fn register_native_state(&mut self, state: NativeState) -> u64 {
        let h = self.next_handle;
        self.next_handle += 1;
        self.native_states.insert(h, state);
        h
    }

    /// Look up native state by handle.
    pub fn native_state(&self, handle: u64) -> Option<&NativeState> {
        self.native_states.get(&handle)
    }

    // ----- monitors -------------------------------------------------------

    /// `true` when this endpoint may enter the monitor without a sync
    /// fallback.
    pub fn owns_monitor(&self, obj: Addr) -> bool {
        match self.kind {
            EndpointKind::Server => !self.foreign_monitors.contains(&obj),
            EndpointKind::Function => self.owned_monitors.contains(&obj),
        }
    }

    /// Grant monitor ownership to this endpoint (after a sync).
    pub fn grant_monitor(&mut self, obj: Addr) {
        match self.kind {
            EndpointKind::Server => {
                self.foreign_monitors.remove(&obj);
            }
            EndpointKind::Function => {
                self.owned_monitors.insert(obj);
            }
        }
    }

    /// Revoke ownership (another endpoint acquired the lock). For the server,
    /// `obj` is recorded as foreign-held so the next server acquire syncs.
    pub fn revoke_monitor(&mut self, obj: Addr) {
        match self.kind {
            EndpointKind::Server => {
                self.foreign_monitors.insert(obj);
            }
            EndpointKind::Function => {
                self.owned_monitors.remove(&obj);
            }
        }
    }

    // ----- dirty tracking -------------------------------------------------

    /// Record a write to `addr` (the write barrier). Closure-space objects
    /// join the dirty list shipped at the next synchronization (§4.2).
    pub fn note_write(&mut self, addr: Addr) -> Duration {
        if !self.barriers {
            return Duration::ZERO;
        }
        self.counters.tracked_writes += 1;
        if self.heap.space_of(addr) == Space::Closure && self.heap.mark_dirty(addr) {
            self.dirty.push(addr);
        }
        self.cost.barrier
    }

    /// Drain the dirty-object list (at a synchronization point), clearing
    /// the marks.
    pub fn take_dirty(&mut self) -> Vec<Addr> {
        let dirty = std::mem::take(&mut self.dirty);
        for &a in &dirty {
            self.heap.clear_dirty(a);
        }
        dirty
    }

    /// Number of objects currently dirty.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// The current dirty list without clearing it (used when the server
    /// hands a lock to a function and must refresh the receiver's view of
    /// recently written shared objects without forgetting them for other
    /// endpoints).
    pub fn dirty_peek(&self) -> &[Addr] {
        &self.dirty
    }

    // ----- warmup ---------------------------------------------------------

    /// Mark every method JIT-compiled on this instance (models an instance
    /// that served earlier traffic — the platform warm cache of §5.2).
    pub fn prewarm_all_methods(&mut self, program: &Program) {
        for m in 0..program.method_count() {
            self.invocations
                .insert(MethodId(m as u32), self.cost.warm_threshold + 1);
        }
    }

    /// Record an invocation of `method`; returns `true` when the method is
    /// still cold (pre-JIT) on this instance.
    pub fn note_invocation(&mut self, method: MethodId) -> bool {
        let count = self.invocations.entry(method).or_insert(0);
        *count += 1;
        *count <= self.cost.warm_threshold
    }

    // ----- GC ---------------------------------------------------------------

    /// Collect the allocation space. `executions` are all executions whose
    /// frames root objects on this instance; statics and the dirty list are
    /// rooted automatically, and embedders may pass extra root slots (e.g.
    /// the server's mapping tables) via `extra_roots`.
    pub fn collect(
        &mut self,
        executions: &mut [&mut Execution],
        extra_roots: &mut [&mut Value],
    ) -> GcStats {
        let statics = &mut self.statics;
        let dirty = &mut self.dirty;
        let stats = self.heap.collect(&mut |visit| {
            for v in statics.iter_mut() {
                visit(v);
            }
            for exec in executions.iter_mut() {
                exec.visit_roots(visit);
            }
            for v in extra_roots.iter_mut() {
                visit(v);
            }
            // Dirty-list entries are closure-space objects (never moved),
            // but visit them anyway for robustness.
            for a in dirty.iter_mut() {
                let mut v = Value::Ref(*a);
                visit(&mut v);
                *a = v.as_ref().expect("dirty entry must stay a reference");
            }
        });
        self.gc_log.push(stats);
        if beehive_telemetry::enabled() {
            use beehive_telemetry::Arg;
            beehive_telemetry::complete(
                self.trace_track(),
                "gc",
                stats.pause,
                &[
                    ("copied_bytes", Arg::UInt(stats.live_bytes)),
                    ("copied_objects", Arg::UInt(stats.copied_objects)),
                    ("cards_scanned", Arg::UInt(stats.cards_scanned)),
                    ("freed_bytes", Arg::UInt(stats.freed_bytes)),
                ],
            );
        }
        stats
    }

    /// All collections so far.
    pub fn gc_log(&self) -> &[GcStats] {
        &self.gc_log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn tiny_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("A", 2, None);
        pb.method(c, "m", 0, 0, vec![crate::op::Op::Return]);
        pb.static_slot("S");
        pb.finish()
    }

    #[test]
    fn server_has_everything_loaded() {
        let p = tiny_program();
        let vm = VmInstance::server(&p, CostModel::default());
        assert!(vm.is_loaded(crate::ids::ClassId(0)));
        assert!(vm.static_fetched(crate::ids::StaticSlot(0)));
        assert!(!vm.checks_remote_refs());
    }

    #[test]
    fn function_starts_empty() {
        let p = tiny_program();
        let mut vm = VmInstance::function(&p, CostModel::default());
        assert!(!vm.is_loaded(crate::ids::ClassId(0)));
        assert!(!vm.static_fetched(crate::ids::StaticSlot(0)));
        assert!(vm.checks_remote_refs());
        vm.load_class(crate::ids::ClassId(0));
        assert!(vm.is_loaded(crate::ids::ClassId(0)));
        assert_eq!(vm.loaded_count(), 1);
    }

    #[test]
    fn native_state_round_trip() {
        let p = tiny_program();
        let mut vm = VmInstance::server(&p, CostModel::default());
        let h = vm.register_native_state(NativeState::Socket { proxy_conn_id: 9 });
        assert_eq!(
            vm.native_state(h),
            Some(&NativeState::Socket { proxy_conn_id: 9 })
        );
        assert_eq!(vm.native_state(h + 1), None);
    }

    #[test]
    fn monitor_ownership_semantics() {
        let p = tiny_program();
        let mut server = VmInstance::server(&p, CostModel::default());
        let mut func = VmInstance::function(&p, CostModel::default());
        let obj = Addr(crate::heap::CLOSURE_BASE);
        // Server owns everything by default; functions own nothing.
        assert!(server.owns_monitor(obj));
        assert!(!func.owns_monitor(obj));
        // Hand off to the function.
        server.revoke_monitor(obj);
        func.grant_monitor(obj);
        assert!(!server.owns_monitor(obj));
        assert!(func.owns_monitor(obj));
        // And back.
        func.revoke_monitor(obj);
        server.grant_monitor(obj);
        assert!(server.owns_monitor(obj));
        assert!(!func.owns_monitor(obj));
    }

    #[test]
    fn dirty_tracking_dedups_and_charges_barrier() {
        let p = tiny_program();
        let mut vm = VmInstance::function(&p, CostModel::default());
        let obj = vm
            .heap
            .alloc_object(crate::ids::ClassId(0), 2, Space::Closure)
            .unwrap();
        let c1 = vm.note_write(obj);
        assert!(!c1.is_zero());
        vm.note_write(obj);
        assert_eq!(vm.dirty_len(), 1, "dirty list deduplicates");
        let d = vm.take_dirty();
        assert_eq!(d, vec![obj]);
        assert_eq!(vm.dirty_len(), 0);
        // After the sync the object can become dirty again.
        vm.note_write(obj);
        assert_eq!(vm.dirty_len(), 1);
    }

    #[test]
    fn barriers_off_is_free() {
        let p = tiny_program();
        let mut vm = VmInstance::server(&p, CostModel::default());
        vm.set_barriers(false);
        let obj = vm
            .heap
            .alloc_object(crate::ids::ClassId(0), 2, Space::Closure)
            .unwrap();
        assert_eq!(vm.note_write(obj), Duration::ZERO);
        assert_eq!(vm.dirty_len(), 0);
        assert_eq!(vm.counters.tracked_writes, 0);
    }

    #[test]
    fn warmup_threshold() {
        let p = tiny_program();
        let mut vm = VmInstance::server(&p, CostModel::default());
        let m = MethodId(0);
        for _ in 0..vm.cost.warm_threshold {
            assert!(vm.note_invocation(m), "still cold");
        }
        assert!(!vm.note_invocation(m), "warm now");
    }

    #[test]
    fn collect_roots_statics() {
        let p = tiny_program();
        let mut vm = VmInstance::server(&p, CostModel::default());
        let obj = vm
            .heap
            .alloc_object(crate::ids::ClassId(0), 2, Space::Alloc)
            .unwrap();
        vm.heap.set(obj, 0, Value::I64(11));
        vm.set_static(crate::ids::StaticSlot(0), Value::Ref(obj));
        let stats = vm.collect(&mut [], &mut []);
        assert_eq!(stats.copied_objects, 1);
        let moved = vm.static_value(crate::ids::StaticSlot(0)).as_ref().unwrap();
        assert_eq!(vm.heap.get(moved, 0), Value::I64(11));
    }
}
