//! The resumable bytecode interpreter.
//!
//! An [`Execution`] owns its frames explicitly (no host-stack recursion), so
//! the dispatch loop can stop at any instruction and hand control back to the
//! embedder with a [`Block`] describing what it needs: a remote object, a
//! missing class, a monitor hand-off, a database round trip, a native
//! fallback, or a GC. The embedder (the BeeHive runtime in `beehive-core`)
//! services the block — possibly after simulated network time — and resumes.
//!
//! Blocks come in two resumption styles:
//!
//! * **retry** blocks ([`Block::RemoteRef`], [`Block::RemoteStatic`],
//!   [`Block::MissingClass`], [`Block::MonitorAcquire`],
//!   [`Block::VolatileSync`], [`Block::GcNeeded`]) leave the program counter
//!   on the faulting instruction with operands restored; the embedder repairs
//!   the instance state (fetches the object, loads the class, grants the
//!   monitor, collects) and calls [`Execution::resume`]; the instruction
//!   re-executes and now succeeds.
//! * **value** blocks ([`Block::Db`], [`Block::NativeFallback`]) consumed
//!   their operands; the embedder computes the result (a query response, the
//!   server-side native result) and delivers it with
//!   [`Execution::resume_with`].

use beehive_sim::Duration;

use crate::class::{MethodBody, PackKind};
use crate::ids::{ClassId, MethodId, NativeId, StaticSlot};
use crate::instance::{EndpointKind, VmInstance};
use crate::natives::{NativeCategory, NativeEffect, NativeState};
use crate::op::Op;
use crate::program::Program;
use crate::value::{Addr, Value};

/// Where a remote reference was loaded from, so the embedder can overwrite it
/// with the fetched local address ("resets the bit to avoid repeated
/// fallbacks", §4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Field `slot` of the object at `obj`.
    Field {
        /// The holding object.
        obj: Addr,
        /// The field slot.
        slot: u32,
    },
    /// Element `idx` of the array at `obj`.
    ArrayElem {
        /// The holding array.
        obj: Addr,
        /// The element index.
        idx: u32,
    },
    /// Local variable `slot` of frame `frame` (0 = outermost).
    Local {
        /// Frame index.
        frame: usize,
        /// Local slot.
        slot: u8,
    },
    /// Static slot.
    Static {
        /// The static slot.
        slot: StaticSlot,
    },
}

/// Why an execution stopped before completing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Block {
    /// A reference load found bit 63 set: the object lives on the server (at
    /// `addr.to_local()`) and must be fetched (data fallback, §4.1).
    RemoteRef {
        /// The remote-marked address (canonical address on the owner).
        addr: Addr,
        /// Where the reference was loaded from.
        prov: Provenance,
    },
    /// A static variable has not been fetched to this endpoint yet.
    RemoteStatic {
        /// The slot.
        slot: StaticSlot,
    },
    /// Code for `class` is not loaded on this endpoint (code fallback).
    MissingClass {
        /// The missing class.
        class: ClassId,
    },
    /// The monitor of `obj` is owned by another endpoint; a JMM
    /// synchronization through the server is required (§4.2).
    MonitorAcquire {
        /// The lock object (local address).
        obj: Addr,
    },
    /// A volatile static access: always a synchronization point on FaaS.
    VolatileSync {
        /// The slot.
        slot: StaticSlot,
        /// `true` for a volatile write.
        is_write: bool,
    },
    /// A database round trip on a connection.
    Db {
        /// The connection object (local address) the round trip uses.
        conn: Addr,
        /// Statement selector.
        query: u16,
        /// Statement argument.
        arg: i64,
        /// `Some(id)`: the connection was packaged with proxy connection `id`
        /// and the request goes directly to the proxy (§3.3). `None`: the
        /// connection's native state is absent here — fall back to the
        /// server, which performs the round trip.
        proxy_conn_id: Option<u64>,
    },
    /// A native invocation that cannot run on this endpoint; the server
    /// executes it and returns the result.
    NativeFallback {
        /// The native method.
        native: NativeId,
        /// Its popped arguments.
        args: Vec<Value>,
    },
    /// The allocation space is full; collect, then resume.
    GcNeeded {
        /// Slots of the failed allocation (diagnostics).
        slots: u32,
    },
}

impl Block {
    /// `true` when the block is resumed with [`Execution::resume`] (retry)
    /// rather than [`Execution::resume_with`].
    pub fn is_retry(&self) -> bool {
        !matches!(self, Block::Db { .. } | Block::NativeFallback { .. })
    }

    /// Stable short name of the block reason (trace-event vocabulary).
    pub fn reason(&self) -> &'static str {
        match self {
            Block::RemoteRef { .. } => "remote_ref",
            Block::RemoteStatic { .. } => "remote_static",
            Block::MissingClass { .. } => "missing_class",
            Block::MonitorAcquire { .. } => "monitor",
            Block::VolatileSync { .. } => "volatile",
            Block::Db { .. } => "db",
            Block::NativeFallback { .. } => "native",
            Block::GcNeeded { .. } => "gc",
        }
    }
}

/// How an interpreter run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The root method returned.
    Done(Value),
    /// The execution blocked; service the block and resume.
    Blocked(Block),
}

/// An interpreter run's outcome plus the CPU time it charged.
#[derive(Clone, Debug)]
pub struct StepResult {
    /// Why the run stopped.
    pub outcome: Outcome,
    /// Virtual CPU time consumed by this run segment.
    pub cpu: Duration,
}

/// One call frame.
#[derive(Clone, Debug)]
pub struct Frame {
    method: MethodId,
    pc: usize,
    locals: Vec<Value>,
    stack: Vec<Value>,
    cold: bool,
}

impl Frame {
    /// The executing method.
    pub fn method(&self) -> MethodId {
        self.method
    }

    /// The current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pending {
    /// Blocked on a retry-style block.
    Retry,
    /// Blocked on a value-style block.
    Value,
}

/// A resumable execution of one root-method invocation.
#[derive(Clone, Debug)]
pub struct Execution {
    frames: Vec<Frame>,
    pending: Option<Pending>,
    pending_push: Option<Value>,
    sync_permit: bool,
    root_warm_checked: bool,
    total_cpu: Duration,
    ops_guard: u64,
}

/// Hard cap on ops per [`Execution::run`] call; exceeding it aborts the
/// process (it indicates a runaway loop in application bytecode).
const MAX_OPS_PER_RUN: u64 = 500_000_000;

impl Execution {
    /// Begin an invocation of `method` with `args`.
    ///
    /// # Panics
    ///
    /// Panics if the argument count does not match the method's parameters or
    /// the method is native.
    pub fn call(method: MethodId, args: Vec<Value>, program: &Program) -> Self {
        let def = program.method(method);
        assert_eq!(
            args.len(),
            def.params as usize,
            "{}: expected {} args, got {}",
            def.name,
            def.params,
            args.len()
        );
        assert!(
            matches!(def.body, MethodBody::Bytecode(_)),
            "cannot root an execution at a native method"
        );
        let mut locals = args;
        locals.resize(def.frame_slots(), Value::Null);
        Execution {
            frames: vec![Frame {
                method,
                pc: 0,
                locals,
                stack: Vec::new(),
                cold: false,
            }],
            pending: None,
            pending_push: None,
            sync_permit: false,
            root_warm_checked: false,
            total_cpu: Duration::ZERO,
            ops_guard: 0,
        }
    }

    /// Resume after a retry-style block has been serviced.
    ///
    /// # Panics
    ///
    /// Panics if the execution is not blocked on a retry-style block.
    pub fn resume(&mut self) {
        assert_eq!(self.pending, Some(Pending::Retry), "not retry-blocked");
        self.pending = None;
    }

    /// Resume after a value-style block, delivering the result.
    ///
    /// # Panics
    ///
    /// Panics if the execution is not blocked on a value-style block.
    pub fn resume_with(&mut self, value: Value) {
        assert_eq!(self.pending, Some(Pending::Value), "not value-blocked");
        self.pending = None;
        self.pending_push = Some(value);
    }

    /// Arm the one-shot permit that lets the next volatile access proceed
    /// (set by the embedder after performing the synchronization).
    pub fn grant_sync_permit(&mut self) {
        self.sync_permit = true;
    }

    /// Current frame depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The frames, outermost first.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Total CPU time charged across all run segments.
    pub fn total_cpu(&self) -> Duration {
        self.total_cpu
    }

    /// Approximate wire size of the stack (for failure-recovery snapshots,
    /// §4.5: "the size of the Java stack and related objects are usually
    /// restricted — several KBs").
    pub fn stack_bytes(&self) -> u64 {
        self.frames
            .iter()
            .map(|f| (f.locals.len() + f.stack.len() + 2) as u64 * 8)
            .sum()
    }

    /// Mutable access to a local slot (for remote-reference fix-ups).
    ///
    /// # Panics
    ///
    /// Panics if the frame or slot is out of range.
    pub fn local_mut(&mut self, frame: usize, slot: u8) -> &mut Value {
        &mut self.frames[frame].locals[slot as usize]
    }

    /// Visit every root slot (locals and operand stacks) for GC.
    pub fn visit_roots(&mut self, visit: &mut dyn FnMut(&mut Value)) {
        for f in &mut self.frames {
            for v in &mut f.locals {
                visit(v);
            }
            for v in &mut f.stack {
                visit(v);
            }
        }
    }

    /// All heap references currently on the stack (for snapshotting).
    pub fn stack_refs(&self) -> Vec<Addr> {
        let mut refs = Vec::new();
        for f in &self.frames {
            for v in f.locals.iter().chain(f.stack.iter()) {
                if let Value::Ref(a) = v {
                    if !a.is_remote() {
                        refs.push(*a);
                    }
                }
            }
        }
        refs
    }

    /// Run until completion or the next block.
    ///
    /// # Panics
    ///
    /// Panics if the execution is still blocked (call [`Execution::resume`] /
    /// [`Execution::resume_with`] first), or on malformed bytecode.
    pub fn run(&mut self, vm: &mut VmInstance, program: &Program) -> StepResult {
        assert!(self.pending.is_none(), "execution is blocked; resume first");
        let mut cpu = Duration::ZERO;

        if beehive_profiler::enabled() {
            // Rebuild the profiler's path from the live frames: executions
            // from different requests interleave on this thread across run
            // segments. The first segment counts the root invocation.
            beehive_profiler::begin_segment(
                vm.profile_lane(),
                vm.profile_instance(),
                self.frames.iter().map(|f| f.method.0),
                !self.root_warm_checked,
            );
        }
        if let Some(v) = self.pending_push.take() {
            self.top_frame().stack.push(v);
        }
        if !self.root_warm_checked {
            self.root_warm_checked = true;
            let root = self.frames[0].method;
            self.frames[0].cold = vm.note_invocation(root);
        }

        let outcome = loop {
            self.ops_guard += 1;
            assert!(
                self.ops_guard < MAX_OPS_PER_RUN,
                "runaway execution: {} ops without completing",
                MAX_OPS_PER_RUN
            );
            match self.step(vm, program, &mut cpu) {
                StepOutcome::Continue => {}
                StepOutcome::Done(v) => break Outcome::Done(v),
                StepOutcome::Block(b) => {
                    // Function-side only: a server VM blocks on DB/GC as part
                    // of ordinary execution, but a function VM blocking is
                    // the start of a Semi-FaaS fallback round trip.
                    if vm.kind() == EndpointKind::Function && beehive_telemetry::enabled() {
                        beehive_telemetry::instant(
                            vm.trace_track(),
                            "block",
                            &[("reason", beehive_telemetry::Arg::Str(b.reason()))],
                        );
                    }
                    self.pending = Some(if b.is_retry() {
                        Pending::Retry
                    } else {
                        Pending::Value
                    });
                    break Outcome::Blocked(b);
                }
            }
        };
        self.ops_guard = 0;
        self.total_cpu += cpu;
        beehive_profiler::end_segment(cpu);
        StepResult { outcome, cpu }
    }

    fn top_frame(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("no frames")
    }

    fn step(&mut self, vm: &mut VmInstance, program: &Program, cpu: &mut Duration) -> StepOutcome {
        vm.counters.ops += 1;
        let depth = self.frames.len();
        let cost = vm.cost;
        let frame = self.frames.last_mut().expect("no frames");
        let cold = frame.cold;
        let method = program.method(frame.method);
        let code = match &method.body {
            MethodBody::Bytecode(code) => code,
            MethodBody::Native(_) => unreachable!("native frames are never pushed"),
        };
        let op = code
            .get(frame.pc)
            .copied()
            .unwrap_or_else(|| panic!("pc {} out of range in {}", frame.pc, method.name));

        let charge = move |cpu: &mut Duration, base: Duration| {
            *cpu += if cold {
                base * cost.cold_multiplier as u64
            } else {
                base
            };
        };

        macro_rules! pop {
            () => {
                frame.stack.pop().expect("operand stack underflow")
            };
        }
        macro_rules! pop_i64 {
            () => {
                pop!().as_i64().expect("expected integer operand")
            };
        }
        macro_rules! pop_ref {
            () => {
                match pop!() {
                    Value::Ref(a) => a,
                    other => panic!("expected reference operand, got {other:?}"),
                }
            };
        }

        match op {
            Op::ConstI(x) => {
                charge(cpu, cost.simple_op);
                frame.stack.push(Value::I64(x));
                frame.pc += 1;
            }
            Op::ConstNull => {
                charge(cpu, cost.simple_op);
                frame.stack.push(Value::Null);
                frame.pc += 1;
            }
            Op::Load(slot) => {
                charge(cpu, cost.simple_op);
                let v = frame.locals[slot as usize];
                if vm.checks_remote_refs() {
                    if let Value::Ref(a) = v {
                        if a.is_remote() {
                            return StepOutcome::Block(Block::RemoteRef {
                                addr: a,
                                prov: Provenance::Local {
                                    frame: depth - 1,
                                    slot,
                                },
                            });
                        }
                    }
                }
                frame.stack.push(v);
                frame.pc += 1;
            }
            Op::Store(slot) => {
                charge(cpu, cost.simple_op);
                let v = pop!();
                frame.locals[slot as usize] = v;
                frame.pc += 1;
            }
            Op::Dup => {
                charge(cpu, cost.simple_op);
                let v = *frame.stack.last().expect("stack underflow");
                frame.stack.push(v);
                frame.pc += 1;
            }
            Op::Pop => {
                charge(cpu, cost.simple_op);
                pop!();
                frame.pc += 1;
            }
            Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Rem | Op::CmpLt => {
                charge(cpu, cost.simple_op);
                let b = pop_i64!();
                let a = pop_i64!();
                let r = match op {
                    Op::Add => a.wrapping_add(b),
                    Op::Sub => a.wrapping_sub(b),
                    Op::Mul => a.wrapping_mul(b),
                    Op::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    Op::Rem => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    Op::CmpLt => (a < b) as i64,
                    _ => unreachable!(),
                };
                frame.stack.push(Value::I64(r));
                frame.pc += 1;
            }
            Op::CmpEq => {
                charge(cpu, cost.simple_op);
                let b = pop!();
                let a = pop!();
                frame.stack.push(Value::I64((a == b) as i64));
                frame.pc += 1;
            }
            Op::Jump(target) => {
                charge(cpu, cost.simple_op);
                frame.pc = target as usize;
            }
            Op::JumpIfZero(target) => {
                charge(cpu, cost.simple_op);
                let v = pop!();
                let zero = matches!(v, Value::Null | Value::I64(0));
                frame.pc = if zero { target as usize } else { frame.pc + 1 };
            }
            Op::JumpIfNonZero(target) => {
                charge(cpu, cost.simple_op);
                let v = pop!();
                let zero = matches!(v, Value::Null | Value::I64(0));
                frame.pc = if zero { frame.pc + 1 } else { target as usize };
            }
            Op::Call(target) => {
                charge(cpu, cost.call_op);
                return self.do_call(vm, program, target, cpu);
            }
            Op::CallStub(stub) => {
                charge(cpu, cost.call_op + cost.simple_op);
                // Resolve the target *before* consuming the selector so a
                // missing-code block can retry the instruction intact.
                let sel = frame
                    .stack
                    .last()
                    .and_then(|v| v.as_i64())
                    .expect("stub selector must be an integer");
                let targets = &program.stub(stub).targets;
                let target = targets[sel.unsigned_abs() as usize % targets.len()];
                if !vm.is_loaded(program.method(target).class) {
                    return StepOutcome::Block(Block::MissingClass {
                        class: program.method(target).class,
                    });
                }
                pop!();
                return self.do_call(vm, program, target, cpu);
            }
            Op::Return => {
                charge(cpu, cost.call_op);
                return self.do_return(Value::Null, *cpu);
            }
            Op::ReturnVal => {
                charge(cpu, cost.call_op);
                let v = pop!();
                return self.do_return(v, *cpu);
            }
            Op::New(class) => {
                charge(cpu, cost.alloc_op);
                if !vm.is_loaded(class) {
                    return StepOutcome::Block(Block::MissingClass { class });
                }
                let slots = program.class(class).field_count as u32;
                match vm.heap.alloc_object(class, slots, vm.alloc_target) {
                    Some(addr) => {
                        vm.counters.allocs += 1;
                        frame.stack.push(Value::Ref(addr));
                        frame.pc += 1;
                    }
                    None => return StepOutcome::Block(Block::GcNeeded { slots }),
                }
            }
            Op::NewArray => {
                charge(cpu, cost.alloc_op);
                let len = pop_i64!();
                assert!(len >= 0, "negative array length {len}");
                match vm.heap.alloc_array(len as u32, vm.alloc_target) {
                    Some(addr) => {
                        vm.counters.allocs += 1;
                        frame.stack.push(Value::Ref(addr));
                        frame.pc += 1;
                    }
                    None => {
                        frame.stack.push(Value::I64(len)); // restore operand
                        return StepOutcome::Block(Block::GcNeeded { slots: len as u32 });
                    }
                }
            }
            Op::GetField(slot) => {
                charge(cpu, cost.field_op);
                let obj = pop_ref!();
                let v = vm.heap.get(obj, slot as u32);
                if vm.checks_remote_refs() {
                    if let Value::Ref(a) = v {
                        if a.is_remote() {
                            frame.stack.push(Value::Ref(obj)); // restore operand
                            return StepOutcome::Block(Block::RemoteRef {
                                addr: a,
                                prov: Provenance::Field {
                                    obj,
                                    slot: slot as u32,
                                },
                            });
                        }
                    }
                }
                frame.stack.push(v);
                frame.pc += 1;
            }
            Op::PutField(slot) => {
                charge(cpu, cost.field_op);
                let v = pop!();
                let obj = pop_ref!();
                vm.heap.set(obj, slot as u32, v);
                *cpu += vm.note_write(obj);
                frame.pc += 1;
            }
            Op::ArrLoad => {
                charge(cpu, cost.field_op);
                let idx = pop_i64!();
                let arr = pop_ref!();
                let v = vm.heap.get(arr, idx as u32);
                if vm.checks_remote_refs() {
                    if let Value::Ref(a) = v {
                        if a.is_remote() {
                            frame.stack.push(Value::Ref(arr));
                            frame.stack.push(Value::I64(idx));
                            return StepOutcome::Block(Block::RemoteRef {
                                addr: a,
                                prov: Provenance::ArrayElem {
                                    obj: arr,
                                    idx: idx as u32,
                                },
                            });
                        }
                    }
                }
                frame.stack.push(v);
                frame.pc += 1;
            }
            Op::ArrStore => {
                charge(cpu, cost.field_op);
                let v = pop!();
                let idx = pop_i64!();
                let arr = pop_ref!();
                vm.heap.set(arr, idx as u32, v);
                *cpu += vm.note_write(arr);
                frame.pc += 1;
            }
            Op::ArrLen => {
                charge(cpu, cost.simple_op);
                let arr = pop_ref!();
                let len = vm.heap.len_of(arr);
                frame.stack.push(Value::I64(len as i64));
                frame.pc += 1;
            }
            Op::GetStatic(slot) => {
                charge(cpu, cost.field_op);
                if !vm.static_fetched(slot) {
                    return StepOutcome::Block(Block::RemoteStatic { slot });
                }
                let v = vm.static_value(slot);
                if vm.checks_remote_refs() {
                    if let Value::Ref(a) = v {
                        if a.is_remote() {
                            return StepOutcome::Block(Block::RemoteRef {
                                addr: a,
                                prov: Provenance::Static { slot },
                            });
                        }
                    }
                }
                frame.stack.push(v);
                frame.pc += 1;
            }
            Op::PutStatic(slot) => {
                charge(cpu, cost.field_op);
                if !vm.static_fetched(slot) {
                    return StepOutcome::Block(Block::RemoteStatic { slot });
                }
                let v = pop!();
                vm.set_static(slot, v);
                frame.pc += 1;
            }
            Op::GetStaticVolatile(slot) | Op::PutStaticVolatile(slot) => {
                charge(cpu, cost.monitor_op);
                let is_write = matches!(op, Op::PutStaticVolatile(_));
                if vm.kind() == EndpointKind::Function && !self.sync_permit {
                    return StepOutcome::Block(Block::VolatileSync { slot, is_write });
                }
                self.sync_permit = false;
                let frame = self.frames.last_mut().expect("no frames");
                if !vm.static_fetched(slot) {
                    return StepOutcome::Block(Block::RemoteStatic { slot });
                }
                if is_write {
                    let v = frame.stack.pop().expect("operand stack underflow");
                    vm.set_static(slot, v);
                } else {
                    frame.stack.push(vm.static_value(slot));
                }
                frame.pc += 1;
            }
            Op::MonitorEnter => {
                charge(cpu, cost.monitor_op);
                let obj = pop_ref!();
                vm.counters.monitor_enters += 1;
                if !vm.owns_monitor(obj) {
                    frame.stack.push(Value::Ref(obj)); // restore operand
                    return StepOutcome::Block(Block::MonitorAcquire { obj });
                }
                frame.pc += 1;
            }
            Op::MonitorExit => {
                charge(cpu, cost.monitor_op);
                let _obj = pop_ref!();
                frame.pc += 1;
            }
            Op::NativeCall(native) => {
                return self.do_native(vm, program, native, cpu);
            }
            Op::Work(nanos) => {
                charge(cpu, Duration::from_nanos(nanos as u64));
                frame.pc += 1;
            }
            Op::DbCall { conn, query } => {
                charge(cpu, cost.call_op);
                let conn_v = frame.locals[conn as usize];
                let conn_obj = match conn_v {
                    Value::Ref(a) if a.is_remote() && vm.checks_remote_refs() => {
                        return StepOutcome::Block(Block::RemoteRef {
                            addr: a,
                            prov: Provenance::Local {
                                frame: depth - 1,
                                slot: conn,
                            },
                        });
                    }
                    Value::Ref(a) => a,
                    other => panic!("DbCall connection local holds {other:?}"),
                };
                let arg = pop_i64!();
                let class = vm.heap.class_of(conn_obj);
                let spec = program
                    .class(class)
                    .packageable
                    .unwrap_or_else(|| panic!("connection class {class:?} is not packageable"));
                assert_eq!(spec.kind, PackKind::Socket, "DbCall on non-socket class");
                let handle = vm.heap.get(conn_obj, spec.handle_slot as u32);
                let proxy_conn_id = match handle {
                    Value::I64(h) => match vm.native_state(h as u64) {
                        Some(NativeState::Socket { proxy_conn_id }) => Some(*proxy_conn_id),
                        _ => None,
                    },
                    _ => None,
                };
                vm.counters.db_calls += 1;
                // One DB round trip = write + two reads on the socket
                // (request, response header, response body): matches the
                // ~3 network natives per round of Table 2.
                vm.counters.natives.bump(NativeCategory::Network);
                vm.counters.natives.bump(NativeCategory::Network);
                vm.counters.natives.bump(NativeCategory::Network);
                frame.pc += 1;
                return StepOutcome::Block(Block::Db {
                    conn: conn_obj,
                    query,
                    arg,
                    proxy_conn_id,
                });
            }
        }
        StepOutcome::Continue
    }

    fn do_call(
        &mut self,
        vm: &mut VmInstance,
        program: &Program,
        target: MethodId,
        cpu: &mut Duration,
    ) -> StepOutcome {
        let def = program.method(target);
        if !vm.is_loaded(def.class) {
            return StepOutcome::Block(Block::MissingClass { class: def.class });
        }
        match &def.body {
            MethodBody::Native(native) => {
                // Natives execute inline, no frame.
                let native = *native;
                let r = self.do_native_inner(vm, program, native, cpu);
                if matches!(r, StepOutcome::Continue) {
                    // do_native_inner advanced nothing; bump pc here.
                    self.top_frame().pc += 1;
                }
                r
            }
            MethodBody::Bytecode(_) => {
                let cold = vm.note_invocation(target);
                let params = def.params as usize;
                let frame = self.frames.last_mut().expect("no frames");
                let at = frame.stack.len().checked_sub(params).unwrap_or_else(|| {
                    panic!("stack underflow calling {} ({params} params)", def.name)
                });
                let mut locals: Vec<Value> = frame.stack.split_off(at);
                // The caller resumes after the call once the callee returns.
                frame.pc += 1;
                locals.resize(def.frame_slots(), Value::Null);
                self.frames.push(Frame {
                    method: target,
                    pc: 0,
                    locals,
                    stack: Vec::new(),
                    cold,
                });
                beehive_profiler::push(target.0, *cpu);
                StepOutcome::Continue
            }
        }
    }

    fn do_return(&mut self, value: Value, cpu: Duration) -> StepOutcome {
        beehive_profiler::pop(cpu);
        self.frames.pop();
        match self.frames.last_mut() {
            None => StepOutcome::Done(value),
            Some(caller) => {
                caller.stack.push(value);
                StepOutcome::Continue
            }
        }
    }

    fn do_native(
        &mut self,
        vm: &mut VmInstance,
        program: &Program,
        native: NativeId,
        cpu: &mut Duration,
    ) -> StepOutcome {
        let r = self.do_native_inner(vm, program, native, cpu);
        if matches!(r, StepOutcome::Continue) {
            self.top_frame().pc += 1;
        }
        r
    }

    /// Executes a native; on `Continue` the caller advances pc. Value-style
    /// blocks advance pc themselves (their result is pushed on resume).
    fn do_native_inner(
        &mut self,
        vm: &mut VmInstance,
        program: &Program,
        native: NativeId,
        cpu: &mut Duration,
    ) -> StepOutcome {
        let def = program.native(native);
        let cold = self.frames.last().expect("no frames").cold;
        *cpu += if cold {
            def.cost * vm.cost.cold_multiplier as u64
        } else {
            def.cost
        };
        vm.counters.natives.bump(def.category);

        let is_function = vm.kind() == EndpointKind::Function;
        let frame = self.frames.last_mut().expect("no frames");

        // Non-offloadable natives always fall back from FaaS.
        if is_function && def.category == NativeCategory::NonOffloadable {
            let n = def.effect.arity();
            let at = frame.stack.len() - n;
            let args = frame.stack.split_off(at);
            frame.pc += 1;
            return StepOutcome::Block(Block::NativeFallback { native, args });
        }

        match def.effect {
            NativeEffect::Nop => {
                for _ in 0..def.effect.arity() {
                    frame.stack.pop().expect("operand stack underflow");
                }
                frame.stack.push(Value::Null);
                StepOutcome::Continue
            }
            NativeEffect::PushToken(t) => {
                frame.stack.push(Value::I64(t));
                StepOutcome::Continue
            }
            NativeEffect::ArrayCopy => {
                let len = frame.stack.pop().and_then(Value::as_i64).expect("len");
                let dst_pos = frame.stack.pop().and_then(Value::as_i64).expect("dstPos");
                let dst = frame.stack.pop().and_then(Value::as_ref).expect("dst");
                let src_pos = frame.stack.pop().and_then(Value::as_i64).expect("srcPos");
                let src = frame.stack.pop().and_then(Value::as_ref).expect("src");
                let src_len = vm.heap.len_of(src) as i64;
                let dst_len = vm.heap.len_of(dst) as i64;
                let n = len.min(src_len - src_pos).min(dst_len - dst_pos).max(0);
                for i in 0..n {
                    let v = vm.heap.get(src, (src_pos + i) as u32);
                    vm.heap.set(dst, (dst_pos + i) as u32, v);
                }
                *cpu += vm.note_write(dst);
                frame.stack.push(Value::Null);
                StepOutcome::Continue
            }
            NativeEffect::ReflectInvoke => {
                let obj = match frame.stack.last().copied() {
                    Some(Value::Ref(a)) => a,
                    other => panic!("ReflectInvoke expects an object, got {other:?}"),
                };
                let class = vm.heap.class_of(obj);
                let spec = program.class(class).packageable;
                let resolved = spec.and_then(|s| {
                    vm.heap
                        .get(obj, s.handle_slot as u32)
                        .as_i64()
                        .and_then(|h| vm.native_state(h as u64))
                        .cloned()
                });
                match resolved {
                    Some(NativeState::MethodMeta { method }) => {
                        frame.stack.pop();
                        frame.stack.push(Value::I64(method.0 as i64));
                        StepOutcome::Continue
                    }
                    Some(_) => {
                        frame.stack.pop();
                        frame.stack.push(Value::I64(0));
                        StepOutcome::Continue
                    }
                    None => {
                        // Hidden state absent on this endpoint: fall back.
                        let arg = frame.stack.pop().expect("arg");
                        frame.pc += 1;
                        StepOutcome::Block(Block::NativeFallback {
                            native,
                            args: vec![arg],
                        })
                    }
                }
            }
            NativeEffect::SocketIo => {
                let obj = match frame.stack.last().copied() {
                    Some(Value::Ref(a)) => a,
                    other => panic!("SocketIo expects a connection object, got {other:?}"),
                };
                let class = vm.heap.class_of(obj);
                let present = program.class(class).packageable.is_some_and(|s| {
                    vm.heap
                        .get(obj, s.handle_slot as u32)
                        .as_i64()
                        .is_some_and(|h| vm.native_state(h as u64).is_some())
                });
                if present || !is_function {
                    frame.stack.pop();
                    frame.stack.push(Value::Null);
                    StepOutcome::Continue
                } else {
                    let arg = frame.stack.pop().expect("arg");
                    frame.pc += 1;
                    StepOutcome::Block(Block::NativeFallback {
                        native,
                        args: vec![arg],
                    })
                }
            }
            NativeEffect::FileAccess => {
                if is_function {
                    frame.pc += 1;
                    StepOutcome::Block(Block::NativeFallback {
                        native,
                        args: Vec::new(),
                    })
                } else {
                    frame.stack.push(Value::I64(0));
                    StepOutcome::Continue
                }
            }
        }
    }
}

enum StepOutcome {
    Continue,
    Done(Value),
    Block(Block),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::class::PackSpec;
    use crate::heap::Space;
    use crate::instance::CostModel;
    use crate::program::ProgramBuilder;

    fn run_to_done(
        exec: &mut Execution,
        vm: &mut VmInstance,
        program: &Program,
    ) -> (Value, Duration) {
        let r = exec.run(vm, program);
        match r.outcome {
            Outcome::Done(v) => (v, r.cpu),
            Outcome::Blocked(b) => panic!("unexpected block: {b:?}"),
        }
    }

    #[test]
    fn arithmetic_program() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("A", 0, None);
        let mut a = Asm::new();
        // (10 + 5) * 3 - 1 = 44
        a.const_i(10)
            .const_i(5)
            .add()
            .const_i(3)
            .mul()
            .const_i(1)
            .sub()
            .return_val();
        let m = pb.method(c, "calc", 0, 0, a.finish());
        let p = pb.finish();
        let mut vm = VmInstance::server(&p, CostModel::default());
        let mut e = Execution::call(m, vec![], &p);
        let (v, cpu) = run_to_done(&mut e, &mut vm, &p);
        assert_eq!(v, Value::I64(44));
        assert!(cpu > Duration::ZERO);
    }

    #[test]
    fn locals_and_branches_compute_loops() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("A", 0, None);
        // sum = 0; for i in 0..n { sum += i } ; return sum
        let mut a = Asm::new();
        a.const_i(0).store(1); // sum
        a.const_i(0).store(2); // i
        let top = a.here();
        a.load(2).load(0).cmp_lt();
        let exit = a.jump_if_zero_fwd();
        a.load(1).load(2).add().store(1);
        a.load(2).const_i(1).add().store(2);
        a.jump_back(top);
        a.bind(exit);
        a.load(1).return_val();
        let m = pb.method(c, "sum", 1, 2, a.finish());
        let p = pb.finish();
        let mut vm = VmInstance::server(&p, CostModel::default());
        let mut e = Execution::call(m, vec![Value::I64(10)], &p);
        let (v, _) = run_to_done(&mut e, &mut vm, &p);
        assert_eq!(v, Value::I64(45));
    }

    #[test]
    fn nested_calls_and_returns() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("A", 0, None);
        let mut inner = Asm::new();
        inner.load(0).load(0).mul().return_val();
        let sq = pb.method(c, "sq", 1, 0, inner.finish());
        let mut outer = Asm::new();
        outer
            .const_i(6)
            .call(sq)
            .const_i(4)
            .call(sq)
            .add()
            .return_val();
        let m = pb.method(c, "m", 0, 0, outer.finish());
        let p = pb.finish();
        let mut vm = VmInstance::server(&p, CostModel::default());
        let mut e = Execution::call(m, vec![], &p);
        let (v, _) = run_to_done(&mut e, &mut vm, &p);
        assert_eq!(v, Value::I64(52));
    }

    #[test]
    fn objects_fields_and_arrays() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("Box", 2, None);
        let mut a = Asm::new();
        // b = new Box; b.f0 = 7; arr = new[3]; arr[2] = b.f0 + 1; return arr[2] + arr.len
        a.new_obj(c).store(0);
        a.load(0).const_i(7).put_field(0);
        a.const_i(3).new_array().store(1);
        a.load(1)
            .const_i(2)
            .load(0)
            .get_field(0)
            .const_i(1)
            .add()
            .arr_store();
        a.load(1).const_i(2).arr_load();
        a.load(1).arr_len().add().return_val();
        let m = pb.method(c, "m", 0, 2, a.finish());
        let p = pb.finish();
        let mut vm = VmInstance::server(&p, CostModel::default());
        let mut e = Execution::call(m, vec![], &p);
        let (v, _) = run_to_done(&mut e, &mut vm, &p);
        assert_eq!(v, Value::I64(11));
    }

    #[test]
    fn stub_dispatch_selects_by_selector() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("A", 0, None);
        let mut m1 = Asm::new();
        m1.const_i(100).return_val();
        let t1 = pb.method(c, "t1", 0, 0, m1.finish());
        let mut m2 = Asm::new();
        m2.const_i(200).return_val();
        let t2 = pb.method(c, "t2", 0, 0, m2.finish());
        let stub = pb.stub("MethodInterceptor", vec![t1, t2]);
        let mut a = Asm::new();
        a.const_i(1)
            .call_stub(stub)
            .const_i(0)
            .call_stub(stub)
            .add()
            .return_val();
        let m = pb.method(c, "m", 0, 0, a.finish());
        let p = pb.finish();
        let mut vm = VmInstance::server(&p, CostModel::default());
        let mut e = Execution::call(m, vec![], &p);
        let (v, _) = run_to_done(&mut e, &mut vm, &p);
        assert_eq!(v, Value::I64(300));
    }

    #[test]
    fn missing_class_blocks_and_resumes_on_function() {
        let mut pb = ProgramBuilder::new();
        let c_root = pb.user_class("Root", 0, None);
        let c_dep = pb.framework_class("Dep", 0);
        let mut dep = Asm::new();
        dep.const_i(5).return_val();
        let dep_m = pb.method(c_dep, "five", 0, 0, dep.finish());
        let mut a = Asm::new();
        a.call(dep_m).return_val();
        let m = pb.method(c_root, "m", 0, 0, a.finish());
        let p = pb.finish();
        let mut vm = VmInstance::function(&p, CostModel::default());
        vm.load_class(c_root);
        let mut e = Execution::call(m, vec![], &p);
        let r = e.run(&mut vm, &p);
        assert_eq!(
            r.outcome,
            Outcome::Blocked(Block::MissingClass { class: c_dep })
        );
        vm.load_class(c_dep);
        e.resume();
        let (v, _) = run_to_done(&mut e, &mut vm, &p);
        assert_eq!(v, Value::I64(5));
    }

    #[test]
    fn remote_field_blocks_with_provenance_and_resumes_after_fixup() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("Node", 1, None);
        let mut a = Asm::new();
        // return arg.f0.f0
        a.load(0).get_field(0).get_field(0).return_val();
        let m = pb.method(c, "m", 1, 0, a.finish());
        let p = pb.finish();
        let mut vm = VmInstance::function(&p, CostModel::default());
        vm.load_class(c);

        // Closure: local object `a` whose field holds a remote ref (as the
        // server's closure construction would leave it, §4.1).
        let local = vm.heap.alloc_object(c, 1, Space::Alloc).unwrap();
        let remote_canonical = Addr(crate::heap::CLOSURE_BASE + 0x100);
        vm.heap
            .set(local, 0, Value::Ref(remote_canonical.to_remote()));

        let mut e = Execution::call(m, vec![Value::Ref(local)], &p);
        let r = e.run(&mut vm, &p);
        let (addr, prov) = match r.outcome {
            Outcome::Blocked(Block::RemoteRef { addr, prov }) => (addr, prov),
            other => panic!("expected RemoteRef, got {other:?}"),
        };
        assert!(addr.is_remote());
        assert_eq!(addr.to_local(), remote_canonical);
        assert_eq!(
            prov,
            Provenance::Field {
                obj: local,
                slot: 0
            }
        );

        // "Server" ships the object; embedder copies it locally and clears
        // the remote bit in the provenance slot.
        let fetched = vm.heap.alloc_object(c, 1, Space::Closure).unwrap();
        vm.heap.set(fetched, 0, Value::I64(77));
        vm.heap.set(local, 0, Value::Ref(fetched));
        e.resume();
        let (v, _) = run_to_done(&mut e, &mut vm, &p);
        assert_eq!(v, Value::I64(77));
    }

    #[test]
    fn server_never_checks_remote_bits() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("Node", 1, None);
        let mut a = Asm::new();
        a.load(0).get_field(0).return_val();
        let m = pb.method(c, "m", 1, 0, a.finish());
        let p = pb.finish();
        let mut vm = VmInstance::server(&p, CostModel::default());
        let obj = vm.heap.alloc_object(c, 1, Space::Alloc).unwrap();
        vm.heap.set(obj, 0, Value::I64(3));
        let mut e = Execution::call(m, vec![Value::Ref(obj)], &p);
        let (v, _) = run_to_done(&mut e, &mut vm, &p);
        assert_eq!(v, Value::I64(3));
    }

    #[test]
    fn monitor_acquire_blocks_until_granted() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("Shared", 1, None);
        let mut a = Asm::new();
        // synchronized(arg) { arg.f0 += 1 } ; return arg.f0
        a.load(0).monitor_enter();
        a.load(0).load(0).get_field(0).const_i(1).add().put_field(0);
        a.load(0).monitor_exit();
        a.load(0).get_field(0).return_val();
        let m = pb.method(c, "inc", 1, 0, a.finish());
        let p = pb.finish();
        let mut vm = VmInstance::function(&p, CostModel::default());
        vm.load_class(c);
        let obj = vm.heap.alloc_object(c, 1, Space::Closure).unwrap();
        vm.heap.set(obj, 0, Value::I64(10));
        let mut e = Execution::call(m, vec![Value::Ref(obj)], &p);
        let r = e.run(&mut vm, &p);
        assert_eq!(r.outcome, Outcome::Blocked(Block::MonitorAcquire { obj }));
        vm.grant_monitor(obj);
        e.resume();
        let (v, _) = run_to_done(&mut e, &mut vm, &p);
        assert_eq!(v, Value::I64(11));
        // The object was written under the lock: it is on the dirty list.
        assert_eq!(vm.take_dirty(), vec![obj]);
    }

    #[test]
    fn db_call_via_packaged_connection() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("Handler", 0, None);
        let sock = pb.jdk_class("SocketImpl", 1);
        pb.make_packageable(
            sock,
            PackSpec {
                handle_slot: 0,
                kind: PackKind::Socket,
                marshalled_bytes: 64,
            },
        );
        let mut a = Asm::new();
        // conn in local 0; issue query 7 with arg 42, return result + 1
        a.const_i(42).db_call(0, 7).const_i(1).add().return_val();
        let m = pb.method(c, "q", 1, 0, a.finish());
        let p = pb.finish();

        let mut vm = VmInstance::function(&p, CostModel::default());
        vm.load_class(c);
        vm.load_class(sock);
        let conn = vm.heap.alloc_object(sock, 1, Space::Closure).unwrap();
        let handle = vm.register_native_state(NativeState::Socket { proxy_conn_id: 123 });
        vm.heap.set(conn, 0, Value::I64(handle as i64));

        let mut e = Execution::call(m, vec![Value::Ref(conn)], &p);
        let r = e.run(&mut vm, &p);
        assert_eq!(
            r.outcome,
            Outcome::Blocked(Block::Db {
                conn,
                query: 7,
                arg: 42,
                proxy_conn_id: Some(123)
            })
        );
        assert_eq!(vm.counters.db_calls, 1);
        assert_eq!(vm.counters.natives.network, 3);
        e.resume_with(Value::I64(1000));
        let (v, _) = run_to_done(&mut e, &mut vm, &p);
        assert_eq!(v, Value::I64(1001));
    }

    #[test]
    fn db_call_without_packaged_state_requests_fallback() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("Handler", 0, None);
        let sock = pb.jdk_class("SocketImpl", 1);
        pb.make_packageable(
            sock,
            PackSpec {
                handle_slot: 0,
                kind: PackKind::Socket,
                marshalled_bytes: 64,
            },
        );
        let mut a = Asm::new();
        a.const_i(1).db_call(0, 2).return_val();
        let m = pb.method(c, "q", 1, 0, a.finish());
        let p = pb.finish();

        let mut vm = VmInstance::function(&p, CostModel::default());
        vm.load_class(c);
        vm.load_class(sock);
        let conn = vm.heap.alloc_object(sock, 1, Space::Closure).unwrap();
        // Handle value copied from the server, but no native state here.
        vm.heap.set(conn, 0, Value::I64(555));

        let mut e = Execution::call(m, vec![Value::Ref(conn)], &p);
        let r = e.run(&mut vm, &p);
        assert_eq!(
            r.outcome,
            Outcome::Blocked(Block::Db {
                conn,
                query: 2,
                arg: 1,
                proxy_conn_id: None
            })
        );
    }

    #[test]
    fn gc_needed_block_allows_collection_and_retry() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("Obj", 4, None);
        let mut a = Asm::new();
        // allocate `n` objects in a loop, keeping none
        a.const_i(0).store(1);
        let top = a.here();
        a.load(1).load(0).cmp_lt();
        let exit = a.jump_if_zero_fwd();
        a.new_obj(c).pop();
        a.load(1).const_i(1).add().store(1);
        a.jump_back(top);
        a.bind(exit);
        a.const_i(1).return_val();
        let m = pb.method(c, "churn", 1, 1, a.finish());
        let p = pb.finish();

        let mut vm = VmInstance::function(&p, CostModel::default());
        vm.load_class(c);
        // Shrink the heap drastically by exhausting it first.
        let mut e = Execution::call(m, vec![Value::I64(300_000)], &p);
        let mut gcs = 0;
        loop {
            let r = e.run(&mut vm, &p);
            match r.outcome {
                Outcome::Done(v) => {
                    assert_eq!(v, Value::I64(1));
                    break;
                }
                Outcome::Blocked(Block::GcNeeded { .. }) => {
                    gcs += 1;
                    vm.collect(&mut [&mut e], &mut []);
                    e.resume();
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(gcs >= 1, "the loop must have triggered at least one GC");
        assert_eq!(vm.gc_log().len(), gcs);
    }

    #[test]
    fn natives_run_or_fall_back_by_category() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("A", 0, None);
        let arraycopy = pb.native(
            "System.arraycopy",
            NativeCategory::PureOnHeap,
            Duration::from_nanos(50),
            NativeEffect::ArrayCopy,
        );
        let current_thread = pb.native(
            "Thread.currentThread",
            NativeCategory::Stateless,
            Duration::from_nanos(10),
            NativeEffect::PushToken(1),
        );
        let file_read = pb.native(
            "FileInputStream.read0",
            NativeCategory::NonOffloadable,
            Duration::from_micros(2),
            NativeEffect::FileAccess,
        );
        let mut a = Asm::new();
        // copy arr1[0..2] into arr2[1..3]; read file; return arr2[2] + token
        a.const_i(4).new_array().store(0);
        a.const_i(4).new_array().store(1);
        a.load(0).const_i(0).const_i(21).arr_store();
        a.load(0).const_i(1).const_i(2).arr_store();
        a.load(0)
            .const_i(0)
            .load(1)
            .const_i(1)
            .const_i(2)
            .native(arraycopy)
            .pop();
        a.native(file_read).pop();
        a.load(1).const_i(2).arr_load();
        a.native(current_thread).add().return_val();
        let m = pb.method(c, "m", 0, 2, a.finish());
        let p = pb.finish();

        // On the server: runs straight through.
        let mut vm = VmInstance::server(&p, CostModel::default());
        let mut e = Execution::call(m, vec![], &p);
        let (v, _) = run_to_done(&mut e, &mut vm, &p);
        assert_eq!(v, Value::I64(3)); // arr2[2] = 2, token = 1
        assert_eq!(vm.counters.natives.pure_on_heap, 1);
        assert_eq!(vm.counters.natives.stateless, 1);
        assert_eq!(vm.counters.natives.non_offloadable, 1);

        // On a function: the file access falls back.
        let mut vmf = VmInstance::function(&p, CostModel::default());
        vmf.load_class(c);
        let mut ef = Execution::call(m, vec![], &p);
        let r = ef.run(&mut vmf, &p);
        match r.outcome {
            Outcome::Blocked(Block::NativeFallback { native, .. }) => {
                assert_eq!(native, file_read);
            }
            other => panic!("expected NativeFallback, got {other:?}"),
        }
        ef.resume_with(Value::I64(0));
        let (v, _) = run_to_done(&mut ef, &mut vmf, &p);
        assert_eq!(v, Value::I64(3));
    }

    #[test]
    fn reflect_invoke_uses_packaged_metadata() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("A", 0, None);
        let method_class = pb.jdk_class("java.lang.reflect.Method", 1);
        pb.make_packageable(
            method_class,
            PackSpec {
                handle_slot: 0,
                kind: PackKind::MethodMeta,
                marshalled_bytes: 48,
            },
        );
        let invoke0 = pb.native(
            "MethodAccessor.invoke0",
            NativeCategory::HiddenState,
            Duration::from_nanos(200),
            NativeEffect::ReflectInvoke,
        );
        let mut a = Asm::new();
        a.load(0).native(invoke0).return_val();
        let m = pb.method(c, "m", 1, 0, a.finish());
        let p = pb.finish();

        // Function with packaged state: runs locally.
        let mut vm = VmInstance::function(&p, CostModel::default());
        vm.load_class(c);
        vm.load_class(method_class);
        let mobj = vm
            .heap
            .alloc_object(method_class, 1, Space::Closure)
            .unwrap();
        let h = vm.register_native_state(NativeState::MethodMeta {
            method: MethodId(9),
        });
        vm.heap.set(mobj, 0, Value::I64(h as i64));
        let mut e = Execution::call(m, vec![Value::Ref(mobj)], &p);
        let (v, _) = run_to_done(&mut e, &mut vm, &p);
        assert_eq!(v, Value::I64(9));
        assert_eq!(vm.counters.natives.hidden_state, 1);

        // Function without packaged state: falls back.
        let mut vm2 = VmInstance::function(&p, CostModel::default());
        vm2.load_class(c);
        vm2.load_class(method_class);
        let mobj2 = vm2
            .heap
            .alloc_object(method_class, 1, Space::Closure)
            .unwrap();
        vm2.heap.set(mobj2, 0, Value::I64(42)); // dangling handle
        let mut e2 = Execution::call(m, vec![Value::Ref(mobj2)], &p);
        let r = e2.run(&mut vm2, &p);
        assert!(matches!(
            r.outcome,
            Outcome::Blocked(Block::NativeFallback { .. })
        ));
    }

    #[test]
    fn warmup_makes_cold_runs_slower() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("A", 0, None);
        let mut a = Asm::new();
        a.work(1000).const_i(0).return_val();
        let m = pb.method(c, "m", 0, 0, a.finish());
        let p = pb.finish();
        let mut vm = VmInstance::server(&p, CostModel::default());
        let mut cold_cpu = Duration::ZERO;
        let mut warm_cpu = Duration::ZERO;
        for i in 0..vm.cost.warm_threshold + 5 {
            let mut e = Execution::call(m, vec![], &p);
            let r = e.run(&mut vm, &p);
            if i == 0 {
                cold_cpu = r.cpu;
            }
            warm_cpu = r.cpu;
        }
        assert!(
            cold_cpu > warm_cpu * 2,
            "cold {cold_cpu:?} should dwarf warm {warm_cpu:?}"
        );
    }

    #[test]
    fn total_cpu_accumulates_across_segments() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("A", 0, None);
        let dep = pb.framework_class("Dep", 0);
        let mut depm = Asm::new();
        depm.work(500).const_i(1).return_val();
        let dm = pb.method(dep, "d", 0, 0, depm.finish());
        let mut a = Asm::new();
        a.work(500).call(dm).return_val();
        let m = pb.method(c, "m", 0, 0, a.finish());
        let p = pb.finish();
        let mut vm = VmInstance::function(&p, CostModel::default());
        vm.load_class(c);
        let mut e = Execution::call(m, vec![], &p);
        let r1 = e.run(&mut vm, &p);
        assert!(matches!(r1.outcome, Outcome::Blocked(_)));
        vm.load_class(dep);
        e.resume();
        let r2 = e.run(&mut vm, &p);
        assert!(matches!(r2.outcome, Outcome::Done(_)));
        assert_eq!(e.total_cpu(), r1.cpu + r2.cpu);
    }

    #[test]
    fn stack_bytes_reflect_depth() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("A", 0, None);
        let mut a = Asm::new();
        a.const_i(1).return_val();
        let m = pb.method(c, "m", 2, 3, a.finish());
        let p = pb.finish();
        let e = Execution::call(m, vec![Value::I64(1), Value::I64(2)], &p);
        assert_eq!(e.stack_bytes(), (5 + 2) * 8);
    }
}
