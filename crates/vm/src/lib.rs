//! # beehive-vm — a from-scratch managed runtime
//!
//! BeeHive's offloading mechanism is a *runtime* mechanism: the JVM extracts
//! closures (bytecode + reachable objects + packed native state), ships them
//! to FaaS instances, detects remote references on load, and falls back to
//! the server for missing code/data/locks. Reproducing that in Rust requires
//! a managed runtime of our own. This crate provides it:
//!
//! * a **stack bytecode** instruction set ([`Op`]) with monitors, statics,
//!   native calls, interceptor-style dynamic stubs and database calls,
//! * a **resumable interpreter** ([`Execution`]) with explicit frames: the
//!   dispatch loop returns [`Outcome::Blocked`] for anything that needs the
//!   outside world (remote fetch, missing class, monitor hand-off, database
//!   I/O, GC), and the driver resumes it later — this is what makes
//!   fallback-based Semi-FaaS execution and stack-snapshot failure recovery
//!   possible,
//! * an **address-based heap** ([`heap::Heap`]) with a never-collected
//!   *closure space* and a semispace-collected *allocation space*, a 512-byte
//!   card table, and bit-63 **remote reference tagging** exactly as in §4.1
//!   of the paper,
//! * **native methods** in the paper's four categories (pure on-heap, hidden
//!   state, network, stateless) plus non-offloadable ones, with
//!   [`Packageable`](class::PackSpec) native-state marshalling (§3.2),
//! * a **profiler** counting invocations and accumulated virtual time per
//!   annotated method, feeding root-method selection (§4.3).
//!
//! Virtual time: the interpreter never consults the wall clock; every op
//! charges virtual nanoseconds according to [`CostModel`], and the embedding
//! discrete-event simulation accounts for them.
//!
//! # Example
//!
//! ```
//! use beehive_vm::{Asm, CostModel, Execution, Outcome};
//! use beehive_vm::program::ProgramBuilder;
//! use beehive_vm::instance::VmInstance;
//!
//! let mut pb = ProgramBuilder::new();
//! let class = pb.user_class("Demo", 0, Some("@GetMapping"));
//! let mut asm = Asm::new();
//! asm.const_i(20).const_i(22).add().return_val();
//! let method = pb.method(class, "answer", 0, 0, asm.finish());
//! let program = pb.finish();
//!
//! let mut vm = VmInstance::server(&program, CostModel::default());
//! let mut exec = Execution::call(method, vec![], &program);
//! let step = exec.run(&mut vm, &program);
//! assert!(matches!(step.outcome, Outcome::Done(v) if v.as_i64() == Some(42)));
//! ```

#![warn(missing_docs)]

pub mod class;
pub mod heap;
pub mod instance;
pub mod interp;
pub mod natives;
pub mod op;
pub mod profiler;
pub mod program;
pub mod value;

mod asm;
mod ids;

pub use asm::Asm;
pub use beehive_sim::Duration;
pub use ids::{ClassId, EndpointId, MethodId, NativeId, StaticSlot, StubId};
pub use instance::{CostModel, EndpointKind, VmInstance};
pub use interp::{Block, Execution, Outcome, Provenance, StepResult};
pub use op::Op;
pub use value::{Addr, Value};
