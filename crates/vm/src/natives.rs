//! Native methods.
//!
//! Web applications invoke native methods intensively — over 200k per pybbs
//! request (§3.2, Table 2). The paper divides them into four categories and
//! handles each so that almost none needs a fallback:
//!
//! | Category | Example | FaaS handling |
//! |---|---|---|
//! | [`PureOnHeap`](NativeCategory::PureOnHeap) | `System.arraycopy` | run directly |
//! | [`HiddenState`](NativeCategory::HiddenState) | `MethodAccessor.invoke0` | run directly *iff* the owning object's native state was packaged ([`PackSpec`](crate::class::PackSpec)); otherwise fall back |
//! | [`Network`](NativeCategory::Network) | `socketRead0` | run through the connection proxy (§3.3) |
//! | [`Stateless`](NativeCategory::Stateless) | `Thread.currentThread` | run directly |
//!
//! A fifth category, [`NonOffloadable`](NativeCategory::NonOffloadable)
//! (e.g. local file access), always falls back — the paper lists these as the
//! "inevitable native fallbacks" (§5.7).

use crate::ids::MethodId;
use crate::Duration;

pub use crate::ids::NativeId;

/// The paper's native-method taxonomy (§3.2, Table 2) plus the
/// non-offloadable residue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NativeCategory {
    /// Manipulates heap data only; safe to run on FaaS directly.
    PureOnHeap,
    /// Depends on off-heap state owned by a Java object; runs on FaaS only
    /// if that state was packaged into the closure.
    HiddenState,
    /// Socket I/O on stateful connections; runs on FaaS through the proxy.
    Network,
    /// No side effects between invocations; safe to run on FaaS directly.
    Stateless,
    /// Coupled to local resources (files, JVM-internal handles) that cannot
    /// be packaged; always falls back to the server.
    NonOffloadable,
}

impl NativeCategory {
    /// Row label used when printing Table 2.
    pub fn label(self) -> &'static str {
        match self {
            NativeCategory::PureOnHeap => "Pure on-heap",
            NativeCategory::HiddenState => "Hidden states",
            NativeCategory::Network => "Network",
            NativeCategory::Stateless => "Others",
            NativeCategory::NonOffloadable => "Non-offloadable",
        }
    }
}

/// What a native method does when it runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NativeEffect {
    /// Charge cost only; pops `arity` arguments, pushes 0.
    Nop,
    /// `System.arraycopy`: pops (len, dstPos, dst, srcPos, src) and copies
    /// the elements for real; pushes 0.
    ArrayCopy,
    /// Pushes a fixed token (e.g. a thread id).
    PushToken(i64),
    /// `MethodAccessor.invoke0`-style reflection: pops a `Method`-like object
    /// whose [`PackSpec`](crate::class::PackSpec) field holds a native-state
    /// handle; pushes a token derived from the resolved metadata.
    ReflectInvoke,
    /// Socket read/write on a connection object whose native state must be a
    /// packaged socket; pushes 0. (Latency is modelled by
    /// [`Op::DbCall`](crate::op::Op::DbCall); this effect covers the direct
    /// invocation count.)
    SocketIo,
    /// Local file access; never offloadable.
    FileAccess,
}

impl NativeEffect {
    /// How many operands the effect pops.
    pub fn arity(self) -> usize {
        match self {
            NativeEffect::Nop => 0,
            NativeEffect::ArrayCopy => 5,
            NativeEffect::PushToken(_) => 0,
            NativeEffect::ReflectInvoke => 1,
            NativeEffect::SocketIo => 1,
            NativeEffect::FileAccess => 0,
        }
    }
}

/// Descriptor of one native method.
#[derive(Clone, Debug)]
pub struct NativeDef {
    /// Diagnostic name (`System.arraycopy`, `socketRead0`, ...).
    pub name: String,
    /// Taxonomy category (§3.2).
    pub category: NativeCategory,
    /// CPU cost charged per invocation.
    pub cost: Duration,
    /// Behaviour.
    pub effect: NativeEffect,
}

/// Off-heap state owned by an object, keyed from a field via
/// [`PackSpec`](crate::class::PackSpec). Lives in a per-instance table; only
/// packageable classes can carry it across endpoints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NativeState {
    /// Reflection metadata: which method a `Method` object denotes.
    MethodMeta {
        /// The denoted method.
        method: MethodId,
    },
    /// A live socket. `proxy_conn_id` is the unique connection ID issued by
    /// the proxy's *prepare* step (§3.3); zero means the connection was never
    /// prepared for offloading.
    Socket {
        /// Proxy-issued connection ID (0 = not prepared).
        proxy_conn_id: u64,
    },
    /// An open local file — never transferable.
    File {
        /// The path, for diagnostics.
        path: String,
    },
}

/// Per-category invocation counters (reproduces Table 2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NativeCounters {
    /// Invocations of pure on-heap natives.
    pub pure_on_heap: u64,
    /// Invocations of hidden-state natives.
    pub hidden_state: u64,
    /// Invocations of network natives.
    pub network: u64,
    /// Invocations of stateless natives ("Others" in Table 2).
    pub stateless: u64,
    /// Invocations of non-offloadable natives.
    pub non_offloadable: u64,
}

impl NativeCounters {
    /// Bump the counter for `category`.
    pub fn bump(&mut self, category: NativeCategory) {
        match category {
            NativeCategory::PureOnHeap => self.pure_on_heap += 1,
            NativeCategory::HiddenState => self.hidden_state += 1,
            NativeCategory::Network => self.network += 1,
            NativeCategory::Stateless => self.stateless += 1,
            NativeCategory::NonOffloadable => self.non_offloadable += 1,
        }
    }

    /// Sum across categories.
    pub fn total(&self) -> u64 {
        self.pure_on_heap + self.hidden_state + self.network + self.stateless + self.non_offloadable
    }

    /// Reset all counters to zero, returning the previous values.
    pub fn take(&mut self) -> NativeCounters {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_bump_and_total() {
        let mut c = NativeCounters::default();
        c.bump(NativeCategory::PureOnHeap);
        c.bump(NativeCategory::PureOnHeap);
        c.bump(NativeCategory::Network);
        assert_eq!(c.pure_on_heap, 2);
        assert_eq!(c.network, 1);
        assert_eq!(c.total(), 3);
        let taken = c.take();
        assert_eq!(taken.total(), 3);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn effect_arity() {
        assert_eq!(NativeEffect::ArrayCopy.arity(), 5);
        assert_eq!(NativeEffect::ReflectInvoke.arity(), 1);
        assert_eq!(NativeEffect::Nop.arity(), 0);
    }

    #[test]
    fn category_labels_match_table2() {
        assert_eq!(NativeCategory::PureOnHeap.label(), "Pure on-heap");
        assert_eq!(NativeCategory::HiddenState.label(), "Hidden states");
        assert_eq!(NativeCategory::Network.label(), "Network");
        assert_eq!(NativeCategory::Stateless.label(), "Others");
    }
}
