//! The bytecode instruction set.

use crate::ids::{ClassId, MethodId, NativeId, StaticSlot, StubId};

/// One bytecode instruction of the stack machine.
///
/// Calling convention: arguments are pushed left to right; `Call` pops the
/// callee's declared parameter count into its locals (slot 0 = first
/// argument). `ReturnVal` pops the top of stack into the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Push a constant integer.
    ConstI(i64),
    /// Push null.
    ConstNull,
    /// Push local slot `n`.
    Load(u8),
    /// Pop into local slot `n`.
    Store(u8),
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,

    /// Integer addition (pops b, a; pushes a + b, wrapping).
    Add,
    /// Integer subtraction (pops b, a; pushes a - b, wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Integer division.
    ///
    /// Division by zero yields 0 (the apps never rely on trapping).
    Div,
    /// Integer remainder (0 for zero divisor).
    Rem,
    /// Pops b, a; pushes 1 if a < b else 0.
    CmpLt,
    /// Pops b, a; pushes 1 if the values are equal (integers or identical
    /// references) else 0.
    CmpEq,

    /// Unconditional jump to absolute instruction index.
    Jump(u32),
    /// Pop; jump if zero/null.
    JumpIfZero(u32),
    /// Pop; jump if non-zero / non-null.
    JumpIfNonZero(u32),

    /// Direct call.
    Call(MethodId),
    /// Dynamic-dispatch through an interceptor stub: pops a selector integer,
    /// picks `targets[selector % targets.len()]`. Models framework stubs like
    /// `MethodInterceptor` with tens of possible call targets (§2.2).
    CallStub(StubId),
    /// Return with no value (pushes null in the caller if a value is
    /// expected).
    Return,
    /// Pop the top of stack and return it.
    ReturnVal,

    /// Allocate an instance of a class; pushes the reference. Fields start
    /// null.
    New(ClassId),
    /// Pop a length; allocate an array of that many slots; pushes the
    /// reference.
    NewArray,
    /// Pop object ref; push field `slot`.
    GetField(u16),
    /// Pop value, object ref; store into field `slot`.
    PutField(u16),
    /// Pop index, array ref; push element.
    ArrLoad,
    /// Pop value, index, array ref; store element.
    ArrStore,
    /// Pop array ref; push its length.
    ArrLen,

    /// Push static slot. On FaaS, unfetched statics are remote references and
    /// trigger a data fallback.
    GetStatic(StaticSlot),
    /// Pop into static slot.
    PutStatic(StaticSlot),
    /// Volatile read of a static slot: a JMM synchronization point (§4.2).
    GetStaticVolatile(StaticSlot),
    /// Volatile write of a static slot: a JMM synchronization point (§4.2).
    PutStaticVolatile(StaticSlot),

    /// Pop object ref; acquire its monitor (JMM acquire).
    MonitorEnter,
    /// Pop object ref; release its monitor (JMM release).
    MonitorExit,

    /// Invoke a native method. Operand arity is defined by the native's
    /// descriptor; see [`natives`](crate::natives).
    NativeCall(NativeId),

    /// Charge `n` nanoseconds of pure CPU work (models computation whose
    /// details don't matter, e.g. image resampling inner loops).
    Work(u32),

    /// Issue a database round trip over the connection object in local slot
    /// `conn`. Pops an argument integer, pushes the query result. `query`
    /// selects the statement. Blocks the execution with [`Block::Db`]
    /// (offloaded executions reach the database through the connection
    /// proxy — §3.3 — or fall back if the connection was not packaged).
    ///
    /// [`Block::Db`]: crate::interp::Block::Db
    DbCall {
        /// Local slot holding the connection object.
        conn: u8,
        /// Prepared-statement selector.
        query: u16,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_are_small() {
        // The interpreter copies ops by value on every dispatch; keep them in
        // two words.
        assert!(std::mem::size_of::<Op>() <= 16);
    }

    #[test]
    fn ops_compare() {
        assert_eq!(Op::ConstI(3), Op::ConstI(3));
        assert_ne!(Op::ConstI(3), Op::ConstI(4));
        assert_ne!(Op::Add, Op::Sub);
    }
}
