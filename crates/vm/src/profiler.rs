//! The candidate-method profiler (§4.3).
//!
//! BeeHive's profiler is "implemented via a Java agent, which records the
//! invocation count and the accumulated execution time for each candidate
//! method". Candidates are the methods carrying framework annotations; the
//! selection heuristics are (1) large accumulated time and (2) average time
//! not too short.
//!
//! The per-method bookkeeping lives in [`beehive_profiler`]: this module
//! only maps [`MethodId`]s onto the shared [`Aggregate`] and applies the
//! §4.3 selection policy, so the root-selection profiler and the call-tree
//! recorder ([`beehive_profiler::Recorder`], via
//! [`beehive_profiler::RawProfile::aggregate`]) share one bookkeeping path
//! instead of maintaining parallel `HashMap`s.

use beehive_profiler::Aggregate;
pub use beehive_profiler::MethodProfile;
use beehive_sim::Duration;

use crate::ids::MethodId;
use crate::program::Program;

/// Records execution time per candidate method and picks offloading roots.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    samples: Aggregate,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed invocation of `method` taking `elapsed`.
    pub fn record(&mut self, method: MethodId, elapsed: Duration) {
        self.samples.record(method.0, elapsed);
    }

    /// The profile of `method`, if it has been sampled.
    pub fn profile(&self, method: MethodId) -> Option<MethodProfile> {
        self.samples.get(method.0).copied()
    }

    /// Choose root methods for offloading (§4.3): among *candidates*
    /// (annotated methods), keep those whose average execution time is at
    /// least `min_average` ("should not be short, e.g. less than one
    /// millisecond"), ranked by accumulated execution time descending.
    pub fn select_roots(&self, program: &Program, min_average: Duration) -> Vec<MethodId> {
        select_roots_from(&self.samples, program, min_average)
    }
}

/// §4.3 selection over any [`Aggregate`] — the server's live profiler and a
/// recorded call-tree profile ([`beehive_profiler::RawProfile::aggregate`])
/// rank identically.
pub fn select_roots_from(
    samples: &Aggregate,
    program: &Program,
    min_average: Duration,
) -> Vec<MethodId> {
    let mut picks: Vec<(MethodId, MethodProfile)> = program
        .candidates()
        .filter_map(|m| samples.get(m.0).map(|p| (m, *p)))
        .filter(|(_, p)| p.average() >= min_average)
        .collect();
    picks.sort_by(|(ma, a), (mb, b)| b.total_time.cmp(&a.total_time).then_with(|| ma.cmp(mb)));
    picks.into_iter().map(|(m, _)| m).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::program::ProgramBuilder;

    fn program_with_candidates() -> (Program, MethodId, MethodId, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("App", 0, None);
        let plain = pb.method(c, "helper", 0, 0, vec![Op::Return]);
        let hot = pb.method_annotated(c, "comment", 0, 0, vec![Op::Return], Some("@PostMapping"));
        let tiny = pb.method_annotated(c, "ping", 0, 0, vec![Op::Return], Some("@GetMapping"));
        (pb.finish(), plain, hot, tiny)
    }

    #[test]
    fn averages() {
        let mut p = Profiler::new();
        p.record(MethodId(0), Duration::from_millis(10));
        p.record(MethodId(0), Duration::from_millis(20));
        let prof = p.profile(MethodId(0)).unwrap();
        assert_eq!(prof.invocations, 2);
        assert_eq!(prof.average(), Duration::from_millis(15));
    }

    #[test]
    fn selection_filters_non_candidates_and_short_methods() {
        let (program, plain, hot, tiny) = program_with_candidates();
        let mut p = Profiler::new();
        // The un-annotated method is heavily used but must not be selected.
        for _ in 0..1000 {
            p.record(plain, Duration::from_millis(50));
        }
        for _ in 0..100 {
            p.record(hot, Duration::from_millis(40));
        }
        // The tiny candidate averages under the threshold.
        for _ in 0..10_000 {
            p.record(tiny, Duration::from_micros(100));
        }
        let roots = p.select_roots(&program, Duration::from_millis(1));
        assert_eq!(roots, vec![hot]);
        let _ = tiny;
    }

    #[test]
    fn selection_ranks_by_accumulated_time() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("App", 0, None);
        let a = pb.method_annotated(c, "a", 0, 0, vec![Op::Return], Some("@A"));
        let b = pb.method_annotated(c, "b", 0, 0, vec![Op::Return], Some("@B"));
        let program = pb.finish();
        let mut p = Profiler::new();
        p.record(a, Duration::from_millis(5));
        for _ in 0..10 {
            p.record(b, Duration::from_millis(5));
        }
        assert_eq!(
            p.select_roots(&program, Duration::from_millis(1)),
            vec![b, a]
        );
    }

    #[test]
    fn unsampled_methods_are_ignored() {
        let (program, _, _, _) = program_with_candidates();
        let p = Profiler::new();
        assert!(p.select_roots(&program, Duration::ZERO).is_empty());
        assert_eq!(p.profile(MethodId(1)), None);
    }

    #[test]
    fn recorded_call_trees_feed_the_same_selection() {
        if beehive_profiler::COMPILED_OFF {
            return;
        }
        let (program, _plain, hot, _tiny) = program_with_candidates();
        // A recorded profile of the candidate running for 40ms twice ranks
        // exactly like the live profiler fed the same observations.
        beehive_profiler::install();
        for _ in 0..2 {
            beehive_profiler::begin_segment("server", None, [hot.0].into_iter(), true);
            beehive_profiler::end_segment(Duration::from_millis(40));
        }
        let raw = beehive_profiler::take().unwrap();
        let derived = select_roots_from(&raw.aggregate(), &program, Duration::from_millis(1));
        let mut live = Profiler::new();
        live.record(hot, Duration::from_millis(40));
        live.record(hot, Duration::from_millis(40));
        assert_eq!(
            derived,
            live.select_roots(&program, Duration::from_millis(1))
        );
        assert_eq!(derived, vec![hot]);
    }
}
