//! Whole-program containers and the builder the applications use.

use std::collections::HashMap;

use beehive_sim::Duration;

use crate::class::{ClassDef, MethodBody, MethodDef, Origin, PackSpec, StubDef};
use crate::ids::{ClassId, MethodId, NativeId, StaticSlot, StubId};
use crate::natives::{NativeCategory, NativeDef, NativeEffect};
use crate::op::Op;

/// A static variable declaration.
#[derive(Clone, Debug)]
pub struct StaticDef {
    /// Diagnostic name.
    pub name: String,
    /// Whether reads/writes are volatile by default (unused; volatility is
    /// per-op).
    pub volatile: bool,
}

/// An immutable, fully linked program: classes, methods, natives, stubs,
/// statics. Shared (by reference) between the server VM and every function
/// VM; *availability* of code on an endpoint is tracked per-instance, and
/// transfer costs are charged from the recorded sizes.
#[derive(Debug, Default)]
pub struct Program {
    pub(crate) classes: Vec<ClassDef>,
    pub(crate) methods: Vec<MethodDef>,
    pub(crate) natives: Vec<NativeDef>,
    pub(crate) stubs: Vec<StubDef>,
    pub(crate) statics: Vec<StaticDef>,
    name_to_method: HashMap<String, MethodId>,
}

impl Program {
    /// The class definition for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.index()]
    }

    /// The method definition for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn method(&self, id: MethodId) -> &MethodDef {
        &self.methods[id.index()]
    }

    /// The native descriptor for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn native(&self, id: NativeId) -> &NativeDef {
        &self.natives[id.index()]
    }

    /// The stub definition for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn stub(&self, id: StubId) -> &StubDef {
        &self.stubs[id.index()]
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Number of static slots.
    pub fn static_count(&self) -> usize {
        self.statics.len()
    }

    /// Look up a method by the `Class.method` name given at build time.
    pub fn method_by_name(&self, name: &str) -> Option<MethodId> {
        self.name_to_method.get(name).copied()
    }

    /// All methods carrying a framework annotation — the *offloading
    /// candidates* of §4.3.
    pub fn candidates(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.methods
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_candidate())
            .map(|(i, _)| MethodId(i as u32))
    }

    /// Methods declared by `class`.
    pub fn methods_of(&self, class: ClassId) -> impl Iterator<Item = MethodId> + '_ {
        self.methods
            .iter()
            .enumerate()
            .filter(move |(_, m)| m.class == class)
            .map(|(i, _)| MethodId(i as u32))
    }

    /// Total class-file bytes of `class` including its methods' code (used
    /// for missing-code fallback transfer sizes).
    pub fn class_bytes(&self, class: ClassId) -> u32 {
        self.class(class).bytes
            + self
                .methods
                .iter()
                .filter(|m| m.class == class)
                .map(|m| m.code_bytes())
                .sum::<u32>()
    }
}

/// Incrementally builds a [`Program`].
///
/// # Example
///
/// ```
/// use beehive_vm::program::ProgramBuilder;
/// use beehive_vm::{Asm, Op};
///
/// let mut pb = ProgramBuilder::new();
/// let c = pb.user_class("App", 2, None);
/// let m = pb.method(c, "handle", 1, 0, vec![Op::Load(0), Op::ReturnVal]);
/// let program = pb.finish();
/// assert_eq!(program.method_by_name("App.handle"), Some(m));
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a class with an arbitrary origin.
    pub fn class(&mut self, name: &str, origin: Origin, field_count: u16) -> ClassId {
        let id = ClassId(self.program.classes.len() as u32);
        self.program.classes.push(ClassDef {
            name: name.to_string(),
            origin,
            field_count,
            packageable: None,
            bytes: 256 + field_count as u32 * 16,
        });
        id
    }

    /// Add a user class, optionally annotated.
    pub fn user_class(
        &mut self,
        name: &str,
        field_count: u16,
        annotation: Option<&str>,
    ) -> ClassId {
        self.class(
            name,
            Origin::User {
                annotation: annotation.map(str::to_string),
            },
            field_count,
        )
    }

    /// Add a framework class.
    pub fn framework_class(&mut self, name: &str, field_count: u16) -> ClassId {
        self.class(name, Origin::Framework, field_count)
    }

    /// Add a dynamically generated class.
    pub fn generated_class(&mut self, name: &str, field_count: u16) -> ClassId {
        self.class(name, Origin::Generated, field_count)
    }

    /// Add a JDK class.
    pub fn jdk_class(&mut self, name: &str, field_count: u16) -> ClassId {
        self.class(name, Origin::Jdk, field_count)
    }

    /// Mark `class` packageable (§3.2).
    ///
    /// # Panics
    ///
    /// Panics if the class id is out of range.
    pub fn make_packageable(&mut self, class: ClassId, spec: PackSpec) {
        self.program.classes[class.index()].packageable = Some(spec);
    }

    /// Override a class's recorded byte size.
    pub fn set_class_bytes(&mut self, class: ClassId, bytes: u32) {
        self.program.classes[class.index()].bytes = bytes;
    }

    /// Add a bytecode method; the lookup name is `Class.method`.
    ///
    /// # Panics
    ///
    /// Panics if the `Class.method` name is already taken.
    pub fn method(
        &mut self,
        class: ClassId,
        name: &str,
        params: u8,
        locals: u8,
        code: Vec<Op>,
    ) -> MethodId {
        self.method_annotated(class, name, params, locals, code, None)
    }

    /// Add an annotated bytecode method (an offloading candidate).
    ///
    /// # Panics
    ///
    /// Panics if the `Class.method` name is already taken.
    pub fn method_annotated(
        &mut self,
        class: ClassId,
        name: &str,
        params: u8,
        locals: u8,
        code: Vec<Op>,
        annotation: Option<&str>,
    ) -> MethodId {
        let id = MethodId(self.program.methods.len() as u32);
        let full = format!("{}.{}", self.program.classes[class.index()].name, name);
        let prev = self.program.name_to_method.insert(full.clone(), id);
        assert!(prev.is_none(), "duplicate method name {full}");
        self.program.methods.push(MethodDef {
            name: name.to_string(),
            class,
            params,
            locals,
            body: MethodBody::Bytecode(code),
            annotation: annotation.map(str::to_string),
        });
        id
    }

    /// Register a native method descriptor.
    pub fn native(
        &mut self,
        name: &str,
        category: NativeCategory,
        cost: Duration,
        effect: NativeEffect,
    ) -> NativeId {
        let id = NativeId(self.program.natives.len() as u32);
        self.program.natives.push(NativeDef {
            name: name.to_string(),
            category,
            cost,
            effect,
        });
        id
    }

    /// Register an interceptor stub with its possible targets.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn stub(&mut self, name: &str, targets: Vec<MethodId>) -> StubId {
        assert!(!targets.is_empty(), "stub {name} needs at least one target");
        let id = StubId(self.program.stubs.len() as u32);
        self.program.stubs.push(StubDef {
            name: name.to_string(),
            targets,
        });
        id
    }

    /// Declare a static variable slot.
    pub fn static_slot(&mut self, name: &str) -> StaticSlot {
        let id = StaticSlot(self.program.statics.len() as u32);
        self.program.statics.push(StaticDef {
            name: name.to_string(),
            volatile: false,
        });
        id
    }

    /// Finish, producing the immutable program.
    pub fn finish(self) -> Program {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut pb = ProgramBuilder::new();
        let c0 = pb.user_class("A", 1, None);
        let c1 = pb.framework_class("B", 2);
        assert_eq!(c0, ClassId(0));
        assert_eq!(c1, ClassId(1));
        let m0 = pb.method(c0, "x", 0, 0, vec![Op::Return]);
        let m1 = pb.method(c1, "y", 0, 0, vec![Op::Return]);
        assert_eq!(m0, MethodId(0));
        assert_eq!(m1, MethodId(1));
        let p = pb.finish();
        assert_eq!(p.class_count(), 2);
        assert_eq!(p.method_count(), 2);
    }

    #[test]
    fn candidates_filter_annotated_methods() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("App", 0, None);
        pb.method(c, "helper", 0, 0, vec![Op::Return]);
        let hot = pb.method_annotated(c, "comment", 0, 0, vec![Op::Return], Some("@PostMapping"));
        let p = pb.finish();
        let cands: Vec<_> = p.candidates().collect();
        assert_eq!(cands, vec![hot]);
    }

    #[test]
    fn class_bytes_include_method_code() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("App", 0, None);
        pb.method(c, "m", 0, 0, vec![Op::ConstI(1); 100]);
        let p = pb.finish();
        assert_eq!(p.class_bytes(ClassId(0)), 256 + 400);
    }

    #[test]
    #[should_panic(expected = "duplicate method name")]
    fn duplicate_method_names_panic() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("App", 0, None);
        pb.method(c, "m", 0, 0, vec![Op::Return]);
        pb.method(c, "m", 0, 0, vec![Op::Return]);
    }

    #[test]
    fn method_lookup_by_name() {
        let mut pb = ProgramBuilder::new();
        let c = pb.user_class("App", 0, None);
        let m = pb.method(c, "m", 0, 0, vec![Op::Return]);
        let p = pb.finish();
        assert_eq!(p.method_by_name("App.m"), Some(m));
        assert_eq!(p.method_by_name("App.zzz"), None);
    }
}
