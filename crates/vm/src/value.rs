//! Runtime values and heap addresses.
//!
//! Heap references are 64-bit byte addresses. Following the paper's §4.1, the
//! **most significant bit marks a remote reference**: an object that lives on
//! another endpoint (identified by its canonical address there). Such
//! addresses can never collide with local heap addresses, which live far
//! below bit 63.
//!
//! On-heap encoding packs a [`Value`] into one 64-bit word:
//!
//! * `0` — null,
//! * low bit `1` — a 63-bit integer, payload in the upper bits,
//! * otherwise — a reference; addresses are 8-byte aligned so their low three
//!   bits are zero, and bit 63 may carry the remote mark.

use std::fmt;

/// Bit 63: set on references that point to an object on a remote endpoint.
pub const REMOTE_BIT: u64 = 1 << 63;

/// A heap address (byte address, 8-byte aligned; bit 63 = remote mark).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// `true` when bit 63 marks this as a remote reference.
    pub const fn is_remote(self) -> bool {
        self.0 & REMOTE_BIT != 0
    }

    /// The same address with the remote bit set.
    pub const fn to_remote(self) -> Addr {
        Addr(self.0 | REMOTE_BIT)
    }

    /// The same address with the remote bit cleared (the canonical address on
    /// the owning endpoint).
    pub const fn to_local(self) -> Addr {
        Addr(self.0 & !REMOTE_BIT)
    }

    /// The raw bits.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_remote() {
            write!(f, "@remote:{:#x}", self.to_local().0)
        } else {
            write!(f, "@{:#x}", self.0)
        }
    }
}

/// A value the interpreter manipulates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Value {
    /// The null reference.
    #[default]
    Null,
    /// A 63-bit signed integer (the encoding steals one bit for tagging).
    I64(i64),
    /// A heap reference (possibly remote-marked).
    Ref(Addr),
}

impl Value {
    /// The integer payload, if this is an integer.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Value::I64(x) => Some(x),
            _ => None,
        }
    }

    /// The address, if this is a (non-null) reference.
    pub fn as_ref(self) -> Option<Addr> {
        match self {
            Value::Ref(a) => Some(a),
            _ => None,
        }
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }

    /// Encode into one heap word.
    ///
    /// # Panics
    ///
    /// Panics if an integer does not fit 63 bits or a reference address is
    /// misaligned.
    pub fn encode(self) -> u64 {
        match self {
            Value::Null => 0,
            Value::I64(x) => {
                let shifted = (x as u64) << 1;
                assert_eq!(
                    (shifted as i64) >> 1,
                    x,
                    "integer {x} does not fit in 63 bits"
                );
                shifted | 1
            }
            Value::Ref(a) => {
                assert_eq!(a.to_local().0 & 0b111, 0, "misaligned address {a:?}");
                assert_ne!(a.0, 0, "reference to address 0 would decode as null");
                a.0
            }
        }
    }

    /// Decode from one heap word.
    pub fn decode(word: u64) -> Value {
        if word == 0 {
            Value::Null
        } else if word & 1 == 1 {
            Value::I64((word as i64) >> 1)
        } else {
            Value::Ref(Addr(word))
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::I64(x) => write!(f, "{x}"),
            Value::Ref(a) => write!(f, "{a:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Value {
        Value::I64(x)
    }
}

impl From<Addr> for Value {
    fn from(a: Addr) -> Value {
        Value::Ref(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_bit_round_trip() {
        let a = Addr(0x2000_0000_0040);
        assert!(!a.is_remote());
        let r = a.to_remote();
        assert!(r.is_remote());
        assert_eq!(r.to_local(), a);
    }

    #[test]
    fn value_encoding_round_trips() {
        for v in [
            Value::Null,
            Value::I64(0),
            Value::I64(42),
            Value::I64(-42),
            Value::I64((1 << 62) - 1),
            Value::I64(-(1 << 62)),
            Value::Ref(Addr(0x1000)),
            Value::Ref(Addr(0x1000).to_remote()),
        ] {
            assert_eq!(Value::decode(v.encode()), v, "{v:?}");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_integer_panics() {
        Value::I64(i64::MAX).encode();
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_ref_panics() {
        Value::Ref(Addr(0x1001)).encode();
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::I64(9).as_i64(), Some(9));
        assert_eq!(Value::Null.as_i64(), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Ref(Addr(8)).as_ref(), Some(Addr(8)));
    }

    #[test]
    fn remote_refs_survive_encoding() {
        let remote = Value::Ref(Addr(0x4000).to_remote());
        let decoded = Value::decode(remote.encode());
        assert!(decoded.as_ref().unwrap().is_remote());
    }
}
