//! Edge-case tests for the interpreter: volatile statics (JMM sync points),
//! arithmetic corner cases, operand restoration across retries, and API
//! misuse panics.

use beehive_vm::program::ProgramBuilder;
use beehive_vm::{Asm, Block, CostModel, Execution, Op, Outcome, Value, VmInstance};

#[test]
fn volatile_statics_are_plain_accesses_on_the_server() {
    let mut pb = ProgramBuilder::new();
    let c = pb.user_class("A", 0, None);
    let s = pb.static_slot("FLAG");
    let mut a = Asm::new();
    a.const_i(5).put_static_volatile(s);
    a.get_static_volatile(s).const_i(1).add().return_val();
    let m = pb.method(c, "m", 0, 0, a.finish());
    let p = pb.finish();
    let mut vm = VmInstance::server(&p, CostModel::default());
    let mut e = Execution::call(m, vec![], &p);
    let r = e.run(&mut vm, &p);
    assert!(matches!(r.outcome, Outcome::Done(Value::I64(6))));
}

#[test]
fn volatile_statics_synchronize_on_functions() {
    let mut pb = ProgramBuilder::new();
    let c = pb.user_class("A", 0, None);
    let s = pb.static_slot("FLAG");
    let mut a = Asm::new();
    a.get_static_volatile(s).const_i(1).add().return_val();
    let m = pb.method(c, "m", 0, 0, a.finish());
    let p = pb.finish();

    let mut vm = VmInstance::function(&p, CostModel::default());
    vm.load_class(c);
    let mut e = Execution::call(m, vec![], &p);
    // First: the volatile access is a synchronization point.
    let r = e.run(&mut vm, &p);
    assert_eq!(
        r.outcome,
        Outcome::Blocked(Block::VolatileSync {
            slot: s,
            is_write: false
        })
    );
    // The embedder performs the sync, installs the value, grants the
    // one-shot permit and resumes.
    vm.install_static(s, Value::I64(41));
    e.grant_sync_permit();
    e.resume();
    let r = e.run(&mut vm, &p);
    assert!(matches!(r.outcome, Outcome::Done(Value::I64(42))));
}

#[test]
fn every_volatile_access_is_its_own_sync_point() {
    let mut pb = ProgramBuilder::new();
    let c = pb.user_class("A", 0, None);
    let s = pb.static_slot("FLAG");
    let mut a = Asm::new();
    a.get_static_volatile(s).pop();
    a.get_static_volatile(s).return_val();
    let m = pb.method(c, "m", 0, 0, a.finish());
    let p = pb.finish();
    let mut vm = VmInstance::function(&p, CostModel::default());
    vm.load_class(c);
    vm.install_static(s, Value::I64(9));
    let mut e = Execution::call(m, vec![], &p);
    let mut syncs = 0;
    loop {
        match e.run(&mut vm, &p).outcome {
            Outcome::Blocked(Block::VolatileSync { .. }) => {
                syncs += 1;
                e.grant_sync_permit();
                e.resume();
            }
            Outcome::Done(v) => {
                assert_eq!(v, Value::I64(9));
                break;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(syncs, 2, "the permit is one-shot");
}

#[test]
fn division_and_remainder_by_zero_yield_zero() {
    let mut pb = ProgramBuilder::new();
    let c = pb.user_class("A", 0, None);
    let mut a = Asm::new();
    a.const_i(7).const_i(0).div();
    a.const_i(7).const_i(0).rem();
    a.add().return_val();
    let m = pb.method(c, "m", 0, 0, a.finish());
    let p = pb.finish();
    let mut vm = VmInstance::server(&p, CostModel::default());
    let mut e = Execution::call(m, vec![], &p);
    assert!(matches!(
        e.run(&mut vm, &p).outcome,
        Outcome::Done(Value::I64(0))
    ));
}

#[test]
fn cmp_eq_works_on_references_and_null() {
    let mut pb = ProgramBuilder::new();
    let c = pb.user_class("A", 1, None);
    // new o; (o == o) + (o == null) + (null == null) => 1 + 0 + 1 = 2
    let mut a = Asm::new();
    a.new_obj(c).store(0);
    a.load(0).load(0).cmp_eq();
    a.load(0).const_null().cmp_eq().add();
    a.const_null().const_null().cmp_eq().add().return_val();
    let m = pb.method(c, "m", 0, 1, a.finish());
    let p = pb.finish();
    let mut vm = VmInstance::server(&p, CostModel::default());
    let mut e = Execution::call(m, vec![], &p);
    assert!(matches!(
        e.run(&mut vm, &p).outcome,
        Outcome::Done(Value::I64(2))
    ));
}

#[test]
fn negative_stub_selectors_wrap() {
    let mut pb = ProgramBuilder::new();
    let c = pb.user_class("A", 0, None);
    let mut t0 = Asm::new();
    t0.const_i(10).return_val();
    let m0 = pb.method(c, "t0", 0, 0, t0.finish());
    let mut t1 = Asm::new();
    t1.const_i(20).return_val();
    let m1 = pb.method(c, "t1", 0, 0, t1.finish());
    let stub = pb.stub("s", vec![m0, m1]);
    let mut a = Asm::new();
    a.const_i(-3).call_stub(stub).return_val(); // |-3| % 2 = 1 -> t1
    let m = pb.method(c, "m", 0, 0, a.finish());
    let p = pb.finish();
    let mut vm = VmInstance::server(&p, CostModel::default());
    let mut e = Execution::call(m, vec![], &p);
    assert!(matches!(
        e.run(&mut vm, &p).outcome,
        Outcome::Done(Value::I64(20))
    ));
}

#[test]
fn deep_recursion_uses_explicit_frames() {
    let mut pb = ProgramBuilder::new();
    let c = pb.user_class("A", 0, None);
    // f(n) = n == 0 ? 0 : f(n - 1) + 1, assembled with a self-call.
    let mut a = Asm::new();
    a.load(0);
    let base = a.jump_if_zero_fwd();
    a.load(0).const_i(1).sub();
    a.call(beehive_vm::MethodId(0)); // self (first method gets id 0)
    a.const_i(1).add().return_val();
    a.bind(base);
    a.const_i(0).return_val();
    let m = pb.method(c, "f", 1, 0, a.finish());
    assert_eq!(m, beehive_vm::MethodId(0));
    let p = pb.finish();
    let mut vm = VmInstance::server(&p, CostModel::default());
    // 20k frames would overflow a host stack if the interpreter recursed.
    let mut e = Execution::call(m, vec![Value::I64(20_000)], &p);
    assert!(matches!(
        e.run(&mut vm, &p).outcome,
        Outcome::Done(Value::I64(20_000))
    ));
}

#[test]
#[should_panic(expected = "not retry-blocked")]
fn resume_without_block_panics() {
    let mut pb = ProgramBuilder::new();
    let c = pb.user_class("A", 0, None);
    let mut a = Asm::new();
    a.const_i(1).return_val();
    let m = pb.method(c, "m", 0, 0, a.finish());
    let p = pb.finish();
    let mut e = Execution::call(m, vec![], &p);
    e.resume();
}

#[test]
#[should_panic(expected = "blocked; resume first")]
fn run_while_blocked_panics() {
    let mut pb = ProgramBuilder::new();
    let root = pb.user_class("Root", 0, None);
    let dep = pb.framework_class("Dep", 0);
    let mut d = Asm::new();
    d.const_i(1).return_val();
    let dm = pb.method(dep, "d", 0, 0, d.finish());
    let mut a = Asm::new();
    a.call(dm).return_val();
    let m = pb.method(root, "m", 0, 0, a.finish());
    let p = pb.finish();
    let mut vm = VmInstance::function(&p, CostModel::default());
    vm.load_class(root);
    let mut e = Execution::call(m, vec![], &p);
    assert!(matches!(e.run(&mut vm, &p).outcome, Outcome::Blocked(_)));
    let _ = e.run(&mut vm, &p); // must panic: still blocked
}

#[test]
fn arraycopy_clamps_out_of_range_requests() {
    use beehive_sim::Duration;
    use beehive_vm::natives::{NativeCategory, NativeEffect};
    let mut pb = ProgramBuilder::new();
    let c = pb.user_class("A", 0, None);
    let copy = pb.native(
        "System.arraycopy",
        NativeCategory::PureOnHeap,
        Duration::from_nanos(50),
        NativeEffect::ArrayCopy,
    );
    let mut a = Asm::new();
    a.const_i(4).new_array().store(0);
    a.const_i(2).new_array().store(1);
    a.load(0).const_i(2).const_i(7).arr_store(); // src[2] = 7
    a.load(0).const_i(3).const_i(99).arr_store(); // src[3] = 99
                                                  // Ask for 10 elements from src[2] into dst[1]: only 1 fits (dst len 2).
    a.load(0)
        .const_i(2)
        .load(1)
        .const_i(1)
        .const_i(10)
        .native(copy)
        .pop();
    a.load(1).const_i(1).arr_load().return_val();
    let m = pb.method(c, "m", 0, 2, a.finish());
    let p = pb.finish();
    let mut vm = VmInstance::server(&p, CostModel::default());
    let mut e = Execution::call(m, vec![], &p);
    // Exactly src[2] was copied into dst[1]; src[3] stayed out of range and
    // nothing wrote past dst's bounds (no panic).
    assert!(matches!(
        e.run(&mut vm, &p).outcome,
        Outcome::Done(Value::I64(7))
    ));
}

#[test]
fn work_op_charges_exactly_its_nanos_when_warm() {
    let mut pb = ProgramBuilder::new();
    let c = pb.user_class("A", 0, None);
    let mut a = Asm::new();
    a.work(100_000).const_i(0).return_val();
    let m = pb.method(c, "m", 0, 0, a.finish());
    let p = pb.finish();
    let mut vm = VmInstance::server(&p, CostModel::default());
    // Warm the method first.
    for _ in 0..=vm.cost.warm_threshold {
        let mut e = Execution::call(m, vec![], &p);
        e.run(&mut vm, &p);
    }
    let mut e = Execution::call(m, vec![], &p);
    let r = e.run(&mut vm, &p);
    let cpu = r.cpu.as_nanos();
    // 100us of Work plus a handful of op costs.
    assert!((100_000..100_200).contains(&cpu), "cpu {cpu}");
}

#[test]
fn op_return_pushes_null_to_caller() {
    let mut pb = ProgramBuilder::new();
    let c = pb.user_class("A", 0, None);
    let callee = pb.method(c, "void_fn", 0, 0, vec![Op::Return]);
    let mut a = Asm::new();
    a.call(callee).const_null().cmp_eq().return_val();
    let m = pb.method(c, "m", 0, 0, a.finish());
    let p = pb.finish();
    let mut vm = VmInstance::server(&p, CostModel::default());
    let mut e = Execution::call(m, vec![], &p);
    assert!(matches!(
        e.run(&mut vm, &p).outcome,
        Outcome::Done(Value::I64(1))
    ));
}
