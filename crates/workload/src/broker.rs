//! The resource-broker layer: contended resources and their completion
//! events.
//!
//! The broker owns the server's processor-sharing pools, the database FIFO
//! pool, the FaaS platform and the instance scaler, plus the stale-epoch
//! reschedule dances their completion events need. Pools reshuffle their
//! completion order whenever occupancy changes, so a scheduled completion
//! event may be stale by the time it fires; every `Ev::ServerPool` /
//! `Ev::DbDone` arm used to repeat the same validate-or-reschedule pattern
//! inline in the driver — it lives here once now.

use beehive_chaos::{Fault, FaultPlan};
use beehive_faas::FaasPlatform;
use beehive_scaling::InstanceScaler;
use beehive_sim::pool::{FifoPool, PsPool};
use beehive_sim::{Duration, EventQueue, Rng, SimTime};

/// Events of the driver's queue.
#[derive(Debug)]
pub(crate) enum Ev {
    /// An open-loop client arrives.
    Arrival,
    /// A closed-loop client reissues.
    ClientReissue,
    /// Re-step a parked request.
    Step(u64),
    /// A server pool may have completed its head job.
    ServerPool {
        /// The pool index.
        pool: usize,
        /// The pool epoch at scheduling time (stale-event detection).
        epoch: u64,
    },
    /// A database job may have completed.
    DbDone {
        /// The request id of the job.
        job: u64,
        /// The completion time at scheduling time (stale-event detection).
        at: SimTime,
    },
    /// A FaaS instance boot finished for this pending request.
    Boot {
        /// The pending-boot request id.
        req: u64,
    },
    /// The instance scaler engages (provision an instance).
    TriggerScale,
    /// The provisioned instance is ready to serve.
    CapacityReady,
    /// Periodic FaaS idle-instance expiry sweep.
    Expire,
    /// An injected fault fires (§4.5 failure injection).
    Fault(Fault),
    /// A crashed request's replacement instance is ready: resume it from
    /// its last snapshot.
    Recover {
        /// The crashed request id.
        req: u64,
    },
}

/// Owns every contended resource and the scheduling dances around them.
#[derive(Debug)]
pub struct Broker {
    /// Server processor-sharing pools: pool 0 is the always-on primary,
    /// pool 1 (when present) the scaled-out instance.
    pub(crate) pools: Vec<PsPool>,
    /// The database machine (m4.10xlarge: 40 parallel workers).
    pub(crate) db_pool: FifoPool,
    /// The FaaS platform, for offloading strategies.
    pub(crate) platform: Option<FaasPlatform>,
    /// The instance scaler, for scaled (and combined) strategies.
    pub(crate) scaler: Option<InstanceScaler>,
    /// The run's fault plan: armed one-shot faults, retry policy and the
    /// chaos counters. Empty (inert) unless the config carries injectors.
    pub(crate) chaos: FaultPlan,
    server_cores: f64,
}

impl Broker {
    /// A broker with one primary pool of `server_cores` vCPUs.
    pub(crate) fn new(
        server_cores: f64,
        platform: Option<FaasPlatform>,
        scaler: Option<InstanceScaler>,
    ) -> Broker {
        Broker {
            pools: vec![PsPool::new(server_cores)],
            db_pool: FifoPool::new(40), // the m4.10xlarge database machine
            platform,
            scaler,
            chaos: FaultPlan::default(),
            server_cores,
        }
    }

    /// Handle `Ev::ServerPool`: validate the event against the pool's
    /// current epoch and completion schedule, rescheduling when the head
    /// job's completion moved into the future. Returns the completed
    /// request id to re-step, or `None` for stale / not-yet-due events.
    pub(crate) fn pool_completion(
        &mut self,
        now: SimTime,
        pool: usize,
        epoch: u64,
        events: &mut EventQueue<Ev>,
    ) -> Option<u64> {
        if pool >= self.pools.len() || self.pools[pool].epoch() != epoch {
            return None; // stale
        }
        let (t, job) = self.pools[pool].next_completion()?;
        if t > now {
            let epoch = self.pools[pool].epoch();
            events.schedule(t, Ev::ServerPool { pool, epoch });
            return None;
        }
        self.pools[pool].remove(now, job);
        self.schedule_pool_event(pool, events);
        Some(job)
    }

    /// Handle `Ev::DbDone`: same validate-or-drop dance for the database
    /// FIFO. Returns the completed request id to re-step.
    pub(crate) fn db_completion(
        &mut self,
        now: SimTime,
        job: u64,
        at: SimTime,
        events: &mut EventQueue<Ev>,
    ) -> Option<u64> {
        if self.db_pool.next_completion() != Some((at, job)) || at > now {
            return None; // stale
        }
        self.db_pool.complete(now, job);
        self.schedule_db_event(events);
        Some(job)
    }

    /// Schedule the next completion event of server pool `pool`.
    pub(crate) fn schedule_pool_event(&mut self, pool: usize, events: &mut EventQueue<Ev>) {
        if let Some((t, _)) = self.pools[pool].next_completion() {
            let epoch = self.pools[pool].epoch();
            events.schedule(t, Ev::ServerPool { pool, epoch });
        }
    }

    /// Schedule the next completion event of the database pool.
    pub(crate) fn schedule_db_event(&mut self, events: &mut EventQueue<Ev>) {
        if let Some((t, job)) = self.db_pool.next_completion() {
            events.schedule(t, Ev::DbDone { job, at: t });
        }
    }

    /// Handle `Ev::TriggerScale`: ask the scaler for an instance and
    /// schedule its readiness.
    pub(crate) fn trigger_scale(
        &mut self,
        now: SimTime,
        rng: &mut Rng,
        events: &mut EventQueue<Ev>,
    ) {
        let Some(scaler) = self.scaler.as_mut() else {
            return;
        };
        let ready = scaler.request(now, rng);
        events.schedule(ready, Ev::CapacityReady);
    }

    /// Handle `Ev::CapacityReady`: bring the scaled-out pool online.
    pub(crate) fn capacity_ready(&mut self) {
        if self.pools.len() == 1 {
            self.pools.push(PsPool::new(self.server_cores));
        }
    }

    /// Handle `Ev::Expire`: expire idle FaaS instances and drop dead ones
    /// from the idle rotation. The sweep reschedules itself only while a
    /// platform exists — vanilla/scaled runs never enter the chain at all.
    pub(crate) fn expire_idle(
        &mut self,
        now: SimTime,
        idle: &mut Vec<u32>,
        events: &mut EventQueue<Ev>,
    ) {
        let Some(p) = self.platform.as_mut() else {
            return;
        };
        p.expire_idle(now);
        idle.retain(|&id| p.is_alive(id));
        events.schedule(now + Duration::from_secs(30), Ev::Expire);
    }

    /// Duration of a `FunctionCpu` need scaled by the platform's vCPU
    /// share (a 0.5-vCPU function runs CPU work at half speed).
    pub(crate) fn function_cpu_duration(&self, amount: Duration) -> Duration {
        let cpu = self
            .platform
            .as_ref()
            .map(|p| p.config().cpu)
            .unwrap_or(1.0);
        amount.mul_f64(1.0 / cpu)
    }
}
