//! Experiment configuration ([`SimConfig`]) and results ([`SimResult`]).
//!
//! Everything a run consumes and everything it produces lives here, so the
//! four driver layers ([`crate::router`], [`crate::lifecycle`],
//! [`crate::endpoint`], [`crate::broker`]) and the event loop
//! ([`crate::driver::Sim`]) share one vocabulary.

use beehive_apps::App;
use beehive_chaos::{ChaosStats, FaultPlan};
use beehive_core::config::BeeHiveConfig;
use beehive_core::server::RuntimeStats;
use beehive_core::SessionStats;
use beehive_faas::FaasPlatform;
use beehive_scaling::InstanceScaler;
use beehive_sim::stats::{LatencySampler, Timeline};
use beehive_sim::{Duration, SimTime};
use beehive_telemetry as tele;

use crate::endpoint::{Fleet, Obs};
use crate::strategy::Strategy;

/// How clients generate requests.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalPattern {
    /// Open loop (Poisson): `base_rps` before the burst, `base_rps *
    /// burst_mult` between `burst_at` and `burst_end`.
    Open {
        /// Baseline request rate.
        base_rps: f64,
        /// Multiplier during the burst (1.0 = no burst).
        burst_mult: f64,
        /// Burst start.
        burst_at: Duration,
        /// Burst end (use the horizon for "until the end", §5.2).
        burst_end: Duration,
    },
    /// Closed loop: `clients` concurrent clients, each reissuing immediately
    /// after its previous request completes (Figure 2).
    Closed {
        /// Number of concurrent clients.
        clients: usize,
    },
}

impl ArrivalPattern {
    /// A constant open-loop rate.
    pub fn constant(rps: f64) -> Self {
        ArrivalPattern::Open {
            base_rps: rps,
            burst_mult: 1.0,
            burst_at: Duration::ZERO,
            burst_end: Duration::ZERO,
        }
    }

    /// The open-loop arrival rate at `t` (virtual time since the simulation
    /// start).
    ///
    /// # Panics
    ///
    /// Closed-loop patterns have no rate.
    pub fn rate_at(&self, t: Duration) -> f64 {
        match *self {
            ArrivalPattern::Open {
                base_rps,
                burst_mult,
                burst_at,
                burst_end,
            } => {
                if t >= burst_at && t < burst_end {
                    base_rps * burst_mult
                } else {
                    base_rps
                }
            }
            ArrivalPattern::Closed { .. } => unreachable!("closed loop has no rate"),
        }
    }
}

/// Full experiment configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The application under test.
    pub app: App,
    /// The scaling strategy.
    pub strategy: Strategy,
    /// Client behaviour.
    pub arrivals: ArrivalPattern,
    /// Virtual-time horizon.
    pub horizon: Duration,
    /// RNG seed (every run with the same config + seed is identical).
    pub seed: u64,
    /// Fraction of requests offloaded / forwarded once scaling engages.
    pub offload_ratio: f64,
    /// When offloading / scale-out engages (typically the burst start; zero
    /// for steady-state experiments).
    pub engage_at: Duration,
    /// vCPUs of the (primary) server — `m4.xlarge` has 4.
    pub server_cores: f64,
    /// Warm FaaS instances already cached at t=0 *without* closures (fresh
    /// platform cache).
    pub prewarm: usize,
    /// Warm instances cached at t=0 *with* the closure instantiated, plans
    /// refined and JITs warm — instances that served earlier bursts (the
    /// §5.2 warm-boot case with sub-second provisioning).
    pub prewarm_ready: usize,
    /// Hard cap on FaaS instances.
    pub max_instances: usize,
    /// Cap on concurrently booting instances.
    pub max_concurrent_boots: usize,
    /// Completions before this time are excluded from the steady-state
    /// sampler.
    pub record_from: Duration,
    /// Maximum concurrent requests the server accepts (its worker pool +
    /// accept queue); arrivals beyond it are refused. Real servlet
    /// containers cap workers near 200 — without the cap, a saturated
    /// processor-sharing pool finishes nothing at all and the whole
    /// deployment wedges.
    pub max_server_concurrency: usize,
    /// BeeHive runtime configuration (ablations toggle features here).
    pub beehive: BeeHiveConfig,
    /// Shadow the first invocation on every new instance (§3.4). Disabling
    /// this is the warmup-hiding ablation: first invocations run for real on
    /// the cold instance and the client waits out the long tail.
    pub shadow_enabled: bool,
    /// Record a virtual-time trace of this run ([`SimResult::trace`]).
    /// Defaults to the engine-wide flag set by `repro --trace`
    /// ([`crate::engine::set_trace_default`]).
    pub trace: bool,
    /// Keep a live metrics registry for this run ([`SimResult::metrics`]).
    /// Defaults to the engine-wide flag set by `repro --metrics`
    /// ([`crate::engine::set_metrics_default`]). Costs nothing when off.
    pub metrics: bool,
    /// Time-series window of the metrics registry (virtual time).
    pub metrics_window: Duration,
    /// Record a per-lane call-tree profile of this run
    /// ([`SimResult::profile`]). Defaults to the engine-wide flag set by
    /// `repro --profile` ([`crate::engine::set_profile_default`]).
    pub profile: bool,
    /// Run the online conformance checker alongside this run
    /// ([`SimResult::sentinel`]). Defaults to the engine-wide flag set by
    /// `repro --sentinel` ([`crate::engine::set_sentinel_default`]). Arms
    /// the telemetry recorder even when [`SimConfig::trace`] is off; the
    /// recorded events are dropped after checking unless `trace` is also
    /// set.
    pub sentinel: bool,
    /// Fold this run's telemetry into a fixed-width elasticity timeline
    /// ([`SimResult::observatory`]). Defaults to the engine-wide flag set by
    /// `repro timeline` / `repro --obs`
    /// ([`crate::engine::set_observe_default`]). Like the sentinel, this
    /// arms the telemetry recorder even when [`SimConfig::trace`] is off;
    /// the events are dropped after reduction unless `trace` is also set.
    pub observe: bool,
    /// Bin width of the elasticity timeline (virtual time). Defaults to the
    /// engine-wide value ([`crate::engine::set_observe_window`]).
    pub observe_window: Duration,
    /// Deterministic fault plan (§4.5 failure injection). The default plan
    /// is empty and the run is byte-identical to one without the chaos
    /// machinery; see [`beehive_chaos`] for injectors and the retry policy.
    pub faults: FaultPlan,
}

impl SimConfig {
    /// A configuration with paper-style defaults.
    pub fn new(app: App, strategy: Strategy) -> Self {
        SimConfig {
            app,
            strategy,
            arrivals: ArrivalPattern::constant(50.0),
            horizon: Duration::from_secs(60),
            seed: 1,
            offload_ratio: 0.5,
            engage_at: Duration::ZERO,
            server_cores: 4.0,
            prewarm: 0,
            prewarm_ready: 0,
            max_instances: 256,
            max_concurrent_boots: 48,
            record_from: Duration::from_secs(10),
            max_server_concurrency: 256,
            beehive: BeeHiveConfig::default(),
            shadow_enabled: true,
            trace: crate::engine::trace_default(),
            metrics: crate::engine::metrics_default(),
            metrics_window: beehive_metrics::DEFAULT_WINDOW,
            profile: crate::engine::profile_default(),
            sentinel: crate::engine::sentinel_default(),
            observe: crate::engine::observe_default(),
            observe_window: crate::engine::observe_window(),
            faults: FaultPlan::default(),
        }
    }
}

/// What one run produced.
#[derive(Debug)]
pub struct SimResult {
    /// Per-second latency timeline (Figure 7).
    pub timeline: Timeline,
    /// All recorded request latencies.
    pub all: LatencySampler,
    /// Latencies of requests completing after `record_from`.
    pub steady: LatencySampler,
    /// Recorded completed requests.
    pub completed: u64,
    /// Requests refused because the server's worker pool was full.
    pub rejected: u64,
    /// Completed offloaded (non-shadow) requests.
    pub offloaded: u64,
    /// Shadow executions run.
    pub shadows: u64,
    /// Cold boots / warm starts on the FaaS platform.
    pub boots: (u64, u64),
    /// FaaS instances created.
    pub instances: usize,
    /// Dollars billed by the FaaS platform.
    pub faas_cost: f64,
    /// GB-seconds of function execution billed (per-use platforms).
    pub faas_gb_seconds: f64,
    /// Function invocations billed.
    pub faas_requests: u64,
    /// Dollars billed for the scaled instance (instance strategies).
    pub scaled_cost: f64,
    /// Server runtime statistics.
    pub server_stats: RuntimeStats,
    /// Aggregate session stats of steady-state offloaded requests.
    pub steady_offload: SessionStats,
    /// Number of steady-state offloaded requests behind `steady_offload`.
    pub steady_offload_count: u64,
    /// Aggregate session stats of shadow executions.
    pub shadow_stats: SessionStats,
    /// End-to-end durations of shadow executions (arrival → completion,
    /// including the boot they hide).
    pub shadow_durations: LatencySampler,
    /// Latencies of recorded offloaded requests only (exposes the cold-start
    /// tail when shadowing is disabled).
    pub offload_latencies: LatencySampler,
    /// Function-side GC pauses across all instances.
    pub function_gc_pauses: Vec<Duration>,
    /// Peak heap bytes over all function instances.
    pub function_peak_heap: u64,
    /// Server-side mapping-table footprint at the end.
    pub mapping_bytes: u64,
    /// Fault-injection and recovery accounting (all zero when
    /// [`SimConfig::faults`] was empty).
    pub chaos: ChaosStats,
    /// The virtual end time.
    pub end: SimTime,
    /// The recorded trace, when [`SimConfig::trace`] was set.
    pub trace: Option<tele::Trace>,
    /// The live metrics registry, when [`SimConfig::metrics`] was set.
    /// Snapshot with [`beehive_metrics::Registry::snapshot`].
    pub metrics: Option<beehive_metrics::Registry>,
    /// The resolved call-tree profile, when [`SimConfig::profile`] was set.
    pub profile: Option<beehive_profiler::Profile>,
    /// The conformance-check result, when [`SimConfig::sentinel`] was set.
    /// Its label is blank until [`crate::engine::run_all`] harvests it.
    pub sentinel: Option<beehive_sentinel::ScenarioCheck>,
    /// The reduced elasticity timeline, when [`SimConfig::observe`] was
    /// set. Its label is blank until [`crate::engine::run_all`] harvests it.
    pub observatory: Option<beehive_observatory::ScenarioSeries>,
}

/// Completion-side accounting: every sampler and counter the event loop
/// feeds, folded into a [`SimResult`] when the run ends.
pub(crate) struct Acct {
    timeline: Timeline,
    all: LatencySampler,
    steady: LatencySampler,
    completed: u64,
    /// Requests refused because the server's worker pool was full.
    pub(crate) rejected: u64,
    offloaded: u64,
    /// Shadow executions started.
    pub(crate) shadows: u64,
    steady_offload: SessionStats,
    steady_offload_count: u64,
    shadow_stats: SessionStats,
    shadow_durations: LatencySampler,
    offload_latencies: LatencySampler,
}

impl Acct {
    pub(crate) fn new() -> Acct {
        Acct {
            timeline: Timeline::new(),
            all: LatencySampler::new(),
            steady: LatencySampler::new(),
            completed: 0,
            rejected: 0,
            offloaded: 0,
            shadows: 0,
            steady_offload: SessionStats::default(),
            steady_offload_count: 0,
            shadow_stats: SessionStats::default(),
            shadow_durations: LatencySampler::new(),
            offload_latencies: LatencySampler::new(),
        }
    }

    /// Record a finished request: latency samplers, the timeline, and the
    /// completion counters (recorded requests only). `request` is the
    /// session's server-issued id, kept as the histogram exemplar so a
    /// latency quantile can be traced back to concrete requests.
    pub(crate) fn on_complete(
        &mut self,
        now: SimTime,
        record_from: Duration,
        latency: Duration,
        record: bool,
        request: u64,
        obs: &mut Obs,
    ) {
        if record {
            self.completed += 1;
            obs.add(now, "requests_completed", 1);
            obs.observe_exemplar(now, "request_latency", latency, request);
            self.all.record(latency);
            self.timeline.record(now, latency);
            if now.saturating_since(SimTime::ZERO) >= record_from {
                self.steady.record(latency);
            }
        }
    }

    /// Fold a finished FaaS session into the shadow or offload aggregates.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_faas(
        &mut self,
        now: SimTime,
        record_from: Duration,
        latency: Duration,
        record: bool,
        is_shadow: bool,
        stats: &SessionStats,
        obs: &mut Obs,
    ) {
        if is_shadow {
            obs.add(now, "shadow_executions", 1);
            self.shadow_stats.absorb(stats);
            self.shadow_durations.record(latency);
        } else {
            self.offloaded += 1;
            obs.add(now, "requests_offloaded", 1);
            if record {
                self.offload_latencies.record(latency);
            }
            if now.saturating_since(SimTime::ZERO) >= record_from {
                self.steady_offload.absorb(stats);
                self.steady_offload_count += 1;
            }
        }
    }

    /// Assemble the run's [`SimResult`] from the accumulated accounting and
    /// the end-of-run state of the world.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn finish(
        self,
        end: SimTime,
        fleet: &Fleet,
        platform: Option<&FaasPlatform>,
        scaler: Option<&InstanceScaler>,
        server_stats: RuntimeStats,
        mapping_bytes: u64,
        chaos: ChaosStats,
        trace: Option<tele::Trace>,
        metrics: Option<beehive_metrics::Registry>,
        profile: Option<beehive_profiler::Profile>,
        sentinel: Option<beehive_sentinel::ScenarioCheck>,
        observatory: Option<beehive_observatory::ScenarioSeries>,
    ) -> SimResult {
        let mut function_gc_pauses = Vec::new();
        let mut peak = 0;
        for f in fleet.funcs.values() {
            for gc in f.vm.gc_log() {
                function_gc_pauses.push(gc.pause);
            }
            peak = peak.max(f.vm.heap.peak_used_bytes());
        }
        SimResult {
            timeline: self.timeline,
            all: self.all,
            steady: self.steady,
            completed: self.completed,
            rejected: self.rejected,
            offloaded: self.offloaded,
            shadows: self.shadows,
            boots: platform.map(|p| p.boot_stats()).unwrap_or((0, 0)),
            instances: platform.map(|p| p.instances_created()).unwrap_or(0),
            faas_cost: platform.map(|p| p.cost(end)).unwrap_or(0.0),
            faas_gb_seconds: platform.map(|p| p.ledger().gb_seconds()).unwrap_or(0.0),
            faas_requests: platform.map(|p| p.ledger().requests()).unwrap_or(0),
            scaled_cost: scaler.map(|s| s.cost(end)).unwrap_or(0.0),
            server_stats,
            steady_offload: self.steady_offload,
            steady_offload_count: self.steady_offload_count,
            shadow_stats: self.shadow_stats,
            shadow_durations: self.shadow_durations,
            offload_latencies: self.offload_latencies,
            function_gc_pauses,
            function_peak_heap: peak,
            mapping_bytes,
            chaos,
            end,
            trace,
            metrics,
            profile,
            sentinel,
            observatory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_at_follows_the_burst_window() {
        let p = ArrivalPattern::Open {
            base_rps: 50.0,
            burst_mult: 2.0,
            burst_at: Duration::from_secs(20),
            burst_end: Duration::from_secs(40),
        };
        assert_eq!(p.rate_at(Duration::from_secs(0)), 50.0);
        assert_eq!(p.rate_at(Duration::from_secs(19)), 50.0);
        assert_eq!(p.rate_at(Duration::from_secs(20)), 100.0);
        assert_eq!(p.rate_at(Duration::from_secs(39)), 100.0);
        assert_eq!(p.rate_at(Duration::from_secs(40)), 50.0);
    }

    #[test]
    fn constant_has_no_burst() {
        let p = ArrivalPattern::constant(30.0);
        assert_eq!(p.rate_at(Duration::ZERO), 30.0);
        assert_eq!(p.rate_at(Duration::from_secs(3600)), 30.0);
    }
}
